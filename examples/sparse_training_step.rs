//! §8 Case 1: one training step of a layer with a square-block sparse
//! weight matrix, computed entirely with the vecsparse kernels:
//!
//! ```text
//! forward:   V = W · X           (SpMM)
//! backward:  ∂L/∂X = Wᵀ · ∂L/∂V  (SpMM on the transposed encoding)
//! gradient:  ∂L/∂W = ∂L/∂V · Xᵀ  (SDDMM masked by W's structure)
//! ```
//!
//! Square `V × V` nonzero blocks make both `W` and `Wᵀ` expressible in
//! the column-vector sparse encoding, so the same kernels serve every
//! stage. Results are validated against dense references.
//!
//! ```text
//! cargo run --release --example sparse_training_step
//! ```

use vecsparse::sddmm::{sddmm_octet, OctetVariant};
use vecsparse::spmm::spmm_octet;
use vecsparse_formats::square_block::{random_square_block_pattern, transpose_square_block};
use vecsparse_formats::{gen, reference, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;

fn main() {
    let gpu = GpuConfig::default();
    let (m, k, batch) = (128, 256, 64); // W: m×k, X: k×batch.
    let v = 4;

    // A square-block pruned weight matrix at 85% sparsity.
    let pattern = random_square_block_pattern(m, k, v, 0.85, 1);
    let w = gen::fill_pattern::<f16>(pattern.clone(), 2);
    let x = gen::random_dense::<f16>(k, batch, Layout::RowMajor, 3);
    println!(
        "W: {m}x{k}, {:.0}% sparse, square {v}x{v} blocks; X: {k}x{batch}",
        100.0 * pattern.sparsity()
    );

    // Forward: V = W · X.
    let out = spmm_octet(&gpu, &w, &x);
    let want = reference::spmm_vs(&w, &x);
    println!("forward  SpMM   max|err| = {}", out.max_abs_diff(&want));

    // Backward data gradient: ∂L/∂X = Wᵀ · ∂L/∂V. The transposed weight
    // is again in column-vector sparse encoding thanks to the square
    // blocks — no new kernel needed.
    let wt = transpose_square_block(&w);
    let dv = gen::random_dense::<f16>(m, batch, Layout::RowMajor, 4);
    let dx = spmm_octet(&gpu, &wt, &dv);
    let dx_want = reference::spmm_vs(&wt, &dv);
    println!("backward SpMM   max|err| = {}", dx.max_abs_diff(&dx_want));

    // Weight gradient: ∂L/∂W = ∂L/∂V · Xᵀ, but only at W's nonzeros —
    // exactly an SDDMM with W's pattern as the mask.
    let xt = x.transpose().to_layout(Layout::ColMajor);
    let dw = sddmm_octet(&gpu, &dv, &xt, &pattern, OctetVariant::Arch);
    let dw_want = reference::sddmm(&dv, &xt, &pattern);
    let worst = dw
        .values()
        .iter()
        .zip(dw_want.values())
        .map(|(a, b)| (a.to_f32() - b.to_f32()).abs())
        .fold(0.0f32, f32::max);
    println!("gradient SDDMM  max|err| = {worst}");

    println!();
    println!(
        "All three stages of the training step run on the same two sparse\n\
         kernels; the gradient stays inside W's sparsity pattern by\n\
         construction, so the mask never densifies during training."
    );
}
