//! Kernel profiler: an Nsight-style report for every SpMM and SDDMM
//! implementation at one problem shape — the raw material behind the
//! paper's Tables 1–3.
//!
//! ```text
//! cargo run --release --example kernel_profiler
//! ```

use vecsparse::sddmm::{profile_sddmm_fpu, profile_sddmm_octet, profile_sddmm_wmma, OctetVariant};
use vecsparse::spmm::{
    profile_spmm_blocked_ell, profile_spmm_fpu, profile_spmm_octet, profile_spmm_wmma,
};
use vecsparse_formats::{gen, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, KernelProfile};

fn report(p: &KernelProfile) {
    print!("{}", p.render());
    println!();
}
fn main() {
    let gpu = GpuConfig::default();

    println!("--- SpMM, A(2048x1024) 90% sparse V=4, B(1024x256) ---\n");
    let a = gen::random_vector_sparse::<f16>(2048, 1024, 4, 0.9, 1);
    let b = gen::random_dense::<f16>(1024, 256, Layout::RowMajor, 2);
    report(&profile_spmm_octet(&gpu, &a, &b));
    report(&profile_spmm_wmma(&gpu, &a, &b));
    report(&profile_spmm_fpu(&gpu, &a, &b));
    let ell = gen::random_blocked_ell::<f16>(2048, 1024, 4, 0.9, 3);
    report(&profile_spmm_blocked_ell(&gpu, &ell, &b));

    println!("--- SDDMM, A(2048x256) x B(256x1024), mask 90% sparse V=8 ---\n");
    let q = gen::random_dense::<f16>(2048, 256, Layout::RowMajor, 4);
    let kt = gen::random_dense::<f16>(256, 1024, Layout::ColMajor, 5);
    let mask = gen::random_pattern(2048, 1024, 8, 0.9, 6);
    for variant in [OctetVariant::Reg, OctetVariant::Shfl, OctetVariant::Arch] {
        report(&profile_sddmm_octet(&gpu, &q, &kt, &mask, variant));
    }
    report(&profile_sddmm_wmma(&gpu, &q, &kt, &mask));
    report(&profile_sddmm_fpu(&gpu, &q, &kt, &mask));
}
