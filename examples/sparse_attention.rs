//! Sparse self-attention: run one attention head through the actual
//! SDDMM → sparse-softmax → SpMM kernel pipeline, validate it against a
//! dense reference, and print the Fig. 20-style latency breakdown.
//!
//! ```text
//! cargo run --release --example sparse_attention
//! ```

use vecsparse::engine::Context;
use vecsparse_formats::{gen, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;
use vecsparse_transformer::attention::{
    dense_attention_latency, dense_attention_reference, sparse_attention_head,
    sparse_attention_latency,
};
use vecsparse_transformer::AttentionConfig;

fn main() {
    let gpu = GpuConfig::default();
    let ctx = Context::builder().gpu(gpu.clone()).build();

    // Functional check on a small head.
    let cfg_small = AttentionConfig {
        seq_len: 128,
        head_dim: 32,
        heads: 1,
        sparsity: 0.8,
        v: 8,
        band: 32,
    };
    let mask = cfg_small.mask(7);
    let q = gen::random_dense::<f16>(128, 32, Layout::RowMajor, 1);
    let k = gen::random_dense::<f16>(128, 32, Layout::RowMajor, 2);
    let v = gen::random_dense::<f16>(128, 32, Layout::RowMajor, 3);
    let got = sparse_attention_head(&ctx, &q, &k, &v, &mask);
    let want = dense_attention_reference(&q, &k, &v, &mask);
    println!(
        "kernel-pipeline attention vs reference: max |err| = {}",
        got.max_abs_diff(&want)
    );

    // Latency breakdown at a long-sequence shape.
    let cfg = AttentionConfig {
        seq_len: 4096,
        head_dim: 64,
        heads: 4,
        sparsity: 0.9,
        v: 8,
        band: 256,
    };
    let sparse = sparse_attention_latency(&gpu, &cfg);
    let dense = dense_attention_latency(&gpu, &cfg);
    println!();
    println!(
        "attention layer, l={}, k={}, {} heads, {:.0}% sparse mask:",
        cfg.seq_len,
        cfg.head_dim,
        cfg.heads,
        100.0 * cfg.sparsity
    );
    let m = |x: f64| x / 1e6;
    println!("  stage     dense(Mcyc)  sparse(Mcyc)");
    println!("  QK^T∘C    {:>10.2}  {:>11.2}", m(dense.qk), m(sparse.qk));
    println!(
        "  Softmax   {:>10.2}  {:>11.2}",
        m(dense.softmax),
        m(sparse.softmax)
    );
    println!("  A·V       {:>10.2}  {:>11.2}", m(dense.av), m(sparse.av));
    println!(
        "  Others    {:>10.2}  {:>11.2}",
        m(dense.others),
        m(sparse.others)
    );
    println!(
        "  total     {:>10.2}  {:>11.2}   => {:.2}x layer speedup",
        m(dense.total()),
        m(sparse.total()),
        dense.total() / sparse.total()
    );
}
