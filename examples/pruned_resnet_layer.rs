//! A pruned ResNet-50 layer across the sparsity grid: where does the
//! octet kernel overtake dense cublasHgemm for this layer? (One slice of
//! the Fig. 17 story.)
//!
//! ```text
//! cargo run --release --example pruned_resnet_layer
//! ```

use vecsparse::engine::Context;
use vecsparse::SpmmAlgo;
use vecsparse_bench::rhs_for;
use vecsparse_dlmc::{resnet50_shapes, Benchmark, SPARSITIES};
use vecsparse_gpu_sim::GpuConfig;

fn main() {
    let ctx = Context::builder().gpu(GpuConfig::default()).build();
    let shape = resnet50_shapes()
        .into_iter()
        .find(|s| s.name == "conv4_3x3")
        .expect("conv4_3x3 is in the suite");
    let n = 256;
    println!(
        "layer {} ({}x{}), RHS width {n}, grain 4x1",
        shape.name, shape.rows, shape.cols
    );
    println!();
    println!("sparsity   dense(cyc)   octet(cyc)   speedup");

    for s in SPARSITIES {
        let bench = Benchmark::build(shape, 4, s);
        let b = rhs_for(&bench, n);
        let dense = ctx.profile_spmm(&bench.matrix, &b, SpmmAlgo::Dense);
        let octet = ctx.profile_spmm(&bench.matrix, &b, SpmmAlgo::Octet);
        println!(
            "    {s:.2}  {:>11.0}  {:>11.0}   {:>6.2}x{}",
            dense.cycles,
            octet.cycles,
            dense.cycles / octet.cycles,
            if octet.cycles < dense.cycles {
                "  <- sparse wins"
            } else {
                ""
            }
        );
    }
    println!();
    println!(
        "The paper's headline: practical speedup under >70% sparsity with the\n\
         tiny 4x1 grain — small enough to preserve model accuracy."
    );
}
