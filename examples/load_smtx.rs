//! Load a DLMC-format `.smtx` matrix, apply the paper's Fig. 16
//! benchmark construction, and profile the kernels on it — the workflow
//! for running the reproduction on the *real* Deep Learning Matrix
//! Collection instead of the synthetic suite.
//!
//! ```text
//! cargo run --release --example load_smtx [path/to/matrix.smtx]
//! ```
//!
//! Without an argument, a small example structure is generated inline.

use vecsparse::engine::Context;
use vecsparse::SpmmAlgo;
use vecsparse_formats::smtx::Smtx;
use vecsparse_formats::{gen, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => {
            // Synthesize a 256-block-row structure and round-trip it
            // through the text format to demonstrate the parser.
            let p = gen::random_pattern(256, 512, 1, 0.9, 7);
            vecsparse_formats::smtx::pattern_to_smtx(&p).to_text()
        }
    };
    let smtx = Smtx::parse(&text).expect("valid .smtx");
    println!(
        "loaded {}x{} structure, {} nonzeros ({:.1}% sparse)",
        smtx.rows,
        smtx.cols,
        smtx.nnz(),
        100.0 * smtx.sparsity()
    );

    // Fig. 16: the row pointers and column indices become *vector*
    // pointers/indices; each indexed position gets a random V-vector.
    let ctx = Context::builder().gpu(GpuConfig::default()).build();
    let n = 256;
    for v in [2usize, 4, 8] {
        let a = smtx.to_vector_sparse::<f16>(v, 11);
        let b = gen::random_dense::<f16>(a.cols(), n, Layout::RowMajor, 12);
        let octet = ctx.profile_spmm(&a, &b, SpmmAlgo::Octet);
        let dense = ctx.profile_spmm(&a, &b, SpmmAlgo::Dense);
        println!(
            "  V={v}: A is {}x{}, octet {:.0} cycles, dense {:.0} cycles -> {:.2}x",
            a.rows(),
            a.cols(),
            octet.cycles,
            dense.cycles,
            dense.cycles / octet.cycles
        );
    }
}
