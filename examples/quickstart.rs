//! Quickstart: encode a matrix with column-vector sparsity, multiply it
//! on the simulated tensor cores, and read a performance profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vecsparse::engine::Context;
use vecsparse::SpmmAlgo;
use vecsparse_formats::{gen, reference, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;

fn main() {
    // A 512×1024 weight matrix pruned to 90% sparsity with 4×1 column
    // vectors (the grain the paper recommends: fine enough for model
    // quality, coarse enough for tensor cores).
    let a = gen::random_vector_sparse::<f16>(512, 1024, 4, 0.9, 42);
    let b = gen::random_dense::<f16>(1024, 256, Layout::RowMajor, 43);

    println!(
        "A: {}x{} at {:.0}% sparsity, {} nonzero 4x1 vectors ({} KiB)",
        a.rows(),
        a.cols(),
        100.0 * a.pattern().sparsity(),
        a.pattern().nnz_vectors(),
        a.size_bytes() / 1024,
    );

    // Functional execution through the TCU-based 1-D Octet Tiling kernel.
    // A plan encodes and stages A once; repeated runs reuse the staging.
    let ctx = Context::builder().build();
    let plan = ctx.plan_spmm(&a, b.cols(), SpmmAlgo::Octet);
    let c = plan.run(&b);
    let want = reference::spmm_vs(&a, &b);
    println!(
        "octet SpMM result: {}x{}, max |err| vs reference = {}",
        c.rows(),
        c.cols(),
        c.max_abs_diff(&want)
    );

    // Performance model: compare against every baseline on a V100-like
    // device, then let the tuner pick for us.
    let ctx = Context::builder().gpu(GpuConfig::default()).build();
    let dense = ctx.profile_spmm(&a, &b, SpmmAlgo::Dense);
    println!();
    println!("cycles on the simulated V100 (lower is better):");
    for algo in [
        SpmmAlgo::Dense,
        SpmmAlgo::FpuSubwarp,
        SpmmAlgo::BlockedEll,
        SpmmAlgo::Octet,
    ] {
        let p = ctx.profile_spmm(&a, &b, algo);
        println!(
            "  {:<24} {:>12.0} cycles   {:>5.2}x vs dense   (grid {}, {} static instrs)",
            p.name,
            p.cycles,
            dense.cycles / p.cycles,
            p.grid,
            p.static_instrs,
        );
    }
    let auto = ctx.plan_spmm(&a, b.cols(), SpmmAlgo::Auto);
    println!();
    println!("tuner (SpmmAlgo::Auto) picked: {}", auto.algo().label());
}
