//! Tier-1 backend gate: [`Backend::Native`] is bit-identical to the
//! simulated functional path.
//!
//! Three promises are pinned here. First, coverage: every registry
//! kernel has a native lowering, and a `Backend::Native` launch engages
//! it (the [`LaunchOutput::native`] flag rules out a silent fallback).
//! Second, identity: after a native and a simulated launch of the same
//! staged kernel, the *entire memory pool* — every buffer, not just the
//! output — matches bit for bit, at 1 and at 4 worker threads, across a
//! shape grid spanning every vector length. Third, scheme soundness:
//! every tuner-swept octet [`TilingScheme`] point stays
//! sanitizer-clean, wave-provable, shard-certified, and native-exact —
//! the same gauntlet the default scheme passes.
//!
//! [`Backend::Native`]: vecsparse_gpu_sim::Backend
//! [`LaunchOutput::native`]: vecsparse_gpu_sim::LaunchOutput
//! [`TilingScheme`]: vecsparse::compose::TilingScheme

use vecsparse::registry::{self, KernelId, Shape, ALL_KERNELS};
use vecsparse::spmm::compose::octet_schemes;
use vecsparse::spmm::OctetSpmm;
use vecsparse_formats::{gen, reference, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{Backend, GpuConfig, Launch, MemPool, Mode};
use vecsparse_sanitizer::sanitize_clean;
use vecsparse_shardprove::analyze;
use vecsparse_waveprove::{certify, CertifyOptions};

/// Reconfigure the global worker count (the shim accepts repeated
/// configuration, as tests/determinism.rs relies on).
fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread-pool shim accepts reconfiguration");
}

/// Whole-pool bit comparison via `f32::to_bits` — so a NaN payload or a
/// `-0.0`/`+0.0` swap counts as divergence even though `==` would not.
fn assert_pools_identical(sim: &MemPool, native: &MemPool, what: &str) {
    let sim_bufs: Vec<_> = sim.buffer_ids().collect();
    let nat_bufs: Vec<_> = native.buffer_ids().collect();
    assert_eq!(sim_bufs.len(), nat_bufs.len(), "{what}: buffer count");
    for (&s, &n) in sim_bufs.iter().zip(&nat_bufs) {
        let a = sim.contents(s);
        let b = native.contents(n);
        assert_eq!(a.len(), b.len(), "{what}: buffer {} length", s.index());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: buffer {} elem {i}: simulated {x:?}, native {y:?}",
                s.index()
            );
        }
    }
}

/// Stage `id` at `shape` twice from the same pool, run one launch per
/// backend, and demand bit-identical pools plus an engaged native path.
fn assert_native_matches(id: KernelId, shape: &Shape, what: &str) {
    registry::with_kernel_mut(id, shape, Mode::Functional, |mem, kernel| {
        let mut sim = mem.clone();
        let sim_out = Launch::new(&mut sim, kernel).run();
        assert!(!sim_out.native, "{what}: default backend must simulate");
        let out = Launch::new(mem, kernel).backend(Backend::Native).run();
        assert!(out.native, "{what}: native lowering missing or refused");
        assert_pools_identical(&sim, mem, what);
    });
}

/// Sweep-style shapes friendly to every kernel: m a multiple of 16 (so
/// every V in {1, 2, 4, 8} divides it), n and k multiples of 32.
fn shape_grid() -> Vec<Shape> {
    vec![
        Shape::default(),
        Shape {
            m: 48,
            n: 32,
            k: 32,
            v: 1,
            sparsity: 0.3,
            seed: 7,
        },
        Shape {
            m: 16,
            n: 64,
            k: 32,
            v: 2,
            sparsity: 0.9,
            seed: 11,
        },
        Shape {
            m: 64,
            n: 32,
            k: 64,
            v: 8,
            sparsity: 0.5,
            seed: 23,
        },
    ]
}

/// The ISSUE's headline acceptance gate: `Backend::Native` is
/// bit-identical for the full registry across the shape grid, at 1 and
/// at 4 worker threads. Thread count exercises the two paths'
/// *different* determinism arguments — the simulator buffers CTA writes
/// and applies them in grid order, the native executor is sequential by
/// construction — and the gate pins that they land on the same bits.
#[test]
fn native_backend_bit_identical_for_full_registry() {
    for threads in [1usize, 4] {
        set_threads(threads);
        for shape in shape_grid() {
            for id in ALL_KERNELS {
                let what = format!(
                    "{} at m={} n={} k={} v={} ({threads} threads)",
                    id.label(),
                    shape.m,
                    shape.n,
                    shape.k,
                    shape.v
                );
                assert_native_matches(id, &shape, &what);
            }
        }
    }
    set_threads(1);
}

/// A native *request* outside plain functional execution falls back to
/// the warp model and says so: performance simulation still profiles,
/// and the output's `native` flag stays honest.
#[test]
fn native_request_outside_functional_mode_simulates() {
    let gpu = GpuConfig::small();
    registry::with_kernel_mut(
        KernelId::SpmmOctet,
        &Shape::default(),
        Mode::Performance,
        |mem, kernel| {
            let out = Launch::new(mem, kernel)
                .gpu(&gpu)
                .performance()
                .backend(Backend::Native)
                .run();
            assert!(!out.native, "performance mode needs the warp model");
            assert!(out.profile.is_some(), "fallback must still profile");
        },
    );
}

/// Every tuner-swept octet scheme point passes the full certification
/// gauntlet the default scheme passes: sanitizer-clean, wave-provable,
/// shard-certified, reference-exact, and native-bit-identical. The
/// tuner may pick any of these points; none may be second-class.
#[test]
fn swept_octet_schemes_stay_certified_and_native_exact() {
    let gpu = GpuConfig::small();
    let a = gen::random_vector_sparse::<f16>(32, 128, 4, 0.8, 31);
    let b = gen::random_dense::<f16>(128, 64, Layout::RowMajor, 32);
    let want = reference::spmm_vs(&a, &b);
    let schemes = octet_schemes();
    assert!(
        schemes.len() >= 4,
        "sweep must offer >= 3 non-default points"
    );
    for scheme in schemes {
        let label = scheme.label();
        let mut mem = MemPool::new();
        let kernel = OctetSpmm::with_scheme(&mut mem, &a, &b, Mode::Functional, scheme);

        sanitize_clean(&gpu, &mem, &kernel);
        let wave = certify(&mem, &kernel, &CertifyOptions::default());
        assert!(wave.is_provable(), "{label}: wave certification failed");
        let shard = analyze(&mem, &kernel);
        assert!(shard.is_shardable(), "{label}: {}", shard.summary());

        let mut sim = mem.clone();
        let sim_out = Launch::new(&mut sim, &kernel).run();
        assert!(!sim_out.native);
        let out = Launch::new(&mut mem, &kernel)
            .backend(Backend::Native)
            .run();
        assert!(out.native, "{label}: native lowering refused");
        assert_pools_identical(&sim, &mem, &label);

        let got = kernel.result(&mem);
        assert_eq!(
            got.max_abs_diff(&want),
            0.0,
            "{label}: diverged from reference"
        );
    }
}
