//! Tier-1 serving gate for `vecsparse-serve`.
//!
//! Three contracts the serving layer must keep:
//!
//! 1. **Fairness** — under a 10:1 skewed load the light tenant still
//!    anchors batches at a bounded rotation gap and every one of its
//!    jobs is served (weighted round-robin, not weighted priority).
//! 2. **SLO accounting is the trace** — per-tenant latency totals and
//!    percentiles in the [`ServeReport`] are recomputable, exactly,
//!    from the `"serve"` request spans the server records.
//! 3. **Serving is a transport, not a transform** — served outputs are
//!    bit-identical to running the same requests through a direct
//!    engine [`Context`], at any simulator thread count.

use std::sync::Arc;
use vecsparse::engine::Context;
use vecsparse::{SddmmAlgo, SpmmAlgo};
use vecsparse_formats::{gen, DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;
use vecsparse_serve::{JobOutput, JobRequest, ServeConfig, Server, TenantSpec};
use vecsparse_telemetry::{ArgValue, EventKind, TraceSink, DEFAULT_CAPACITY};

/// Reconfigure the global worker count (the thread-pool shim accepts
/// repeated configuration; see tests/determinism.rs).
fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread-pool shim accepts reconfiguration");
}

fn weights(seed: u64) -> Arc<VectorSparse<f16>> {
    Arc::new(gen::random_vector_sparse::<f16>(64, 64, 4, 0.8, seed))
}

fn rhs(rows: usize, n: usize, seed: u64) -> DenseMatrix<f16> {
    gen::random_dense::<f16>(rows, n, Layout::RowMajor, seed)
}

#[test]
fn no_tenant_starves_under_skewed_load() {
    let server = Server::start(
        ServeConfig::builder()
            .workers(1)
            .shards(1)
            .max_batch(4)
            .gpu(GpuConfig::small())
            .tenant(TenantSpec::new("heavy").weight(10).queue_depth(512))
            .tenant(TenantSpec::new("light").weight(1).queue_depth(64))
            .build(),
    );
    let a = weights(1);
    let heavy = server.client("heavy").unwrap();
    let light = server.client("light").unwrap();

    // 10:1 offered load, interleaved the way two open-loop tenants
    // would overlap: ten heavy submissions for every light one.
    let mut handles = Vec::new();
    let mut seed = 0u64;
    for _round in 0..10 {
        for _ in 0..10 {
            seed += 1;
            handles.push(
                heavy
                    .submit(JobRequest::Spmm {
                        a: Arc::clone(&a),
                        b: rhs(64, 16, seed),
                        algo: SpmmAlgo::Auto,
                    })
                    .expect("heavy admission"),
            );
        }
        seed += 1;
        handles.push(
            light
                .submit(JobRequest::Spmm {
                    a: Arc::clone(&a),
                    b: rhs(64, 16, seed),
                    algo: SpmmAlgo::Auto,
                })
                .expect("light admission"),
        );
    }
    for h in handles {
        h.wait().expect("served");
    }
    let report = server.finish();

    let heavy_r = &report.tenants[0];
    let light_r = &report.tenants[1];
    assert_eq!(heavy_r.served, 100, "heavy fully served");
    assert_eq!(light_r.served, 10, "light fully served — no starvation");
    assert_eq!(light_r.rejected, 0);

    // The fairness bound: the rotation visits every backlogged tenant
    // once per cycle, so the light tenant's anchor gap stays small even
    // though the heavy tenant has 10x the traffic. (A drain-the-biggest
    // or FIFO-across-tenants scheduler would stretch this toward the
    // heavy backlog length, ~25 batches at max_batch 4.)
    let gap = report.max_anchor_gap("light");
    assert!(
        (1..=8).contains(&gap),
        "light tenant anchor gap {gap} outside the fair range"
    );
    // Coalescing rode along: same operand + free dim across tenants
    // means batches carried free riders.
    assert!(report.coalesced > 0, "same-key jobs must coalesce");
    assert!(report.batches < 110, "batching must beat one-job dispatch");
}

#[test]
fn slo_accounting_matches_request_spans() {
    let sink = Arc::new(TraceSink::enabled(DEFAULT_CAPACITY));
    let server = Server::start(
        ServeConfig::builder()
            .workers(2)
            .shards(2)
            .max_batch(4)
            .gpu(GpuConfig::small())
            .memoization()
            .telemetry(Arc::clone(&sink))
            // Wall-clock latencies in a test process are unbounded above
            // but positive below: a generous SLO must be met, a
            // sub-microsecond one cannot be (latencies are clamped to
            // >= 1us).
            .tenant(
                TenantSpec::new("interactive")
                    .weight(4)
                    .slo_p99_ms(60_000.0),
            )
            .tenant(TenantSpec::new("bulk").slo_p99_ms(0.0005))
            .build(),
    );
    let a0 = weights(2);
    let a1 = Arc::new(gen::random_vector_sparse::<f16>(32, 128, 4, 0.9, 3));
    let mut handles = Vec::new();
    for (t, tenant) in ["interactive", "bulk"].iter().enumerate() {
        let client = server.client(tenant).unwrap();
        for j in 0..12u64 {
            let (a, n) = if j % 2 == 0 { (&a0, 16) } else { (&a1, 8) };
            handles.push(
                client
                    .submit(JobRequest::Spmm {
                        a: Arc::clone(a),
                        b: rhs(a.cols(), n, 100 + j + t as u64),
                        algo: SpmmAlgo::Auto,
                    })
                    .expect("admission"),
            );
        }
    }
    for h in handles {
        h.wait().expect("served");
    }
    let report = server.finish();

    // Group the request spans by their tenant argument.
    let events = sink.events();
    let mut durs: std::collections::HashMap<String, Vec<u64>> = Default::default();
    for e in &events {
        if e.kind == EventKind::Span && e.cat == "serve" && e.name == "request" {
            let tenant = e
                .args
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"tenant", ArgValue::Str(s)) => Some(s.clone()),
                    _ => None,
                })
                .expect("request spans carry a tenant arg");
            durs.entry(tenant).or_default().push(e.dur);
        }
    }

    for t in &report.tenants {
        let spans = durs.remove(&t.name).expect("spans for every tenant");
        assert_eq!(spans.len() as u64, t.served, "one span per served job");
        assert_eq!(
            spans.iter().sum::<u64>(),
            t.total_latency_us,
            "span durations sum to the accounted latency, exactly"
        );
        // The report's percentiles are recomputable from the trace:
        // nearest-rank over the span durations, microseconds -> ms.
        let mut sorted = spans;
        sorted.sort_unstable();
        let nearest =
            |p: f64| sorted[((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1];
        assert_eq!(t.p50_ms, nearest(50.0) as f64 / 1000.0);
        assert_eq!(t.p99_ms, nearest(99.0) as f64 / 1000.0);
    }
    assert!(durs.is_empty(), "no spans from unregistered tenants");

    // SLO verdicts follow the same numbers.
    assert_eq!(report.tenants[0].slo_met(), Some(true), "60s SLO is met");
    assert_eq!(
        report.tenants[1].slo_met(),
        Some(false),
        "0.5us SLO cannot be met: latencies clamp to >= 1us"
    );

    // Batch instants account for every served job too.
    let batch_sizes: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.cat == "serve" && e.name == "batch")
        .map(|e| {
            e.args
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"size", ArgValue::U64(n)) => Some(*n),
                    _ => None,
                })
                .expect("batch instants carry a size arg")
        })
        .sum();
    assert_eq!(batch_sizes, report.served());
}

/// The request mix for the bit-identity test: three resident SpMM
/// operands plus one SDDMM mask, several free dimensions.
fn identity_requests() -> Vec<JobRequest> {
    let a0 = weights(10);
    let a1 = Arc::new(gen::random_vector_sparse::<f16>(32, 96, 2, 0.7, 11));
    let a2 = Arc::new(gen::random_vector_sparse::<f16>(64, 64, 8, 0.9, 12));
    let mask: Arc<SparsityPattern> = Arc::new(
        gen::random_vector_sparse::<f16>(32, 48, 4, 0.7, 13)
            .pattern()
            .clone(),
    );
    let mut reqs = Vec::new();
    for j in 0..8u64 {
        for (i, a) in [&a0, &a1, &a2].into_iter().enumerate() {
            reqs.push(JobRequest::Spmm {
                a: Arc::clone(a),
                b: rhs(a.cols(), 16, 1000 + 10 * j + i as u64),
                algo: if i == 1 {
                    SpmmAlgo::Octet
                } else {
                    SpmmAlgo::Auto
                },
            });
        }
        reqs.push(JobRequest::Sddmm {
            mask: Arc::clone(&mask),
            a: gen::random_dense::<f16>(32, 64, Layout::RowMajor, 2000 + j),
            b: gen::random_dense::<f16>(64, 48, Layout::ColMajor, 3000 + j),
            algo: SddmmAlgo::OctetReg,
        });
    }
    reqs
}

/// Run the whole mix through a serving instance, outputs in
/// submission order.
fn serve_all(reqs: &[JobRequest]) -> Vec<JobOutput> {
    let server = Server::start(
        ServeConfig::builder()
            .workers(4)
            .shards(2)
            .max_batch(4)
            .gpu(GpuConfig::small())
            .memoization()
            .tenant(TenantSpec::new("solo"))
            .build(),
    );
    let client = server.client("solo").unwrap();
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| client.submit(r.clone()).expect("admission"))
        .collect();
    let outs = handles
        .into_iter()
        .map(|h| h.wait().expect("served"))
        .collect();
    let report = server.finish();
    assert_eq!(report.served() as usize, reqs.len());
    outs
}

/// The same mix through a direct engine context — the reference the
/// serving layer must reproduce bit-for-bit.
fn direct_all(reqs: &[JobRequest]) -> Vec<JobOutput> {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    reqs.iter()
        .map(|r| match r {
            JobRequest::Spmm { a, b, algo } => {
                JobOutput::Spmm(ctx.plan_spmm(a, b.cols(), *algo).run(b))
            }
            JobRequest::Sddmm { mask, a, b, algo } => {
                JobOutput::Sddmm(ctx.plan_sddmm(mask, a.cols(), *algo).run(a, b))
            }
        })
        .collect()
}

fn assert_identical(served: &[JobOutput], direct: &[JobOutput]) {
    assert_eq!(served.len(), direct.len());
    for (i, (s, d)) in served.iter().zip(direct).enumerate() {
        match (s, d) {
            (JobOutput::Spmm(s), JobOutput::Spmm(d)) => {
                assert_eq!(s, d, "request {i}: served SpMM differs from direct")
            }
            (JobOutput::Sddmm(s), JobOutput::Sddmm(d)) => {
                assert_eq!(s, d, "request {i}: served SDDMM differs from direct")
            }
            _ => panic!("request {i}: served op kind differs from direct"),
        }
    }
}

#[test]
fn serving_is_bit_identical_to_direct_execution() {
    let reqs = identity_requests();
    let direct = direct_all(&reqs);
    for threads in [1, 4] {
        set_threads(threads);
        let served = serve_all(&reqs);
        assert_identical(&served, &direct);
    }
}
