//! Property-based tests (proptest) over the core data structures and
//! kernel invariants.

use proptest::prelude::*;
use vecsparse::engine::Context;
use vecsparse::sddmm::{sddmm_octet, OctetVariant};
use vecsparse::SpmmAlgo;
use vecsparse_formats::{gen, reference, Csr, DenseMatrix, Layout, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;
use vecsparse_precision::KernelModel;

/// Strategy: a plausible (rows, cols, v, sparsity, seed) tuple with rows
/// divisible by v and everything small enough to run quickly.
fn vs_params() -> impl Strategy<Value = (usize, usize, usize, f64, u64)> {
    (
        1usize..5, // block-row count multiplier
        1usize..5, // column multiplier (×8)
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        0.2f64..0.95,
        any::<u64>(),
    )
        .prop_map(|(brm, cm, v, s, seed)| (brm * 8.max(v), cm * 16, v, s, seed))
        .prop_map(|(rows, cols, v, s, seed)| {
            // Ensure rows divisible by v.
            (rows.div_ceil(v) * v, cols, v, s, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Column-vector encoding roundtrips through dense exactly.
    #[test]
    fn cvse_dense_roundtrip((rows, cols, v, s, seed) in vs_params()) {
        let m = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let dense = m.to_dense(Layout::RowMajor);
        let back = VectorSparse::from_dense(&dense, v);
        // Structure may differ only by all-zero vectors the generator
        // created (possible but our generator never emits them: values
        // are nonzero multiples of 1/8... except 0 is in range).
        prop_assert_eq!(back.to_dense(Layout::RowMajor), dense);
    }

    /// Lowering CVSE to CSR preserves the dense image.
    #[test]
    fn cvse_csr_lowering((rows, cols, v, s, seed) in vs_params()) {
        let m = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let csr = m.to_csr();
        prop_assert_eq!(csr.to_dense(Layout::RowMajor), m.to_dense(Layout::RowMajor));
        prop_assert_eq!(csr.nnz(), m.pattern().nnz());
    }

    /// CSR extraction from dense keeps exactly the nonzeros.
    #[test]
    fn csr_from_dense_exact((rows, cols, _v, s, seed) in vs_params()) {
        let m = gen::random_csr::<f32>(rows, cols, s, seed);
        let d = m.to_dense(Layout::RowMajor);
        let back = Csr::from_dense(&d);
        prop_assert_eq!(back.to_dense(Layout::RowMajor), d);
    }

    /// The octet SpMM kernel equals the scalar reference for any
    /// structure (the paper's central functional claim).
    #[test]
    fn octet_spmm_matches_reference((rows, cols, v, s, seed) in vs_params()) {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let b = gen::random_dense::<f16>(cols, 64, Layout::RowMajor, seed ^ 1);
        let got = vecsparse::spmm::spmm_octet(&gpu, &a, &b);
        let want = reference::spmm_vs(&a, &b);
        prop_assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    /// The FPU subwarp kernel equals the reference too.
    #[test]
    fn fpu_spmm_matches_reference((rows, cols, v, s, seed) in vs_params()) {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let b = gen::random_dense::<f16>(cols, 64, Layout::RowMajor, seed ^ 2);
        let got = vecsparse::spmm::spmm_fpu(&gpu, &a, &b);
        let want = reference::spmm_vs(&a, &b);
        prop_assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    /// SDDMM (arch variant, the SWITCH extension) equals the reference
    /// for any mask structure.
    #[test]
    fn octet_sddmm_matches_reference((rows, cols, v, s, seed) in vs_params()) {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(rows, 64, Layout::RowMajor, seed ^ 3);
        let bt = gen::random_dense::<f16>(64, cols, Layout::ColMajor, seed ^ 4);
        let mask = gen::random_pattern(rows, cols, v, s, seed);
        let got = sddmm_octet(&gpu, &a, &bt, &mask, OctetVariant::Arch);
        let want = reference::sddmm(&a, &bt, &mask);
        for (g, w) in got.values().iter().zip(want.values()) {
            prop_assert_eq!(g, w);
        }
    }

    /// Sparse softmax output rows always sum to one (stored entries).
    #[test]
    fn sparse_softmax_normalised((rows, cols, v, s, seed) in vs_params()) {
        let gpu = GpuConfig::small();
        let x = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let sm = vecsparse::softmax::softmax_vs(&gpu, &x);
        let p = sm.pattern();
        for br in 0..p.block_rows() {
            if p.block_row_range(br).is_empty() {
                continue;
            }
            for e in 0..p.v() {
                let sum: f32 = p
                    .block_row_range(br)
                    .map(|i| sm.values()[i * p.v() + e].to_f32())
                    .sum();
                prop_assert!((sum - 1.0).abs() < 0.03, "sum {}", sum);
            }
        }
    }

    /// The octet SpMM output stays within its static precision
    /// certificate of the exact (all-f64) product — the bound the
    /// analyzer certifies really does dominate real executions.
    #[test]
    fn octet_spmm_within_certificate_of_f64((rows, cols, v, s, seed) in vs_params()) {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let b = gen::random_dense::<f16>(cols, 64, Layout::RowMajor, seed ^ 3);
        let got = vecsparse::spmm::spmm_octet(&gpu, &a, &b);
        let cert = KernelModel::tcu_reduction(cols).certificate("spmm-octet");
        let ad = a.to_dense(Layout::RowMajor);
        for r in 0..rows {
            for j in 0..64 {
                let mut exact = 0.0f64;
                for l in 0..cols {
                    exact += f64::from(ad.get(r, l).to_f32()) * f64::from(b.get(l, j).to_f32());
                }
                let err = (f64::from(got.get(r, j).to_f32()) - exact).abs();
                prop_assert!(
                    err <= cert.abs_error_bound,
                    "({r},{j}): err {} > bound {}", err, cert.abs_error_bound
                );
            }
        }
    }

    /// Sparse softmax stays within its static certificate of the
    /// all-f64 row softmax over the stored entries.
    #[test]
    fn sparse_softmax_within_certificate_of_f64((rows, cols, v, s, seed) in vs_params()) {
        let gpu = GpuConfig::small();
        let x = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let got = vecsparse::softmax::softmax_vs(&gpu, &x);
        let cert = KernelModel::softmax(cols).certificate("softmax-sparse");
        let p = x.pattern();
        for br in 0..p.block_rows() {
            let range = p.block_row_range(br);
            for e in 0..v {
                let stored = |i: usize| f64::from(x.values()[i * v + e].to_f32());
                let maxv = range.clone().map(stored).fold(f64::NEG_INFINITY, f64::max);
                if maxv == f64::NEG_INFINITY {
                    continue; // Empty scalar row.
                }
                let denom: f64 = range.clone().map(|i| (stored(i) - maxv).exp()).sum();
                for i in range.clone() {
                    let exact = (stored(i) - maxv).exp() / denom;
                    let err = (f64::from(got.values()[i * v + e].to_f32()) - exact).abs();
                    prop_assert!(
                        err <= cert.abs_error_bound,
                        "row {} entry {}: err {} > bound {}",
                        br * v + e, i, err, cert.abs_error_bound
                    );
                }
            }
        }
    }

    /// f16 roundtrip through f32 is exact for every finite value the
    /// generators can produce.
    #[test]
    fn f16_grid_is_stable(q in -64i32..=64) {
        let v = q as f32 / 8.0;
        let h = f16::from_f32(v);
        prop_assert_eq!(h.to_f32(), v);
        prop_assert_eq!(f16::from_f32(h.to_f32()), h);
    }

    /// SpMM is linear in A: scaling all values scales the output.
    #[test]
    fn spmm_scales_linearly((rows, cols, v, s, seed) in vs_params()) {
        let ctx = Context::builder().build();
        let a = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let b = gen::random_dense::<f16>(cols, 32, Layout::RowMajor, seed ^ 5);
        let c1 = ctx.spmm(&a, &b, SpmmAlgo::Octet);
        // Double every value of A (exact in f16 for our range).
        let doubled = VectorSparse::new(
            a.pattern().clone(),
            a.values().iter().map(|x| f16::from_f32(x.to_f32() * 2.0)).collect(),
        );
        let c2 = ctx.spmm(&doubled, &b, SpmmAlgo::Octet);
        for r in 0..c1.rows() {
            for cidx in 0..c1.cols() {
                let x = c1.get(r, cidx).to_f32() * 2.0;
                let y = c2.get(r, cidx).to_f32();
                prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
            }
        }
    }

    /// Dense matrices relayout without value change.
    #[test]
    fn dense_relayout_identity(rows in 1usize..20, cols in 1usize..20, seed in any::<u64>()) {
        let m = gen::random_dense::<f32>(rows, cols, Layout::RowMajor, seed);
        let cm = m.to_layout(Layout::ColMajor);
        let back = cm.to_layout(Layout::RowMajor);
        prop_assert_eq!(m, back);
    }
}

/// Deterministic regression: the DLMC suite builder is stable (structure
/// hashes do not drift between runs).
#[test]
fn dlmc_suite_is_stable() {
    let s1 = vecsparse_dlmc::suite(&[4], &[0.9]);
    let s2 = vecsparse_dlmc::suite(&[4], &[0.9]);
    assert_eq!(s1.len(), s2.len());
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.matrix, b.matrix);
    }
}

/// The generated benchmarks all have V-aligned rows, as the kernels
/// require.
#[test]
fn dlmc_alignment_invariant() {
    for bench in vecsparse_dlmc::suite(&[2, 4, 8], &[0.5, 0.98]) {
        assert_eq!(bench.rows() % bench.v, 0);
        let d: DenseMatrix<f16> = bench.matrix.to_dense(Layout::RowMajor);
        assert_eq!(d.rows(), bench.rows());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SMTX text roundtrip for arbitrary generated structures.
    #[test]
    fn smtx_text_roundtrip((rows, cols, v, s, seed) in vs_params()) {
        use vecsparse_formats::smtx::{pattern_to_smtx, Smtx};
        let p = gen::random_pattern(rows, cols, v, s, seed);
        let smtx = pattern_to_smtx(&p);
        let again = Smtx::parse(&smtx.to_text()).unwrap();
        prop_assert_eq!(&smtx, &again);
        prop_assert_eq!(again.nnz(), p.nnz_vectors());
    }

    /// Row-vector transposition is exact for any structure.
    #[test]
    fn rvse_transpose_exact((rows, cols, v, s, seed) in vs_params()) {
        use vecsparse_formats::RowVectorSparse;
        let m = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let t = RowVectorSparse::transpose_of(&m);
        prop_assert_eq!(
            t.to_dense(Layout::RowMajor),
            m.to_dense(Layout::RowMajor).transpose()
        );
    }

    /// The §5.2 wmma SpMM matches the reference for any structure.
    #[test]
    fn wmma_spmm_matches_reference((rows, cols, v, s, seed) in vs_params()) {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let b = gen::random_dense::<f16>(cols, 64, Layout::RowMajor, seed ^ 7);
        let got = vecsparse::spmm::spmm_wmma(&gpu, &a, &b);
        let want = reference::spmm_vs(&a, &b);
        prop_assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    /// Square-block transposition keeps kernels exact: SpMM with Wᵀ on the
    /// transposed encoding equals the dense transpose product.
    #[test]
    fn square_block_transpose_spmm(seed in any::<u64>()) {
        use vecsparse_formats::square_block::{random_square_block_pattern, transpose_square_block};
        let gpu = GpuConfig::small();
        let p = random_square_block_pattern(16, 32, 4, 0.6, seed);
        let w = gen::fill_pattern::<f16>(p, seed ^ 1);
        let wt = transpose_square_block(&w);
        let x = gen::random_dense::<f16>(16, 32, Layout::RowMajor, seed ^ 2);
        let got = vecsparse::spmm::spmm_octet(&gpu, &wt, &x);
        let want = reference::spmm_vs(&wt, &x);
        prop_assert_eq!(got.max_abs_diff(&want), 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every shipped kernel stays sanitizer-clean (no deny-level findings)
    /// at arbitrary shapes — bounds, barriers, and def-use integrity must
    /// hold for any tail predication the shape produces, not just the
    /// hand-picked test sizes.
    #[test]
    fn all_kernels_sanitize_clean_at_random_shapes(
        (rows, cols, v, s, seed) in vs_params(),
        n_mult in 1usize..4,
    ) {
        use vecsparse::registry::{self, Shape, ALL_KERNELS};
        use vecsparse_gpu_sim::Mode;
        use vecsparse_sanitizer::sanitize_clean;
        let gpu = GpuConfig::small();
        let shape = Shape {
            m: rows,
            n: n_mult * 32,
            k: cols,
            v,
            sparsity: s,
            seed,
        };
        for id in ALL_KERNELS {
            registry::with_kernel(id, &shape, Mode::Functional, |mem, kernel| {
                sanitize_clean(&gpu, mem, kernel);
            });
        }
    }
}
