//! Tier-1 shard-certificate gates.
//!
//! Two promises are pinned here. First, coverage: every registry kernel
//! publishes a [`ShardLayout`] and certifies shardable at the default
//! shape, and a certified 4-way row split merges bit-identically with
//! the unsharded reference. Second, soundness (the proptest): for every
//! registry kernel across a grid of sweep shapes, every dynamically
//! traced global access falls inside the static footprint certificate —
//! observed ⊆ certified — at 1 and at 4 worker threads.
//!
//! [`ShardLayout`]: vecsparse_gpu_sim::ShardLayout

use proptest::prelude::*;
use vecsparse::registry::{self, KernelId, Shape, ALL_KERNELS};
use vecsparse_gpu_sim::{CtaCtx, KernelSpec, Launch, MemPool, Mode};
use vecsparse_shardprove::{analyze, launch_sharded, AccessKind, FootprintCertificate};

/// Reconfigure the global worker count (the shim accepts repeated
/// configuration, as tests/determinism.rs relies on).
fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread-pool shim accepts reconfiguration");
}

/// Independently re-trace every CTA with per-lane detail and assert that
/// each byte the trace touches is covered by the certificate for that
/// CTA and access kind. This mirrors the execution model's clamping
/// (loads issue at least one element, stores only functionally written
/// ones) but goes through the *certificate*, not the analyzer's
/// internal footprints — the abstraction is what is on trial.
fn assert_observed_within(mem: &MemPool, kernel: &dyn KernelSpec, cert: &FootprintCertificate) {
    let lc = kernel.launch_config();
    for cta_id in 0..lc.grid {
        let mut cta = CtaCtx::new(
            cta_id,
            Mode::Performance,
            mem,
            lc.warps_per_cta,
            lc.smem_elems,
            lc.smem_elem_bytes,
        );
        cta.record_detail = true;
        kernel.run_cta(&mut cta);
        let (traces, _) = cta.finish();
        for t in &traces {
            for acc in &t.mem {
                if !acc.global {
                    continue;
                }
                let Some(d) = &acc.detail else { continue };
                let Some(buf) = d.buf else { continue };
                let len = mem.len(buf) as u32;
                let kind = if acc.store {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                for &off in d.offsets.iter().filter(|&&o| o != u32::MAX) {
                    let elems = if acc.store {
                        d.epl.min(len.saturating_sub(off))
                    } else {
                        d.epl.min(len.saturating_sub(off)).max(1)
                    };
                    if elems == 0 {
                        continue;
                    }
                    let lo = mem.addr(buf, off as usize);
                    let hi = lo + elems as u64 * d.elem_bytes;
                    for byte in lo..hi {
                        assert!(
                            cert.covers(cta_id, byte, kind),
                            "{}: CTA {cta_id} touched uncertified byte {byte:#x} ({kind:?})",
                            cert.kernel
                        );
                    }
                }
            }
        }
    }
}

/// Certify every registry kernel at `shape` and check observed ⊆
/// certified for each.
fn check_soundness_at(shape: &Shape) {
    for id in ALL_KERNELS {
        registry::with_kernel(id, shape, Mode::Functional, |mem, kernel| {
            let cert = analyze(mem, kernel);
            assert!(
                cert.is_shardable(),
                "{}: expected shardable at {shape:?}, got {}",
                kernel.name(),
                cert.summary()
            );
            assert_observed_within(mem, kernel, &cert);
        });
    }
}

/// A sweep-style shape grid kept friendly to every kernel: m a multiple
/// of 16 (so every V in {1,2,4,8} divides it), n and k multiples of 32.
fn shapes() -> impl Strategy<Value = Shape> {
    (
        1usize..3,
        prop_oneof![Just(32usize), Just(64)],
        prop_oneof![Just(32usize), Just(64)],
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        0.3f64..0.9,
        any::<u64>(),
    )
        .prop_map(|(mm, n, k, v, sparsity, seed)| Shape {
            m: mm * 16,
            n,
            k,
            v,
            sparsity,
            seed,
        })
}

#[test]
fn all_registry_kernels_certify_shardable() {
    let shape = Shape::default();
    for id in ALL_KERNELS {
        registry::with_kernel(id, &shape, Mode::Functional, |mem, kernel| {
            let cert = analyze(mem, kernel);
            assert!(cert.is_shardable(), "{}: {}", kernel.name(), cert.summary());
            assert_eq!(cert.ctas_traced, kernel.launch_config().grid);
        });
    }
}

#[test]
fn four_way_row_split_is_bit_identical() {
    // Tall enough that even the dense GEMM's M-tiling (tile_m = 128 at
    // this size) exposes at least three row-block cut points.
    let shape = Shape {
        m: 512,
        ..Shape::default()
    };
    for id in ALL_KERNELS {
        registry::with_kernel_mut(id, &shape, Mode::Functional, |mem, kernel| {
            let cert = analyze(mem, kernel);
            let plan = match cert.shard_plan(4) {
                Ok(plan) => plan,
                // Small grids may not offer 3 cut points; that is the
                // honest UnsplittableGrid refusal, not a soundness gap.
                Err(e) => {
                    panic!("{}: no 4-way plan at default shape: {e}", kernel.name())
                }
            };
            let mut reference = mem.clone();
            Launch::new(&mut reference, kernel).run();
            launch_sharded(mem, kernel, &plan);
            let buf = cert.layout.as_ref().expect("shardable has layout").out;
            assert_eq!(
                reference.contents(buf),
                mem.contents(buf),
                "{}: sharded merge diverged",
                kernel.name()
            );
        });
    }
}

#[test]
fn observed_within_certified_across_threads() {
    // The certificate is derived from sequential traces; re-check the
    // soundness relation under both worker-pool widths the determinism
    // gate uses, so threading can never widen the observed set.
    set_threads(1);
    check_soundness_at(&Shape::default());
    set_threads(4);
    check_soundness_at(&Shape::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Soundness over the sweep shape grid: every traced access of every
    /// registry kernel is inside its static certificate.
    #[test]
    fn observed_subset_of_certified(shape in shapes()) {
        check_soundness_at(&shape);
    }
}

#[test]
fn kernel_ids_cover_exactly_the_registry() {
    // Guard against a 15th kernel arriving without shard coverage: the
    // two coverage tests above iterate ALL_KERNELS, so this is just a
    // canary that ALL_KERNELS is still the full enum.
    assert_eq!(ALL_KERNELS.len(), 14);
    assert!(ALL_KERNELS.contains(&KernelId::SoftmaxDense));
}
