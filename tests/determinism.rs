//! Tier-1 determinism gate for the parallel simulation pipeline.
//!
//! The phase-split wave pipeline, the thread-pool shim, and the engine's
//! batch fan-out all promise the same contract: thread count is a
//! throughput knob, never an observable. Every simulated artifact —
//! functional kernel outputs, performance-model profiles, precision
//! certificates, and the launch-level Perfetto timeline — must be
//! bit-identical whether the simulator runs on 1, 4, or 8 workers.

use proptest::prelude::*;
use std::sync::Arc;
use vecsparse::engine::Context;
use vecsparse::registry::{self, KernelId, Shape};
use vecsparse::{SddmmAlgo, SpmmAlgo};
use vecsparse_formats::{gen, DenseMatrix, Layout, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, Launch, Mode};
use vecsparse_telemetry::{perfetto, TraceSink, DEFAULT_CAPACITY};

/// Reconfigure the global worker count. The shim accepts repeated
/// configuration (unlike real rayon), which is what lets one process
/// compare runs at several widths.
fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread-pool shim accepts reconfiguration");
}

/// Everything one full pass of the stack produces, in comparable form.
struct Snapshot {
    spmm_out: DenseMatrix<f16>,
    spmm_batch: Vec<DenseMatrix<f16>>,
    sddmm_vals: Vec<f16>,
    profile_csv: String,
    cycles: f64,
    certificates: String,
    trace_json: String,
}

fn snapshot() -> Snapshot {
    snapshot_with(false)
}

fn snapshot_with(memoize: bool) -> Snapshot {
    let gpu = GpuConfig::small();
    let ctx = if memoize {
        Context::builder().gpu(gpu.clone()).memoization().build()
    } else {
        Context::builder().gpu(gpu.clone()).build()
    };

    // SpMM: functional single run + batch fan-out + performance profile.
    let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.8, 11);
    let b = gen::random_dense::<f16>(64, 48, Layout::RowMajor, 12);
    let plan = ctx.plan_spmm(&a, 48, SpmmAlgo::Auto);
    let spmm_out = plan.run(&b);
    let batch: Vec<DenseMatrix<f16>> = (0..5)
        .map(|i| gen::random_dense::<f16>(64, 48, Layout::RowMajor, 100 + i))
        .collect();
    let spmm_batch = plan.run_batch(&batch);
    let profile = plan.profile(&b);
    // Under memoization, profile again: the compared artifacts then come
    // from the replay path, not the initial honest simulation.
    let profile = if memoize { plan.profile(&b) } else { profile };

    // SDDMM through the same context.
    let mask = gen::random_vector_sparse::<f16>(32, 48, 4, 0.7, 13)
        .pattern()
        .clone();
    let ad = gen::random_dense::<f16>(32, 64, Layout::RowMajor, 14);
    let bd = gen::random_dense::<f16>(64, 48, Layout::ColMajor, 15);
    let sddmm_out: VectorSparse<f16> = ctx.plan_sddmm(&mask, 64, SddmmAlgo::OctetReg).run(&ad, &bd);

    // Launch-level Perfetto timeline: spans carry simulated ticks, so
    // the exported document must be byte-stable. (Engine-level spans are
    // wall-clock and are deliberately not part of this gate.)
    let sink = Arc::new(TraceSink::enabled(DEFAULT_CAPACITY));
    let trace_json = registry::with_kernel_mut(
        KernelId::SpmmOctet,
        &Shape::default(),
        Mode::Performance,
        |mem, kernel| {
            Launch::new(&mut *mem, kernel)
                .gpu(&gpu)
                .performance()
                .traced(&sink)
                .run();
            perfetto::export_json(&sink)
        },
    );

    Snapshot {
        spmm_out,
        spmm_batch,
        sddmm_vals: sddmm_out.values().to_vec(),
        profile_csv: profile.csv_row(),
        cycles: profile.cycles,
        certificates: format!("{:?}", ctx.report().certificates),
        trace_json,
    }
}

#[test]
fn all_artifacts_bit_identical_across_thread_counts() {
    set_threads(1);
    let baseline = snapshot();
    for threads in [4usize, 8] {
        set_threads(threads);
        let got = snapshot();
        assert_eq!(
            got.spmm_out, baseline.spmm_out,
            "functional SpMM output diverged at {threads} threads"
        );
        assert_eq!(
            got.spmm_batch, baseline.spmm_batch,
            "batched SpMM outputs diverged at {threads} threads"
        );
        assert_eq!(
            got.sddmm_vals, baseline.sddmm_vals,
            "SDDMM values diverged at {threads} threads"
        );
        assert_eq!(
            got.cycles, baseline.cycles,
            "profile cycles diverged at {threads} threads"
        );
        assert_eq!(
            got.profile_csv, baseline.profile_csv,
            "profile counters diverged at {threads} threads"
        );
        assert_eq!(
            got.certificates, baseline.certificates,
            "report certificates diverged at {threads} threads"
        );
        assert_eq!(
            got.trace_json, baseline.trace_json,
            "perfetto timeline bytes diverged at {threads} threads"
        );
    }
    set_threads(1);
}

/// The full suite with wave memoization enabled: replayed artifacts must
/// match the honest single-thread baseline at every worker count.
#[test]
fn memoized_artifacts_match_honest_baseline_across_thread_counts() {
    set_threads(1);
    let baseline = snapshot();
    for threads in [1usize, 4, 8] {
        set_threads(threads);
        let got = snapshot_with(true);
        assert_eq!(
            got.spmm_out, baseline.spmm_out,
            "memoized SpMM output diverged at {threads} threads"
        );
        assert_eq!(
            got.spmm_batch, baseline.spmm_batch,
            "memoized batch outputs diverged at {threads} threads"
        );
        assert_eq!(
            got.sddmm_vals, baseline.sddmm_vals,
            "memoized SDDMM values diverged at {threads} threads"
        );
        assert_eq!(
            got.cycles, baseline.cycles,
            "replayed profile cycles diverged at {threads} threads"
        );
        assert_eq!(
            got.profile_csv, baseline.profile_csv,
            "replayed profile counters diverged at {threads} threads"
        );
        assert_eq!(
            got.certificates, baseline.certificates,
            "certificates diverged under memoization at {threads} threads"
        );
        assert_eq!(
            got.trace_json, baseline.trace_json,
            "perfetto timeline diverged under memoization at {threads} threads"
        );
    }
    set_threads(1);
}

#[test]
fn batch_fan_out_matches_sequential_runs() {
    set_threads(4);
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let a = gen::random_vector_sparse::<f16>(16, 32, 4, 0.75, 21);
    let plan = ctx.plan_spmm(&a, 32, SpmmAlgo::Octet);
    let batch: Vec<DenseMatrix<f16>> = (0..7)
        .map(|i| gen::random_dense::<f16>(32, 32, Layout::RowMajor, 200 + i))
        .collect();
    let fanned = plan.run_batch(&batch);
    let sequential: Vec<DenseMatrix<f16>> = batch.iter().map(|b| plan.run(b)).collect();
    assert_eq!(fanned, sequential);
    set_threads(1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any grid shape at any worker count produces the same bits and the
    /// same cycle estimate as the sequential simulator.
    #[test]
    fn grid_shape_times_threads_matches_sequential(
        mb in 1usize..4,
        k_blocks in 1usize..4,
        n in prop_oneof![Just(16usize), Just(32), Just(48)],
        v in prop_oneof![Just(2usize), Just(4), Just(8)],
        threads in 2usize..9,
        seed in 0u64..500,
    ) {
        let m = mb * v * 4;
        let k = k_blocks * 32;
        let a = gen::random_vector_sparse::<f16>(m, k, v, 0.7, seed);
        let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed + 1);

        set_threads(1);
        let ctx1 = Context::builder().gpu(GpuConfig::small()).build();
        let plan1 = ctx1.plan_spmm(&a, n, SpmmAlgo::Octet);
        let out_seq = plan1.run(&b);
        let cycles_seq = plan1.profile(&b).cycles;

        set_threads(threads);
        let ctx2 = Context::builder().gpu(GpuConfig::small()).build();
        let plan2 = ctx2.plan_spmm(&a, n, SpmmAlgo::Octet);
        let out_par = plan2.run(&b);
        let cycles_par = plan2.profile(&b).cycles;
        set_threads(1);

        prop_assert_eq!(out_par, out_seq);
        prop_assert_eq!(cycles_par, cycles_seq);
    }
}
