//! Cross-crate integration tests: the whole stack — formats → simulator →
//! kernels → application — exercised together.

use vecsparse::engine::Context;
use vecsparse::sddmm::OctetVariant;
use vecsparse::softmax::softmax_vs;
use vecsparse::{SddmmAlgo, SpmmAlgo};
use vecsparse_dlmc::{Benchmark, LayerShape};
use vecsparse_formats::{gen, reference, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;
use vecsparse_transformer::attention::{dense_attention_reference, sparse_attention_head};
use vecsparse_transformer::memory::{attention_peak_memory, Precision};
use vecsparse_transformer::AttentionConfig;

/// Every SpMM implementation agrees with the scalar reference on a
/// DLMC-style benchmark instance.
#[test]
fn spmm_stack_on_dlmc_benchmark() {
    let bench = Benchmark::build(
        LayerShape {
            name: "it_layer",
            rows: 64,
            cols: 128,
        },
        4,
        0.8,
    );
    let b = gen::random_dense::<f16>(bench.cols(), 64, Layout::RowMajor, 1);
    let want = reference::spmm_vs(&bench.matrix, &b);
    let ctx = Context::builder().build();
    for algo in [
        SpmmAlgo::Octet,
        SpmmAlgo::FpuSubwarp,
        SpmmAlgo::Dense,
        SpmmAlgo::Auto,
    ] {
        let got = ctx.spmm(&bench.matrix, &b, algo);
        assert_eq!(got.max_abs_diff(&want), 0.0, "{algo:?}");
    }
}

/// Every SDDMM implementation agrees with the scalar reference.
#[test]
fn sddmm_stack_agrees() {
    let a = gen::random_dense::<f16>(32, 64, Layout::RowMajor, 2);
    let bt = gen::random_dense::<f16>(64, 96, Layout::ColMajor, 3);
    let mask = gen::random_pattern(32, 96, 8, 0.75, 4);
    let want = reference::sddmm(&a, &bt, &mask);
    let ctx = Context::builder().build();
    for algo in [
        SddmmAlgo::OctetReg,
        SddmmAlgo::OctetShfl,
        SddmmAlgo::OctetArch,
        SddmmAlgo::FpuSubwarp,
        SddmmAlgo::Wmma,
        SddmmAlgo::Auto,
    ] {
        let got = ctx.sddmm(&a, &bt, &mask, algo);
        for (g, w) in got.values().iter().zip(want.values()) {
            assert_eq!(g, w, "{algo:?}");
        }
    }
}

/// The full sparse attention pipeline (SDDMM → softmax → SpMM through the
/// kernels) matches the dense masked reference.
#[test]
fn attention_pipeline_end_to_end() {
    let gpu = GpuConfig::small();
    let cfg = AttentionConfig {
        seq_len: 96,
        head_dim: 32,
        heads: 1,
        sparsity: 0.7,
        v: 8,
        band: 24,
    };
    let mask = cfg.mask(5);
    let q = gen::random_dense::<f16>(96, 32, Layout::RowMajor, 6);
    let k = gen::random_dense::<f16>(96, 32, Layout::RowMajor, 7);
    let v = gen::random_dense::<f16>(96, 32, Layout::RowMajor, 8);
    let got = sparse_attention_head(&Context::builder().gpu(gpu).build(), &q, &k, &v, &mask);
    let want = dense_attention_reference(&q, &k, &v, &mask);
    assert!(
        got.max_abs_diff(&want) < 5e-3,
        "diff {}",
        got.max_abs_diff(&want)
    );
}

/// Sparse softmax composed after SDDMM keeps rows normalised.
#[test]
fn sddmm_then_softmax_rows_sum_to_one() {
    let gpu = GpuConfig::small();
    let a = gen::random_dense::<f16>(32, 64, Layout::RowMajor, 9);
    let bt = gen::random_dense::<f16>(64, 64, Layout::ColMajor, 10);
    let mask = gen::random_pattern(32, 64, 4, 0.8, 11);
    let scores = Context::builder()
        .build()
        .sddmm(&a, &bt, &mask, SddmmAlgo::OctetArch);
    let probs = softmax_vs(&gpu, &scores);
    let p = probs.pattern();
    for br in 0..p.block_rows() {
        for e in 0..p.v() {
            let sum: f32 = p
                .block_row_range(br)
                .map(|i| probs.values()[i * p.v() + e].to_f32())
                .sum();
            assert!((sum - 1.0).abs() < 0.02, "row {}", br * p.v() + e);
        }
    }
}

/// The performance model's headline orderings hold on a mid-size problem:
/// octet > blocked-ELL > fpu at 90% sparsity, and octet beats dense.
#[test]
fn performance_orderings_hold() {
    let gpu = GpuConfig::default();
    let bench = Benchmark::build(
        LayerShape {
            name: "it_big",
            rows: 1024,
            cols: 1024,
        },
        4,
        0.9,
    );
    let b = gen::random_dense::<f16>(bench.cols(), 256, Layout::RowMajor, 12);
    let ctx = Context::builder().gpu(gpu).build();
    let octet = ctx.profile_spmm(&bench.matrix, &b, SpmmAlgo::Octet);
    let fpu = ctx.profile_spmm(&bench.matrix, &b, SpmmAlgo::FpuSubwarp);
    let ell = ctx.profile_spmm(&bench.matrix, &b, SpmmAlgo::BlockedEll);
    let dense = ctx.profile_spmm(&bench.matrix, &b, SpmmAlgo::Dense);
    // The tuner must agree with the headline ordering: Auto resolves to
    // the octet kernel here and never profiles worse than any fixed algo.
    let auto = ctx.plan_spmm(&bench.matrix, 256, SpmmAlgo::Auto);
    assert_eq!(auto.algo(), SpmmAlgo::Octet);
    assert!(
        octet.cycles < ell.cycles,
        "octet {} ell {}",
        octet.cycles,
        ell.cycles
    );
    assert!(
        octet.cycles < fpu.cycles,
        "octet {} fpu {}",
        octet.cycles,
        fpu.cycles
    );
    assert!(
        octet.cycles < dense.cycles,
        "octet {} dense {}",
        octet.cycles,
        dense.cycles
    );
}

/// SDDMM variant ordering: the SWITCH architecture never loses to the
/// software workarounds.
#[test]
fn sddmm_arch_variant_is_best() {
    let gpu = GpuConfig::default();
    let a = gen::random_dense::<f16>(512, 256, Layout::RowMajor, 13);
    let bt = gen::random_dense::<f16>(256, 512, Layout::ColMajor, 14);
    let mask = gen::random_pattern(512, 512, 8, 0.9, 15);
    let ctx = Context::builder().gpu(gpu).build();
    let arch = ctx.profile_sddmm(&a, &bt, &mask, SddmmAlgo::OctetArch);
    let reg = ctx.profile_sddmm(&a, &bt, &mask, SddmmAlgo::OctetReg);
    let shfl = ctx.profile_sddmm(&a, &bt, &mask, SddmmAlgo::OctetShfl);
    assert!(arch.cycles <= reg.cycles * 1.02);
    assert!(arch.cycles <= shfl.cycles * 1.02);
    let _ = OctetVariant::Arch;
}

/// Table 4's memory claim end-to-end: dense(float) ≈ 2× dense(half) ≫
/// sparse(half).
#[test]
fn transformer_memory_claims() {
    let cfg = AttentionConfig::paper_lra();
    let f32m = attention_peak_memory(&cfg, 8, Precision::Single, false);
    let f16m = attention_peak_memory(&cfg, 8, Precision::Half, false);
    let sp = attention_peak_memory(&cfg, 8, Precision::Half, true);
    assert!(f32m.total_bytes > f16m.total_bytes);
    assert!(f16m.total_bytes > 5 * sp.total_bytes);
}

/// Half precision makes the dense baseline faster (the §3 premise that
/// raises the bar for sparse kernels).
#[test]
fn half_precision_raises_the_bar() {
    let gpu = GpuConfig::default();
    let a16 = gen::random_dense::<f16>(1024, 512, Layout::RowMajor, 16);
    let b16 = gen::random_dense::<f16>(512, 256, Layout::RowMajor, 17);
    let h = vecsparse::spmm::profile_dense_gemm(&gpu, &a16, &b16);
    let a32 = a16.cast::<f32>();
    let b32 = b16.cast::<f32>();
    let s = vecsparse::spmm::profile_dense_gemm(&gpu, &a32, &b32);
    assert!(h.cycles * 1.5 < s.cycles, "h {} s {}", h.cycles, s.cycles);
}

/// Kernels handle a block row with zero nonzero vectors (empty rows are
/// common in real pruned models).
#[test]
fn empty_block_rows_are_fine() {
    use vecsparse_formats::{SparsityPattern, VectorSparse};
    // Three block rows (V=4): full, empty, one vector.
    let pattern = SparsityPattern::new(12, 16, 4, vec![0, 3, 3, 4], vec![0, 5, 9, 2]);
    let values: Vec<f16> = (0..16).map(|i| f16::from_f32(i as f32 / 8.0)).collect();
    let a = VectorSparse::new(pattern, values);
    let b = gen::random_dense::<f16>(16, 64, Layout::RowMajor, 20);
    let want = reference::spmm_vs(&a, &b);
    let ctx = Context::builder().build();
    let got = ctx.spmm(&a, &b, SpmmAlgo::Octet);
    assert_eq!(got.max_abs_diff(&want), 0.0);
    let got_fpu = ctx.spmm(&a, &b, SpmmAlgo::FpuSubwarp);
    assert_eq!(got_fpu.max_abs_diff(&want), 0.0);
}

/// The octet SpMM masks its stores correctly when N is not a multiple of
/// the 64-wide tile.
#[test]
fn unaligned_rhs_width() {
    let a = gen::random_vector_sparse::<f16>(16, 64, 4, 0.6, 21);
    let ctx = Context::builder().build();
    for n in [40usize, 72, 100] {
        let b = gen::random_dense::<f16>(64, n, Layout::RowMajor, 22);
        let want = reference::spmm_vs(&a, &b);
        let got = ctx.spmm(&a, &b, SpmmAlgo::Octet);
        assert_eq!(got.max_abs_diff(&want), 0.0, "N={n}");
    }
}

/// The dense softmax kernel normalises rows like the reference.
#[test]
fn dense_softmax_kernel() {
    use vecsparse::softmax::DenseSoftmax;
    use vecsparse_gpu_sim::{Launch, MemPool, Mode};
    let gpu = GpuConfig::small();
    let x = gen::random_dense::<f16>(8, 48, Layout::RowMajor, 23);
    let mut mem = MemPool::new();
    let kernel = DenseSoftmax::new(&mut mem, 8, 48, Mode::Functional);
    for (i, v) in x.data().iter().enumerate() {
        mem.write(kernel.input(), i, v.to_f32());
    }
    Launch::new(&mut mem, &kernel).gpu(&gpu).run();
    let want = reference::softmax_dense(&x);
    for r in 0..8 {
        for c in 0..48 {
            let got = mem.read(kernel.output(), r * 48 + c);
            assert!(
                (got - want.get(r, c).to_f32()).abs() < 2e-3,
                "({r},{c}): {got} vs {}",
                want.get(r, c)
            );
        }
    }
}

/// §8 Case 2: a row-sparse (global attention) pattern runs through the
/// standard kernels unchanged.
#[test]
fn row_sparse_case2() {
    use vecsparse_formats::square_block::row_sparse_pattern;
    let pattern = row_sparse_pattern(32, 48, 8, &[0, 2]);
    let a = gen::fill_pattern::<f16>(pattern.clone(), 24);
    let b = gen::random_dense::<f16>(48, 64, Layout::RowMajor, 25);
    let want = reference::spmm_vs(&a, &b);
    let ctx = Context::builder().build();
    let got = ctx.spmm(&a, &b, SpmmAlgo::Octet);
    assert_eq!(got.max_abs_diff(&want), 0.0);
    // And as an SDDMM mask.
    let q = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 26);
    let kt = gen::random_dense::<f16>(32, 48, Layout::ColMajor, 27);
    let got2 = ctx.sddmm(&q, &kt, &pattern, SddmmAlgo::OctetArch);
    let want2 = reference::sddmm(&q, &kt, &pattern);
    for (g, w) in got2.values().iter().zip(want2.values()) {
        assert_eq!(g, w);
    }
}

/// §8 Case 1 end-to-end: forward, data-gradient, and weight-gradient of
/// a square-block layer all agree with dense references.
#[test]
fn square_block_training_step() {
    use vecsparse::sddmm::{sddmm_octet, OctetVariant};
    use vecsparse::spmm::spmm_octet;
    use vecsparse_formats::square_block::{random_square_block_pattern, transpose_square_block};
    let gpu = GpuConfig::small();
    let pattern = random_square_block_pattern(32, 64, 4, 0.75, 28);
    let w = gen::fill_pattern::<f16>(pattern.clone(), 29);
    let x = gen::random_dense::<f16>(64, 32, Layout::RowMajor, 30);
    assert_eq!(
        spmm_octet(&gpu, &w, &x).max_abs_diff(&reference::spmm_vs(&w, &x)),
        0.0
    );
    let wt = transpose_square_block(&w);
    let dv = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 31);
    assert_eq!(
        spmm_octet(&gpu, &wt, &dv).max_abs_diff(&reference::spmm_vs(&wt, &dv)),
        0.0
    );
    let xt = x.transpose().to_layout(Layout::ColMajor);
    let dw = sddmm_octet(&gpu, &dv, &xt, &pattern, OctetVariant::Arch);
    let dw_want = reference::sddmm(&dv, &xt, &pattern);
    for (g, want) in dw.values().iter().zip(dw_want.values()) {
        assert_eq!(g, want);
    }
}

/// All SpMM kernels handle unaligned N (the row-safe residue stores).
#[test]
fn unaligned_rhs_all_kernels() {
    let a = gen::random_vector_sparse::<f16>(16, 64, 4, 0.7, 32);
    let b = gen::random_dense::<f16>(64, 88, Layout::RowMajor, 33);
    let want = reference::spmm_vs(&a, &b);
    let ctx = Context::builder().build();
    for algo in [SpmmAlgo::Octet, SpmmAlgo::FpuSubwarp] {
        let got = ctx.spmm(&a, &b, algo);
        assert_eq!(got.max_abs_diff(&want), 0.0, "{algo:?}");
    }
    // Blocked-ELL at an unaligned width against its own dense image.
    use vecsparse::spmm::spmm_blocked_ell;
    let ell = gen::random_blocked_ell::<f16>(16, 64, 4, 0.7, 34);
    let got = spmm_blocked_ell(&GpuConfig::small(), &ell, &b);
    let ell_want = reference::gemm(&ell.to_dense(Layout::RowMajor), &b);
    assert_eq!(got.max_abs_diff(&ell_want), 0.0);
}

/// Performance-model scaling invariants: doubling the grid roughly
/// doubles extrapolated instruction counts, and cycles grow monotonically
/// once the machine is saturated.
#[test]
fn extrapolation_scales_with_grid() {
    let gpu = GpuConfig::default();
    let b = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 40);
    let small = gen::random_vector_sparse::<f16>(1024, 256, 4, 0.9, 41);
    let big = gen::random_vector_sparse::<f16>(4096, 256, 4, 0.9, 41);
    let ctx = Context::builder().gpu(gpu).build();
    let ps = ctx.profile_spmm(&small, &b, SpmmAlgo::Octet);
    let pb = ctx.profile_spmm(&big, &b, SpmmAlgo::Octet);
    assert_eq!(pb.grid, 4 * ps.grid);
    let ratio = pb.instrs.total() as f64 / ps.instrs.total() as f64;
    assert!((3.0..5.0).contains(&ratio), "instr ratio {ratio}");
    assert!(pb.cycles > ps.cycles);
}

/// Sparser input means fewer cycles and less traffic for the octet kernel
/// (monotonicity of the whole model stack).
#[test]
fn cycles_monotone_in_sparsity() {
    let gpu = GpuConfig::default();
    let b = gen::random_dense::<f16>(512, 256, Layout::RowMajor, 42);
    let ctx = Context::builder().gpu(gpu).build();
    let mut last = f64::INFINITY;
    for s in [0.5, 0.7, 0.9, 0.98] {
        let a = gen::random_vector_sparse::<f16>(1024, 512, 4, s, 43);
        let p = ctx.profile_spmm(&a, &b, SpmmAlgo::Octet);
        assert!(p.cycles < last, "S={s}: {} !< {last}", p.cycles);
        last = p.cycles;
    }
}

/// Attention-layer latency is monotone in mask density.
#[test]
fn attention_latency_monotone() {
    use vecsparse_transformer::attention::sparse_attention_latency;
    let gpu = GpuConfig::default();
    let mut last = f64::INFINITY;
    for s in [0.85, 0.92, 0.97] {
        let cfg = AttentionConfig {
            seq_len: 1024,
            head_dim: 64,
            heads: 2,
            sparsity: s,
            v: 8,
            band: ((1024.0 * (1.0 - s) / 2.0) as usize).max(8),
        };
        let lat = sparse_attention_latency(&gpu, &cfg).total();
        assert!(lat < last, "S={s}: {lat} !< {last}");
        last = lat;
    }
}

/// Quantising a trained model to f16 changes few predictions (the Table 4
/// quantisation-robustness claim at test scale).
#[test]
fn quantisation_is_benign() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vecsparse_transformer::model::{EvalMode, SyntheticTask, TinyTransformer, TrainConfig};
    let task = SyntheticTask { seq_len: 32 };
    let mut model = TinyTransformer::new(32, 16, 44);
    let cfg = TrainConfig {
        steps: 150,
        ..TrainConfig::default()
    };
    model.train(&task, &cfg, false);
    let mut rng = StdRng::seed_from_u64(45);
    let test = task.batch(200, &mut rng);
    let a32 = model.accuracy(&test, EvalMode::DenseSingle);
    let mut q = TinyTransformer::new(32, 16, 44);
    q.clone_weights_from(&model);
    q.quantise_f16();
    let a16 = q.accuracy(&test, EvalMode::DenseHalf);
    assert!((a32 - a16).abs() <= 0.05, "f32 {a32} f16 {a16}");
}
