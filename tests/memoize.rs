//! Tier-1 soundness gate for certified wave memoization.
//!
//! Memoization must be *invisible*: every simulated artifact — functional
//! outputs, performance profiles, Perfetto timelines — produced with
//! `--memoize` semantics must be bit-identical to the honest simulation,
//! at any worker-thread count. Kernels whose wave equivalence cannot be
//! proven must never receive a signature, and therefore can never be
//! memoized at all.

use proptest::prelude::*;
use std::sync::Arc;
use vecsparse::engine::Context;
use vecsparse::registry::{self, KernelId, Shape};
use vecsparse::SpmmAlgo;
use vecsparse_formats::{gen, DenseMatrix, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::sig::Fingerprint;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, ElemWidth, GpuConfig, KernelSpec, Launch, LaunchConfig, MemPool, Mode,
    Program, Site, WVec, WaveMemo, NO_LANES,
};
use vecsparse_telemetry::{perfetto, TraceSink, DEFAULT_CAPACITY};
use vecsparse_waveprove::{certify, CertifyOptions, ProofFailure, WaveVerdict};

fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread-pool shim accepts reconfiguration");
}

/// One engine pass: functional run, repeated profiles, a small batch.
struct Artifacts {
    out: DenseMatrix<f16>,
    batch: Vec<DenseMatrix<f16>>,
    profile_csv: Vec<String>,
    cycles: Vec<f64>,
}

fn run_stack(
    memoize: bool,
    m: usize,
    k: usize,
    n: usize,
    v: usize,
    sparsity: f64,
    seed: u64,
) -> Artifacts {
    let ctx = if memoize {
        Context::builder()
            .gpu(GpuConfig::small())
            .memoization()
            .build()
    } else {
        Context::builder().gpu(GpuConfig::small()).build()
    };
    let a = gen::random_vector_sparse::<f16>(m, k, v, sparsity, seed);
    let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed + 1);
    let plan = ctx.plan_spmm(&a, n, SpmmAlgo::Octet);
    let out = plan.run(&b);
    let batch: Vec<DenseMatrix<f16>> = (0..3)
        .map(|i| gen::random_dense::<f16>(k, n, Layout::RowMajor, seed + 10 + i))
        .collect();
    let batch = plan.run_batch(&batch);
    // Repeated profiles: under memoization the 2nd/3rd replay from cache.
    let profiles: Vec<_> = (0..3).map(|_| plan.profile(&b)).collect();
    if memoize {
        let stats = ctx.memo_stats().expect("memoizing context reports stats");
        assert!(
            stats.launch_hits + stats.wave_hits > 0,
            "repeated profiles of one plan must hit the memoizer"
        );
    } else {
        assert!(ctx.memo_stats().is_none());
    }
    Artifacts {
        out,
        batch,
        profile_csv: profiles.iter().map(|p| p.csv_row()).collect(),
        cycles: profiles.iter().map(|p| p.cycles).collect(),
    }
}

#[test]
fn memoization_is_invisible_at_one_and_four_threads() {
    set_threads(1);
    let plain = run_stack(false, 32, 64, 48, 4, 0.8, 31);
    for threads in [1usize, 4] {
        set_threads(threads);
        let memo = run_stack(true, 32, 64, 48, 4, 0.8, 31);
        assert_eq!(
            memo.out, plain.out,
            "functional output at {threads} threads"
        );
        assert_eq!(
            memo.batch, plain.batch,
            "batch outputs at {threads} threads"
        );
        assert_eq!(
            memo.profile_csv, plain.profile_csv,
            "profile counters at {threads} threads"
        );
        assert_eq!(memo.cycles, plain.cycles, "cycles at {threads} threads");
    }
    set_threads(1);
}

/// Traced replay: the Perfetto timeline of (simulate, replay) must be
/// byte-identical to (simulate, simulate) — the recorded `TraceShard` is
/// replayed with the same wave base times the scheduler would produce.
#[test]
fn traced_replay_timeline_is_bit_identical() {
    set_threads(1);
    let gpu = GpuConfig::small();
    let shape = Shape::default();

    let honest = registry::with_kernel_mut(
        KernelId::SpmmOctet,
        &shape,
        Mode::Performance,
        |mem, kernel| {
            let sink = Arc::new(TraceSink::enabled(DEFAULT_CAPACITY));
            for _ in 0..2 {
                Launch::new(&mut *mem, kernel)
                    .gpu(&gpu)
                    .performance()
                    .traced(&sink)
                    .run();
            }
            perfetto::export_json(&sink)
        },
    );

    let (memoized, stats) = registry::with_kernel_mut(
        KernelId::SpmmOctet,
        &shape,
        Mode::Performance,
        |mem, kernel| {
            let cert = certify(&*mem, kernel, &CertifyOptions::default());
            let sig = cert
                .launch_sig(Fingerprint::default())
                .expect("registry kernels are provable");
            let memo = WaveMemo::with_audit(0);
            let sink = Arc::new(TraceSink::enabled(DEFAULT_CAPACITY));
            for _ in 0..2 {
                Launch::new(&mut *mem, kernel)
                    .gpu(&gpu)
                    .performance()
                    .traced(&sink)
                    .memo(&memo, sig)
                    .run();
            }
            (perfetto::export_json(&sink), memo.stats())
        },
    );

    assert!(
        stats.wave_hits > 0,
        "second traced launch must replay waves"
    );
    assert_eq!(memoized, honest, "replayed timeline bytes diverged");
    set_threads(1);
}

// A gather whose load addresses come from operand values: the canonical
// kernel that must be NotProvable and therefore never memoizable.
struct ValueGather {
    indices: BufferId,
    data: BufferId,
    output: BufferId,
    sites: (Site, Site),
    static_len: u32,
}

impl ValueGather {
    fn stage(mem: &mut MemPool) -> Self {
        let idx: Vec<f32> = (0..256).map(|i| ((i * 5) % 32) as f32).collect();
        let indices = mem.alloc_init(ElemWidth::B32, idx);
        let data = mem.alloc_ghost(ElemWidth::B32, 32);
        let output = mem.alloc_ghost(ElemWidth::B32, 256);
        let mut p = Program::new();
        let sites = (p.site("ldg", 0), p.site("stg", 0));
        ValueGather {
            indices,
            data,
            output,
            sites,
            static_len: p.static_len(),
        }
    }
}

impl KernelSpec for ValueGather {
    fn name(&self) -> String {
        "test-value-gather".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: 8,
            warps_per_cta: 1,
            regs_per_thread: 32,
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let cta_id = cta.cta_id;
        let mut w = cta.warp(0);
        let mut offs = NO_LANES;
        for (l, o) in offs.iter_mut().enumerate() {
            *o = w.mem().read(self.indices, cta_id * 32 + l) as u32;
        }
        let v = w.ldg(self.sites.0, self.data, &offs, 1, &[]);
        let mut store_offs = NO_LANES;
        for (l, o) in store_offs.iter_mut().enumerate() {
            *o = (cta_id * 32 + l) as u32;
        }
        let mut out = WVec::zeros(1);
        out.set_tok(v.tok());
        w.stg(self.sites.1, self.output, &store_offs, &out, &[v.tok()]);
    }
}

#[test]
fn data_dependent_kernel_is_not_provable_and_never_memoized() {
    let mut mem = MemPool::new();
    let kernel = ValueGather::stage(&mut mem);
    let cert = certify(&mem, &kernel, &CertifyOptions::default());
    assert!(
        matches!(
            cert.verdict,
            WaveVerdict::NotProvable(ProofFailure::ValueDependentTrace { .. })
        ),
        "expected value-dependent failure, got {:?}",
        cert.verdict
    );
    // No verdict, no signature — and without a signature the launch path
    // cannot consult the memoizer at all.
    assert!(cert.launch_sig(Fingerprint::default()).is_none());
    let memo = WaveMemo::with_audit(0);
    let sink = TraceSink::disabled();
    let gpu = GpuConfig::small();
    let sig = cert.launch_sig(Fingerprint::default());
    for _ in 0..3 {
        Launch::new(&mut mem, &kernel)
            .gpu(&gpu)
            .performance()
            .traced(&sink)
            .memo_opt(sig.map(|s| (&memo, s)))
            .run();
    }
    let stats = memo.stats();
    assert_eq!(stats.wave_hits, 0, "unprovable kernel must never hit");
    assert_eq!(stats.wave_misses, 0, "unprovable kernel must never probe");
    assert_eq!(stats.launch_hits + stats.launch_misses, 0);
    assert_eq!(stats.wave_entries, 0, "nothing may be inserted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// DLMC-like grid: random shapes and sparsities — memoized profiles,
    /// outputs, and batches bit-identical to the plain engine at 1 and 4
    /// worker threads.
    #[test]
    fn dlmc_like_grid_memoization_is_invisible(
        mb in 1usize..4,
        k_blocks in 1usize..4,
        n in prop_oneof![Just(16usize), Just(32), Just(48)],
        v in prop_oneof![Just(2usize), Just(4), Just(8)],
        sparsity in prop_oneof![Just(0.5f64), Just(0.7), Just(0.9), Just(0.98)],
        threads in prop_oneof![Just(1usize), Just(4)],
        seed in 0u64..300,
    ) {
        let m = mb * v * 4;
        let k = k_blocks * 32;
        set_threads(1);
        let plain = run_stack(false, m, k, n, v, sparsity, seed);
        set_threads(threads);
        let memo = run_stack(true, m, k, n, v, sparsity, seed);
        set_threads(1);
        prop_assert_eq!(memo.out, plain.out);
        prop_assert_eq!(memo.batch, plain.batch);
        prop_assert_eq!(memo.profile_csv, plain.profile_csv);
        prop_assert_eq!(memo.cycles, plain.cycles);
    }
}
