//! Tier-1 equivalence gate for the event-driven timing mode.
//!
//! `TimingMode::Event` is a wall-clock optimisation, never an
//! observable: every simulated artifact — cycle counts, the full
//! performance profile, functional outputs, and Perfetto trace bytes —
//! must be bit-identical to `TimingMode::Tick`, at any worker-thread
//! count, across the whole kernel registry. The event scheduler may
//! jump the clock only between issue events and must fall back to
//! tick-exact stepping inside contended (barrier) windows; these tests
//! are the external check that the fallback rule is airtight.

use proptest::prelude::*;
use std::sync::Arc;
use vecsparse::engine::Context;
use vecsparse::registry::{self, KernelId, Shape, ALL_KERNELS};
use vecsparse::SpmmAlgo;
use vecsparse_formats::{gen, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, Launch, Mode, TimingMode};
use vecsparse_telemetry::{perfetto, TraceSink, DEFAULT_CAPACITY};

/// Reconfigure the global worker count (the shim accepts repeated
/// configuration, letting one process compare widths).
fn set_threads(n: usize) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("thread-pool shim accepts reconfiguration");
}

/// Profile one registry kernel under the given timing mode and render
/// every counter in comparable form. Float `Debug` prints the shortest
/// round-tripping representation, so string equality here is bit
/// equality of the underlying profile.
fn profile_registry(id: KernelId, shape: &Shape, gpu: &GpuConfig, timing: TimingMode) -> String {
    registry::with_kernel_mut(id, shape, Mode::Performance, |mem, kernel| {
        let out = Launch::new(&mut *mem, kernel)
            .gpu(gpu)
            .performance()
            .timing(timing)
            .run();
        let p = out.profile.expect("performance launch profiles");
        format!("{:016x} {} {:?}", p.cycles.to_bits(), p.csv_row(), p)
    })
}

/// Every kernel in the registry, default shape: event-timed profiles
/// must match tick-timed profiles bit for bit.
#[test]
fn full_registry_event_profiles_match_tick() {
    set_threads(1);
    let gpu = GpuConfig::small();
    let shape = Shape::default();
    for id in ALL_KERNELS {
        let tick = profile_registry(id, &shape, &gpu, TimingMode::Tick);
        let event = profile_registry(id, &shape, &gpu, TimingMode::Event);
        assert_eq!(
            event, tick,
            "event-timed profile diverged from tick for {id:?}"
        );
    }
}

/// Perfetto timeline bytes are part of the contract: a traced
/// event-timed launch must export the exact same document as a traced
/// tick-timed launch.
#[test]
fn perfetto_trace_bytes_identical_across_timing_modes() {
    set_threads(1);
    let gpu = GpuConfig::small();
    let export = |timing: TimingMode| {
        let sink = Arc::new(TraceSink::enabled(DEFAULT_CAPACITY));
        registry::with_kernel_mut(
            KernelId::SpmmOctet,
            &Shape::default(),
            Mode::Performance,
            |mem, kernel| {
                Launch::new(&mut *mem, kernel)
                    .gpu(&gpu)
                    .performance()
                    .timing(timing)
                    .traced(&sink)
                    .run();
                perfetto::export_json(&sink)
            },
        )
    };
    assert_eq!(
        export(TimingMode::Event),
        export(TimingMode::Tick),
        "perfetto trace bytes diverged between timing modes"
    );
}

/// Engine-level plumbing: a `Context` built with
/// `.timing(TimingMode::Event)` must produce the same functional
/// outputs and profile cycles as a tick context.
#[test]
fn engine_context_event_timing_matches_tick() {
    set_threads(1);
    let a = gen::random_vector_sparse::<f16>(64, 128, 4, 0.85, 31);
    let b = gen::random_dense::<f16>(128, 48, Layout::RowMajor, 32);
    let run = |timing: TimingMode| {
        let ctx = Context::builder()
            .gpu(GpuConfig::small())
            .timing(timing)
            .build();
        assert_eq!(ctx.timing(), timing);
        let plan = ctx.plan_spmm(&a, 48, SpmmAlgo::Octet);
        let out = plan.run(&b);
        let cycles = plan.profile(&b).cycles;
        (out, cycles.to_bits())
    };
    let tick = run(TimingMode::Tick);
    let event = run(TimingMode::Event);
    assert_eq!(
        event.0, tick.0,
        "functional output diverged under event timing"
    );
    assert_eq!(
        event.1, tick.1,
        "profile cycles diverged under event timing"
    );
}

/// The runtime audit hook: with `VECSPARSE_AUDIT`-style cross-checking
/// forced on every wave, an event-timed sweep over a registry kernel
/// must pass every tick re-simulation check (the audit asserts inside
/// the launch) and still produce tick-identical cycles.
#[test]
fn audited_event_launch_passes_and_matches_tick() {
    use vecsparse_gpu_sim::sig::Fingerprint;
    use vecsparse_gpu_sim::WaveMemo;
    use vecsparse_waveprove::{certify, CertifyOptions};

    set_threads(1);
    let gpu = GpuConfig::small();
    let shape = Shape::default();
    let tick = profile_registry(KernelId::SpmmOctet, &shape, &gpu, TimingMode::Tick);
    let audited = registry::with_kernel_mut(
        KernelId::SpmmOctet,
        &shape,
        Mode::Performance,
        |mem, kernel| {
            let cert = certify(&*mem, kernel, &CertifyOptions::default());
            let sig = cert
                .launch_sig(Fingerprint::default())
                .expect("registry kernels are provable");
            let memo = WaveMemo::with_audit(1);
            let out = Launch::new(&mut *mem, kernel)
                .gpu(&gpu)
                .performance()
                .timing(TimingMode::Event)
                .memo(&memo, sig)
                .run();
            let p = out.profile.expect("performance launch profiles");
            format!("{:016x} {} {:?}", p.cycles.to_bits(), p.csv_row(), p)
        },
    );
    assert_eq!(audited, tick, "audited event profile diverged from tick");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any grid shape, any worker count: the event-timed engine stack
    /// produces the same output bits and cycle estimate as tick.
    #[test]
    fn grid_shape_event_matches_tick_across_threads(
        mb in 1usize..4,
        k_blocks in 1usize..4,
        n in prop_oneof![Just(16usize), Just(32), Just(48)],
        v in prop_oneof![Just(2usize), Just(4), Just(8)],
        threads in prop_oneof![Just(1usize), Just(4)],
        seed in 0u64..500,
    ) {
        let m = mb * v * 4;
        let k = k_blocks * 32;
        let a = gen::random_vector_sparse::<f16>(m, k, v, 0.7, seed);
        let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed + 1);

        set_threads(1);
        let tick_ctx = Context::builder().gpu(GpuConfig::small()).build();
        let tick_plan = tick_ctx.plan_spmm(&a, n, SpmmAlgo::Octet);
        let out_tick = tick_plan.run(&b);
        let cycles_tick = tick_plan.profile(&b).cycles;

        set_threads(threads);
        let ev_ctx = Context::builder()
            .gpu(GpuConfig::small())
            .timing(TimingMode::Event)
            .build();
        let ev_plan = ev_ctx.plan_spmm(&a, n, SpmmAlgo::Octet);
        let out_ev = ev_plan.run(&b);
        let cycles_ev = ev_plan.profile(&b).cycles;
        set_threads(1);

        prop_assert_eq!(out_ev, out_tick);
        prop_assert_eq!(cycles_ev.to_bits(), cycles_tick.to_bits());
    }
}
