//! End-to-end telemetry tests: the fallible engine API rejects malformed
//! inputs with typed errors (no panics), and a traced profiling run
//! exports a Perfetto document whose engine spans nest over one timeline
//! track per SM scheduler.

use std::sync::Arc;
use vecsparse::engine::{Context, EngineError};
use vecsparse::{SddmmAlgo, SpmmAlgo};
use vecsparse_formats::{gen, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, TraceSink};
use vecsparse_telemetry::perfetto;

#[test]
fn try_plan_rejects_malformed_inputs() {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.7, 1);

    match ctx.try_plan_spmm(&a, 0, SpmmAlgo::Octet) {
        Err(EngineError::EmptyDimension { what }) => assert!(what.contains('n')),
        Err(other) => panic!("expected EmptyDimension, got {other:?}"),
        Ok(_) => panic!("expected EmptyDimension, got a plan"),
    }

    let wide = gen::random_vector_sparse::<f16>(32, 64, 16, 0.7, 1);
    match ctx.try_plan_spmm(&wide, 32, SpmmAlgo::Octet) {
        Err(EngineError::UnsupportedV { v }) => assert_eq!(v, 16),
        Err(other) => panic!("expected UnsupportedV, got {other:?}"),
        Ok(_) => panic!("expected UnsupportedV, got a plan"),
    }

    let mask = gen::random_pattern(32, 32, 8, 0.6, 2);
    match ctx.try_plan_sddmm(&mask, 0, SddmmAlgo::OctetArch) {
        Err(EngineError::EmptyDimension { what }) => assert!(what.contains('k')),
        Err(other) => panic!("expected EmptyDimension, got {other:?}"),
        Ok(_) => panic!("expected EmptyDimension, got a plan"),
    }
}

#[test]
fn try_run_rejects_mismatched_operands() {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.7, 1);
    let plan = ctx
        .try_plan_spmm(&a, 16, SpmmAlgo::Octet)
        .expect("valid plan");

    // Wrong RHS row count.
    let short = gen::random_dense::<f16>(32, 16, Layout::RowMajor, 3);
    match plan.try_run(&short) {
        Err(EngineError::DimensionMismatch {
            what,
            expected,
            got,
        }) => {
            assert_eq!(what, "RHS rows");
            assert_eq!((expected, got), (64, 32));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }

    // Wrong layout.
    let col_major = gen::random_dense::<f16>(64, 16, Layout::ColMajor, 3);
    assert!(matches!(
        plan.try_run(&col_major),
        Err(EngineError::LayoutMismatch { what: "RHS", .. })
    ));

    // Batch shapes.
    assert!(matches!(
        plan.try_run_batch(&[]),
        Err(EngineError::EmptyBatch)
    ));
    let good = gen::random_dense::<f16>(64, 16, Layout::RowMajor, 4);
    assert!(matches!(
        plan.try_run_batch(&[good.clone(), short.clone()]),
        Err(EngineError::DimensionMismatch { .. })
    ));
    assert_eq!(plan.try_run_batch(&[good]).expect("valid batch").len(), 1);

    // SDDMM pairs: length mismatch beats element checks.
    let mask = gen::random_pattern(32, 32, 8, 0.6, 2);
    let sddmm = ctx
        .try_plan_sddmm(&mask, 16, SddmmAlgo::OctetArch)
        .expect("valid plan");
    let qa = gen::random_dense::<f16>(32, 16, Layout::RowMajor, 5);
    let kb = gen::random_dense::<f16>(16, 32, Layout::ColMajor, 6);
    match sddmm.try_run_batch(&[qa.clone(), qa.clone()], std::slice::from_ref(&kb)) {
        Err(EngineError::BatchLengthMismatch { a, b }) => assert_eq!((a, b), (2, 1)),
        other => panic!("expected BatchLengthMismatch, got {other:?}"),
    }
    // A-operand shape mismatch surfaces as a typed error too.
    let bad_a = gen::random_dense::<f16>(16, 16, Layout::RowMajor, 7);
    assert!(matches!(
        sddmm.try_run(&bad_a, &kb),
        Err(EngineError::DimensionMismatch { what: "A rows", .. })
    ));
    // Errors are values: formatting them must name the offender.
    let msg = sddmm.try_run(&bad_a, &kb).unwrap_err().to_string();
    assert!(msg.contains("A rows"), "unhelpful message: {msg}");
}

/// A profiled run through a traced context must export a Perfetto
/// document that (a) parses as JSON, (b) has one named thread track per
/// SM scheduler under the kernel's process, and (c) nests the kernel's
/// timeline inside the engine's `run spmm (profile)` span.
#[test]
fn perfetto_export_has_engine_spans_over_scheduler_tracks() {
    let gpu = GpuConfig::small();
    let schedulers = gpu.schedulers_per_sm;
    let sink = Arc::new(TraceSink::enabled(1 << 16));
    let ctx = Context::builder()
        .gpu(gpu)
        .telemetry(Arc::clone(&sink))
        .build();

    let a = gen::random_vector_sparse::<f16>(64, 64, 4, 0.8, 1);
    let b = gen::random_dense::<f16>(64, 32, Layout::RowMajor, 2);
    let plan = ctx.plan_spmm(&a, 32, SpmmAlgo::Auto);
    let profile = plan.try_profile(&b).expect("profile");
    assert!(profile.cycles > 0.0);

    let doc = perfetto::export_json(&sink);
    let parsed = serde_json::from_str(&doc).expect("export must be valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents");

    // Collect metadata: process names and per-process thread names.
    let meta = |kind: &str| {
        events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M") && e["name"].as_str() == Some(kind))
            .map(|e| {
                (
                    e["pid"].as_u64().unwrap(),
                    e["args"]["name"].as_str().unwrap().to_string(),
                )
            })
            .collect::<Vec<_>>()
    };
    let processes = meta("process_name");
    let threads = meta("thread_name");

    // The tuner's winner is named as a kernel process in the trace.
    let winner = plan.algo().label();
    // The tuner may have profiled the winner as a candidate too; the
    // explicit `try_profile` launch is the most recent process.
    let kernel_pid = processes
        .iter()
        .rev()
        .find(|(_, name)| name.starts_with(winner))
        .map(|(pid, _)| *pid)
        .unwrap_or_else(|| panic!("no process named {winner} in {processes:?}"));
    let sched_tracks = threads
        .iter()
        .filter(|(pid, name)| *pid == kernel_pid && name.starts_with("SM scheduler"))
        .count();
    assert_eq!(sched_tracks, schedulers, "one track per SM scheduler");

    // Engine spans exist on the engine track (pid 0).
    let span = |name: &str| {
        events.iter().find(|e| {
            e["ph"].as_str() == Some("X")
                && e["name"].as_str() == Some(name)
                && e["pid"].as_u64() == Some(0)
        })
    };
    for name in ["plan spmm", "tune spmm", "stage spmm"] {
        assert!(span(name).is_some(), "missing engine span {name}");
    }
    let run = span("run spmm (profile)").expect("missing run span");
    let run_start = run["ts"].as_u64().unwrap();
    let run_end = run_start + run["dur"].as_u64().unwrap();

    // The winner's kernel-wide span (cat "kernel", tid 0 of its process)
    // nests inside the engine's run span.
    let kernel_span = events
        .iter()
        .find(|e| {
            e["ph"].as_str() == Some("X")
                && e["cat"].as_str() == Some("kernel")
                && e["pid"].as_u64() == Some(kernel_pid)
        })
        .expect("kernel-wide span");
    let kts = kernel_span["ts"].as_u64().unwrap();
    let kend = kts + kernel_span["dur"].as_u64().unwrap();
    assert!(
        run_start <= kts && kend <= run_end,
        "kernel [{kts}, {kend}) escapes engine run span [{run_start}, {run_end})"
    );
    // The kernel span carries the roofline args.
    for key in ["flops", "dram_bytes", "intensity"] {
        assert!(
            !kernel_span["args"][key].is_null(),
            "kernel span missing {key}"
        );
    }
}
