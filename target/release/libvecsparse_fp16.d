/root/repo/target/release/libvecsparse_fp16.rlib: /root/repo/crates/fp16/src/half_type.rs /root/repo/crates/fp16/src/lib.rs /root/repo/crates/fp16/src/packed.rs
