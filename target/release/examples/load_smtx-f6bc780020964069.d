/root/repo/target/release/examples/load_smtx-f6bc780020964069.d: crates/bench/../../examples/load_smtx.rs

/root/repo/target/release/examples/load_smtx-f6bc780020964069: crates/bench/../../examples/load_smtx.rs

crates/bench/../../examples/load_smtx.rs:
