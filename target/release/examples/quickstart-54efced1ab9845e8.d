/root/repo/target/release/examples/quickstart-54efced1ab9845e8.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-54efced1ab9845e8: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
