/root/repo/target/release/examples/sparse_training_step-a04d0ae1c920193d.d: crates/bench/../../examples/sparse_training_step.rs

/root/repo/target/release/examples/sparse_training_step-a04d0ae1c920193d: crates/bench/../../examples/sparse_training_step.rs

crates/bench/../../examples/sparse_training_step.rs:
