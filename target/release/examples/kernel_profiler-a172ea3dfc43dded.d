/root/repo/target/release/examples/kernel_profiler-a172ea3dfc43dded.d: crates/bench/../../examples/kernel_profiler.rs

/root/repo/target/release/examples/kernel_profiler-a172ea3dfc43dded: crates/bench/../../examples/kernel_profiler.rs

crates/bench/../../examples/kernel_profiler.rs:
