/root/repo/target/release/examples/pruned_resnet_layer-d088cc2339458a59.d: crates/bench/../../examples/pruned_resnet_layer.rs

/root/repo/target/release/examples/pruned_resnet_layer-d088cc2339458a59: crates/bench/../../examples/pruned_resnet_layer.rs

crates/bench/../../examples/pruned_resnet_layer.rs:
