/root/repo/target/release/examples/sparse_attention-05040d7880476d4f.d: crates/bench/../../examples/sparse_attention.rs

/root/repo/target/release/examples/sparse_attention-05040d7880476d4f: crates/bench/../../examples/sparse_attention.rs

crates/bench/../../examples/sparse_attention.rs:
