/root/repo/target/release/deps/tab02_spmm_guidelines-c08400f1b4ab923b.d: crates/bench/src/bin/tab02_spmm_guidelines.rs

/root/repo/target/release/deps/tab02_spmm_guidelines-c08400f1b4ab923b: crates/bench/src/bin/tab02_spmm_guidelines.rs

crates/bench/src/bin/tab02_spmm_guidelines.rs:
