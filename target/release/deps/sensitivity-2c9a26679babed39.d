/root/repo/target/release/deps/sensitivity-2c9a26679babed39.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-2c9a26679babed39: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
