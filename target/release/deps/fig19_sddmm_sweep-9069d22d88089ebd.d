/root/repo/target/release/deps/fig19_sddmm_sweep-9069d22d88089ebd.d: crates/bench/src/bin/fig19_sddmm_sweep.rs

/root/repo/target/release/deps/fig19_sddmm_sweep-9069d22d88089ebd: crates/bench/src/bin/fig19_sddmm_sweep.rs

crates/bench/src/bin/fig19_sddmm_sweep.rs:
