/root/repo/target/release/deps/rayon-28795f3f1d4d171e.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/rayon-28795f3f1d4d171e: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
