/root/repo/target/release/deps/sensitivity-4e99756ecab0e0bd.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-4e99756ecab0e0bd: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
