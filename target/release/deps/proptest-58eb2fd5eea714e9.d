/root/repo/target/release/deps/proptest-58eb2fd5eea714e9.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-58eb2fd5eea714e9.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-58eb2fd5eea714e9.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
