/root/repo/target/release/deps/criterion-378164405a56548a.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-378164405a56548a: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
