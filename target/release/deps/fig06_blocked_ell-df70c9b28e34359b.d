/root/repo/target/release/deps/fig06_blocked_ell-df70c9b28e34359b.d: crates/bench/src/bin/fig06_blocked_ell.rs

/root/repo/target/release/deps/fig06_blocked_ell-df70c9b28e34359b: crates/bench/src/bin/fig06_blocked_ell.rs

crates/bench/src/bin/fig06_blocked_ell.rs:
