/root/repo/target/release/deps/fig18_l2_bytes-daa87dcc58c13f5e.d: crates/bench/src/bin/fig18_l2_bytes.rs

/root/repo/target/release/deps/fig18_l2_bytes-daa87dcc58c13f5e: crates/bench/src/bin/fig18_l2_bytes.rs

crates/bench/src/bin/fig18_l2_bytes.rs:
