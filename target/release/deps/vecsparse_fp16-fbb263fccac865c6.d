/root/repo/target/release/deps/vecsparse_fp16-fbb263fccac865c6.d: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

/root/repo/target/release/deps/vecsparse_fp16-fbb263fccac865c6: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

crates/fp16/src/lib.rs:
crates/fp16/src/half_type.rs:
crates/fp16/src/packed.rs:
