/root/repo/target/release/deps/tab02_spmm_guidelines-cf936603de30da40.d: crates/bench/src/bin/tab02_spmm_guidelines.rs

/root/repo/target/release/deps/tab02_spmm_guidelines-cf936603de30da40: crates/bench/src/bin/tab02_spmm_guidelines.rs

crates/bench/src/bin/tab02_spmm_guidelines.rs:
