/root/repo/target/release/deps/sensitivity-15d447cc0f149d40.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-15d447cc0f149d40: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
