/root/repo/target/release/deps/tab02_spmm_guidelines-69864f50c79bd17b.d: crates/bench/src/bin/tab02_spmm_guidelines.rs

/root/repo/target/release/deps/tab02_spmm_guidelines-69864f50c79bd17b: crates/bench/src/bin/tab02_spmm_guidelines.rs

crates/bench/src/bin/tab02_spmm_guidelines.rs:
