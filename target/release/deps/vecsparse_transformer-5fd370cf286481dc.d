/root/repo/target/release/deps/vecsparse_transformer-5fd370cf286481dc.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

/root/repo/target/release/deps/libvecsparse_transformer-5fd370cf286481dc.rlib: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

/root/repo/target/release/deps/libvecsparse_transformer-5fd370cf286481dc.rmeta: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/memory.rs:
crates/transformer/src/model.rs:
crates/transformer/src/pipeline.rs:
