/root/repo/target/release/deps/fig18_l2_bytes-693d2eb9c4790e18.d: crates/bench/src/bin/fig18_l2_bytes.rs

/root/repo/target/release/deps/fig18_l2_bytes-693d2eb9c4790e18: crates/bench/src/bin/fig18_l2_bytes.rs

crates/bench/src/bin/fig18_l2_bytes.rs:
