/root/repo/target/release/deps/vsan-2c63e5705175b351.d: crates/sanitizer/src/bin/vsan.rs

/root/repo/target/release/deps/vsan-2c63e5705175b351: crates/sanitizer/src/bin/vsan.rs

crates/sanitizer/src/bin/vsan.rs:
