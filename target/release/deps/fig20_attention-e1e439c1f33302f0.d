/root/repo/target/release/deps/fig20_attention-e1e439c1f33302f0.d: crates/bench/src/bin/fig20_attention.rs

/root/repo/target/release/deps/fig20_attention-e1e439c1f33302f0: crates/bench/src/bin/fig20_attention.rs

crates/bench/src/bin/fig20_attention.rs:
