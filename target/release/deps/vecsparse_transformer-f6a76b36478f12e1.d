/root/repo/target/release/deps/vecsparse_transformer-f6a76b36478f12e1.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

/root/repo/target/release/deps/vecsparse_transformer-f6a76b36478f12e1: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/memory.rs:
crates/transformer/src/model.rs:
crates/transformer/src/pipeline.rs:
