/root/repo/target/release/deps/vecsparse_bench-c100e8a89000b292.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/vecsparse_bench-c100e8a89000b292: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
