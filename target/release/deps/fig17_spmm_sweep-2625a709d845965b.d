/root/repo/target/release/deps/fig17_spmm_sweep-2625a709d845965b.d: crates/bench/src/bin/fig17_spmm_sweep.rs

/root/repo/target/release/deps/fig17_spmm_sweep-2625a709d845965b: crates/bench/src/bin/fig17_spmm_sweep.rs

crates/bench/src/bin/fig17_spmm_sweep.rs:
