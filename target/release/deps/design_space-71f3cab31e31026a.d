/root/repo/target/release/deps/design_space-71f3cab31e31026a.d: crates/bench/src/bin/design_space.rs

/root/repo/target/release/deps/design_space-71f3cab31e31026a: crates/bench/src/bin/design_space.rs

crates/bench/src/bin/design_space.rs:
