/root/repo/target/release/deps/fig19_sddmm_sweep-0e36df10177c5863.d: crates/bench/src/bin/fig19_sddmm_sweep.rs

/root/repo/target/release/deps/fig19_sddmm_sweep-0e36df10177c5863: crates/bench/src/bin/fig19_sddmm_sweep.rs

crates/bench/src/bin/fig19_sddmm_sweep.rs:
