/root/repo/target/release/deps/vecsparse_dlmc-5ce379b6a238b5d7.d: crates/dlmc/src/lib.rs

/root/repo/target/release/deps/vecsparse_dlmc-5ce379b6a238b5d7: crates/dlmc/src/lib.rs

crates/dlmc/src/lib.rs:
