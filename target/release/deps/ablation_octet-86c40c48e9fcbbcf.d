/root/repo/target/release/deps/ablation_octet-86c40c48e9fcbbcf.d: crates/bench/src/bin/ablation_octet.rs

/root/repo/target/release/deps/ablation_octet-86c40c48e9fcbbcf: crates/bench/src/bin/ablation_octet.rs

crates/bench/src/bin/ablation_octet.rs:
