/root/repo/target/release/deps/fig20_attention-c69861279aa5b8d2.d: crates/bench/src/bin/fig20_attention.rs

/root/repo/target/release/deps/fig20_attention-c69861279aa5b8d2: crates/bench/src/bin/fig20_attention.rs

crates/bench/src/bin/fig20_attention.rs:
