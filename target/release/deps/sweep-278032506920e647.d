/root/repo/target/release/deps/sweep-278032506920e647.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-278032506920e647: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
