/root/repo/target/release/deps/fig18_l2_bytes-d1aefc2976c568b6.d: crates/bench/src/bin/fig18_l2_bytes.rs

/root/repo/target/release/deps/fig18_l2_bytes-d1aefc2976c568b6: crates/bench/src/bin/fig18_l2_bytes.rs

crates/bench/src/bin/fig18_l2_bytes.rs:
