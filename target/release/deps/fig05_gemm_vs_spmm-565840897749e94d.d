/root/repo/target/release/deps/fig05_gemm_vs_spmm-565840897749e94d.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

/root/repo/target/release/deps/fig05_gemm_vs_spmm-565840897749e94d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
