/root/repo/target/release/deps/fig17_spmm_sweep-de1ce3c15518c78c.d: crates/bench/src/bin/fig17_spmm_sweep.rs

/root/repo/target/release/deps/fig17_spmm_sweep-de1ce3c15518c78c: crates/bench/src/bin/fig17_spmm_sweep.rs

crates/bench/src/bin/fig17_spmm_sweep.rs:
