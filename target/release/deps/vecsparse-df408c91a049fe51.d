/root/repo/target/release/deps/vecsparse-df408c91a049fe51.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/batch.rs crates/core/src/registry.rs crates/core/src/sddmm/mod.rs crates/core/src/sddmm/csr.rs crates/core/src/sddmm/fpu_subwarp.rs crates/core/src/sddmm/octet.rs crates/core/src/sddmm/wmma.rs crates/core/src/softmax.rs crates/core/src/spmm/mod.rs crates/core/src/spmm/blocked_ell.rs crates/core/src/spmm/csr_scalar.rs crates/core/src/spmm/dense.rs crates/core/src/spmm/fpu_subwarp.rs crates/core/src/spmm/octet.rs crates/core/src/spmm/wmma.rs crates/core/src/util.rs

/root/repo/target/release/deps/vecsparse-df408c91a049fe51: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/batch.rs crates/core/src/registry.rs crates/core/src/sddmm/mod.rs crates/core/src/sddmm/csr.rs crates/core/src/sddmm/fpu_subwarp.rs crates/core/src/sddmm/octet.rs crates/core/src/sddmm/wmma.rs crates/core/src/softmax.rs crates/core/src/spmm/mod.rs crates/core/src/spmm/blocked_ell.rs crates/core/src/spmm/csr_scalar.rs crates/core/src/spmm/dense.rs crates/core/src/spmm/fpu_subwarp.rs crates/core/src/spmm/octet.rs crates/core/src/spmm/wmma.rs crates/core/src/util.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/batch.rs:
crates/core/src/registry.rs:
crates/core/src/sddmm/mod.rs:
crates/core/src/sddmm/csr.rs:
crates/core/src/sddmm/fpu_subwarp.rs:
crates/core/src/sddmm/octet.rs:
crates/core/src/sddmm/wmma.rs:
crates/core/src/softmax.rs:
crates/core/src/spmm/mod.rs:
crates/core/src/spmm/blocked_ell.rs:
crates/core/src/spmm/csr_scalar.rs:
crates/core/src/spmm/dense.rs:
crates/core/src/spmm/fpu_subwarp.rs:
crates/core/src/spmm/octet.rs:
crates/core/src/spmm/wmma.rs:
crates/core/src/util.rs:
