/root/repo/target/release/deps/properties-58200debbebc3825.d: crates/fp16/tests/properties.rs

/root/repo/target/release/deps/properties-58200debbebc3825: crates/fp16/tests/properties.rs

crates/fp16/tests/properties.rs:
