/root/repo/target/release/deps/tab03_sddmm_guidelines-af54fc2ae170cf52.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

/root/repo/target/release/deps/tab03_sddmm_guidelines-af54fc2ae170cf52: crates/bench/src/bin/tab03_sddmm_guidelines.rs

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
