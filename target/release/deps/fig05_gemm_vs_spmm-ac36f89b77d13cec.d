/root/repo/target/release/deps/fig05_gemm_vs_spmm-ac36f89b77d13cec.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

/root/repo/target/release/deps/fig05_gemm_vs_spmm-ac36f89b77d13cec: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
