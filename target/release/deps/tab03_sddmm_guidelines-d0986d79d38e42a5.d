/root/repo/target/release/deps/tab03_sddmm_guidelines-d0986d79d38e42a5.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

/root/repo/target/release/deps/tab03_sddmm_guidelines-d0986d79d38e42a5: crates/bench/src/bin/tab03_sddmm_guidelines.rs

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
