/root/repo/target/release/deps/fig04_finegrained-9d47e72bdd4765cb.d: crates/bench/src/bin/fig04_finegrained.rs

/root/repo/target/release/deps/fig04_finegrained-9d47e72bdd4765cb: crates/bench/src/bin/fig04_finegrained.rs

crates/bench/src/bin/fig04_finegrained.rs:
