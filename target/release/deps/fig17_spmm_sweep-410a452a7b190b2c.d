/root/repo/target/release/deps/fig17_spmm_sweep-410a452a7b190b2c.d: crates/bench/src/bin/fig17_spmm_sweep.rs

/root/repo/target/release/deps/fig17_spmm_sweep-410a452a7b190b2c: crates/bench/src/bin/fig17_spmm_sweep.rs

crates/bench/src/bin/fig17_spmm_sweep.rs:
