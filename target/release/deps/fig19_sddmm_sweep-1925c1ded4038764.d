/root/repo/target/release/deps/fig19_sddmm_sweep-1925c1ded4038764.d: crates/bench/src/bin/fig19_sddmm_sweep.rs

/root/repo/target/release/deps/fig19_sddmm_sweep-1925c1ded4038764: crates/bench/src/bin/fig19_sddmm_sweep.rs

crates/bench/src/bin/fig19_sddmm_sweep.rs:
