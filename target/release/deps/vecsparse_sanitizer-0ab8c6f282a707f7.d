/root/repo/target/release/deps/vecsparse_sanitizer-0ab8c6f282a707f7.d: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

/root/repo/target/release/deps/vecsparse_sanitizer-0ab8c6f282a707f7: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

crates/sanitizer/src/lib.rs:
crates/sanitizer/src/diag.rs:
crates/sanitizer/src/fixtures.rs:
crates/sanitizer/src/traces.rs:
crates/sanitizer/src/values.rs:
