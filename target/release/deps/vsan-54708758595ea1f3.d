/root/repo/target/release/deps/vsan-54708758595ea1f3.d: crates/sanitizer/src/bin/vsan.rs

/root/repo/target/release/deps/vsan-54708758595ea1f3: crates/sanitizer/src/bin/vsan.rs

crates/sanitizer/src/bin/vsan.rs:
