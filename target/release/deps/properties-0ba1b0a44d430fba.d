/root/repo/target/release/deps/properties-0ba1b0a44d430fba.d: crates/bench/../../tests/properties.rs

/root/repo/target/release/deps/properties-0ba1b0a44d430fba: crates/bench/../../tests/properties.rs

crates/bench/../../tests/properties.rs:
