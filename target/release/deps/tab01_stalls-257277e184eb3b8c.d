/root/repo/target/release/deps/tab01_stalls-257277e184eb3b8c.d: crates/bench/src/bin/tab01_stalls.rs

/root/repo/target/release/deps/tab01_stalls-257277e184eb3b8c: crates/bench/src/bin/tab01_stalls.rs

crates/bench/src/bin/tab01_stalls.rs:
