/root/repo/target/release/deps/vecsparse_bench-89c6718992c45044.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libvecsparse_bench-89c6718992c45044.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libvecsparse_bench-89c6718992c45044.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
