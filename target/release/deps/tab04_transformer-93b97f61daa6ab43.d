/root/repo/target/release/deps/tab04_transformer-93b97f61daa6ab43.d: crates/bench/src/bin/tab04_transformer.rs

/root/repo/target/release/deps/tab04_transformer-93b97f61daa6ab43: crates/bench/src/bin/tab04_transformer.rs

crates/bench/src/bin/tab04_transformer.rs:
