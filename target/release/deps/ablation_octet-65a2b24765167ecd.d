/root/repo/target/release/deps/ablation_octet-65a2b24765167ecd.d: crates/bench/src/bin/ablation_octet.rs

/root/repo/target/release/deps/ablation_octet-65a2b24765167ecd: crates/bench/src/bin/ablation_octet.rs

crates/bench/src/bin/ablation_octet.rs:
