/root/repo/target/release/deps/ablation_octet-9d5a628d0b48e5aa.d: crates/bench/src/bin/ablation_octet.rs

/root/repo/target/release/deps/ablation_octet-9d5a628d0b48e5aa: crates/bench/src/bin/ablation_octet.rs

crates/bench/src/bin/ablation_octet.rs:
