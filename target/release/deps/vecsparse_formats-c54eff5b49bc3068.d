/root/repo/target/release/deps/vecsparse_formats-c54eff5b49bc3068.d: crates/formats/src/lib.rs crates/formats/src/blocked_ell.rs crates/formats/src/csr.rs crates/formats/src/cvse.rs crates/formats/src/dense.rs crates/formats/src/gen.rs crates/formats/src/reference.rs crates/formats/src/rvse.rs crates/formats/src/scalar.rs crates/formats/src/smtx.rs crates/formats/src/square_block.rs

/root/repo/target/release/deps/vecsparse_formats-c54eff5b49bc3068: crates/formats/src/lib.rs crates/formats/src/blocked_ell.rs crates/formats/src/csr.rs crates/formats/src/cvse.rs crates/formats/src/dense.rs crates/formats/src/gen.rs crates/formats/src/reference.rs crates/formats/src/rvse.rs crates/formats/src/scalar.rs crates/formats/src/smtx.rs crates/formats/src/square_block.rs

crates/formats/src/lib.rs:
crates/formats/src/blocked_ell.rs:
crates/formats/src/csr.rs:
crates/formats/src/cvse.rs:
crates/formats/src/dense.rs:
crates/formats/src/gen.rs:
crates/formats/src/reference.rs:
crates/formats/src/rvse.rs:
crates/formats/src/scalar.rs:
crates/formats/src/smtx.rs:
crates/formats/src/square_block.rs:
