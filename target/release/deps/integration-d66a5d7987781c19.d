/root/repo/target/release/deps/integration-d66a5d7987781c19.d: crates/bench/../../tests/integration.rs

/root/repo/target/release/deps/integration-d66a5d7987781c19: crates/bench/../../tests/integration.rs

crates/bench/../../tests/integration.rs:
