/root/repo/target/release/deps/fig04_finegrained-bf7d503a7ddceec2.d: crates/bench/src/bin/fig04_finegrained.rs

/root/repo/target/release/deps/fig04_finegrained-bf7d503a7ddceec2: crates/bench/src/bin/fig04_finegrained.rs

crates/bench/src/bin/fig04_finegrained.rs:
