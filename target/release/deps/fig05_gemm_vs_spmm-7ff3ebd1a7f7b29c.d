/root/repo/target/release/deps/fig05_gemm_vs_spmm-7ff3ebd1a7f7b29c.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

/root/repo/target/release/deps/fig05_gemm_vs_spmm-7ff3ebd1a7f7b29c: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
