/root/repo/target/release/deps/rayon-ebe89870e27243b5.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-ebe89870e27243b5.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-ebe89870e27243b5.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
