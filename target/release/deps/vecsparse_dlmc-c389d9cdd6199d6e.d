/root/repo/target/release/deps/vecsparse_dlmc-c389d9cdd6199d6e.d: crates/dlmc/src/lib.rs

/root/repo/target/release/deps/libvecsparse_dlmc-c389d9cdd6199d6e.rlib: crates/dlmc/src/lib.rs

/root/repo/target/release/deps/libvecsparse_dlmc-c389d9cdd6199d6e.rmeta: crates/dlmc/src/lib.rs

crates/dlmc/src/lib.rs:
