/root/repo/target/release/deps/tab04_transformer-75bd9cea2e56ff22.d: crates/bench/src/bin/tab04_transformer.rs

/root/repo/target/release/deps/tab04_transformer-75bd9cea2e56ff22: crates/bench/src/bin/tab04_transformer.rs

crates/bench/src/bin/tab04_transformer.rs:
