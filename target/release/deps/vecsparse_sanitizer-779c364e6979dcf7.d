/root/repo/target/release/deps/vecsparse_sanitizer-779c364e6979dcf7.d: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

/root/repo/target/release/deps/libvecsparse_sanitizer-779c364e6979dcf7.rlib: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

/root/repo/target/release/deps/libvecsparse_sanitizer-779c364e6979dcf7.rmeta: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

crates/sanitizer/src/lib.rs:
crates/sanitizer/src/diag.rs:
crates/sanitizer/src/fixtures.rs:
crates/sanitizer/src/traces.rs:
crates/sanitizer/src/values.rs:
