/root/repo/target/release/deps/vecsparse_fp16-d3dd254ce5ebbce2.d: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

/root/repo/target/release/deps/libvecsparse_fp16-d3dd254ce5ebbce2.rlib: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

/root/repo/target/release/deps/libvecsparse_fp16-d3dd254ce5ebbce2.rmeta: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

crates/fp16/src/lib.rs:
crates/fp16/src/half_type.rs:
crates/fp16/src/packed.rs:
