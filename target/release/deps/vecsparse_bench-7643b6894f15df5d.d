/root/repo/target/release/deps/vecsparse_bench-7643b6894f15df5d.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libvecsparse_bench-7643b6894f15df5d.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/release/deps/libvecsparse_bench-7643b6894f15df5d.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
