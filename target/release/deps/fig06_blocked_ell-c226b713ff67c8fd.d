/root/repo/target/release/deps/fig06_blocked_ell-c226b713ff67c8fd.d: crates/bench/src/bin/fig06_blocked_ell.rs

/root/repo/target/release/deps/fig06_blocked_ell-c226b713ff67c8fd: crates/bench/src/bin/fig06_blocked_ell.rs

crates/bench/src/bin/fig06_blocked_ell.rs:
