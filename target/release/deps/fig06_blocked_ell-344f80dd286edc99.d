/root/repo/target/release/deps/fig06_blocked_ell-344f80dd286edc99.d: crates/bench/src/bin/fig06_blocked_ell.rs

/root/repo/target/release/deps/fig06_blocked_ell-344f80dd286edc99: crates/bench/src/bin/fig06_blocked_ell.rs

crates/bench/src/bin/fig06_blocked_ell.rs:
