/root/repo/target/release/deps/design_space-ba7bc31a63610db9.d: crates/bench/src/bin/design_space.rs

/root/repo/target/release/deps/design_space-ba7bc31a63610db9: crates/bench/src/bin/design_space.rs

crates/bench/src/bin/design_space.rs:
