/root/repo/target/release/deps/proptest-0134184473ae0d6b.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-0134184473ae0d6b: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
