/root/repo/target/release/deps/tab01_stalls-a9c834d9a32ed7ae.d: crates/bench/src/bin/tab01_stalls.rs

/root/repo/target/release/deps/tab01_stalls-a9c834d9a32ed7ae: crates/bench/src/bin/tab01_stalls.rs

crates/bench/src/bin/tab01_stalls.rs:
