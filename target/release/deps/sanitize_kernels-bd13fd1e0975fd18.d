/root/repo/target/release/deps/sanitize_kernels-bd13fd1e0975fd18.d: crates/sanitizer/tests/sanitize_kernels.rs

/root/repo/target/release/deps/sanitize_kernels-bd13fd1e0975fd18: crates/sanitizer/tests/sanitize_kernels.rs

crates/sanitizer/tests/sanitize_kernels.rs:
