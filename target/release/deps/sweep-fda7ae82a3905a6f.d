/root/repo/target/release/deps/sweep-fda7ae82a3905a6f.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-fda7ae82a3905a6f: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
