/root/repo/target/release/deps/vecsparse_gpu_sim-80297a3049cc1884.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/icache.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/program.rs crates/gpu-sim/src/sched.rs crates/gpu-sim/src/tcu.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/warp.rs crates/gpu-sim/src/wvec.rs

/root/repo/target/release/deps/vecsparse_gpu_sim-80297a3049cc1884: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/icache.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/program.rs crates/gpu-sim/src/sched.rs crates/gpu-sim/src/tcu.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/warp.rs crates/gpu-sim/src/wvec.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cache.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/icache.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/mem.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/program.rs:
crates/gpu-sim/src/sched.rs:
crates/gpu-sim/src/tcu.rs:
crates/gpu-sim/src/trace.rs:
crates/gpu-sim/src/warp.rs:
crates/gpu-sim/src/wvec.rs:
