/root/repo/target/release/deps/design_space-5077bb12c1beb6a0.d: crates/bench/src/bin/design_space.rs

/root/repo/target/release/deps/design_space-5077bb12c1beb6a0: crates/bench/src/bin/design_space.rs

crates/bench/src/bin/design_space.rs:
