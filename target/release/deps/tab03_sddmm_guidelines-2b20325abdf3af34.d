/root/repo/target/release/deps/tab03_sddmm_guidelines-2b20325abdf3af34.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

/root/repo/target/release/deps/tab03_sddmm_guidelines-2b20325abdf3af34: crates/bench/src/bin/tab03_sddmm_guidelines.rs

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
