/root/repo/target/release/deps/tab01_stalls-23eceddb71b42d72.d: crates/bench/src/bin/tab01_stalls.rs

/root/repo/target/release/deps/tab01_stalls-23eceddb71b42d72: crates/bench/src/bin/tab01_stalls.rs

crates/bench/src/bin/tab01_stalls.rs:
