/root/repo/target/release/deps/fig20_attention-c1f0b29b3970d2d0.d: crates/bench/src/bin/fig20_attention.rs

/root/repo/target/release/deps/fig20_attention-c1f0b29b3970d2d0: crates/bench/src/bin/fig20_attention.rs

crates/bench/src/bin/fig20_attention.rs:
