/root/repo/target/release/deps/fixtures_fire-8a71382a0636f471.d: crates/sanitizer/tests/fixtures_fire.rs

/root/repo/target/release/deps/fixtures_fire-8a71382a0636f471: crates/sanitizer/tests/fixtures_fire.rs

crates/sanitizer/tests/fixtures_fire.rs:
