/root/repo/target/release/deps/fig04_finegrained-79eceb55fbea6483.d: crates/bench/src/bin/fig04_finegrained.rs

/root/repo/target/release/deps/fig04_finegrained-79eceb55fbea6483: crates/bench/src/bin/fig04_finegrained.rs

crates/bench/src/bin/fig04_finegrained.rs:
