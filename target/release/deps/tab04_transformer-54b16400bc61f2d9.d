/root/repo/target/release/deps/tab04_transformer-54b16400bc61f2d9.d: crates/bench/src/bin/tab04_transformer.rs

/root/repo/target/release/deps/tab04_transformer-54b16400bc61f2d9: crates/bench/src/bin/tab04_transformer.rs

crates/bench/src/bin/tab04_transformer.rs:
