/root/repo/target/release/deps/sweep-18e9adae67440dcb.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-18e9adae67440dcb: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
