/root/repo/target/debug/deps/formats-f809f59ae42d69db.d: crates/bench/benches/formats.rs Cargo.toml

/root/repo/target/debug/deps/libformats-f809f59ae42d69db.rmeta: crates/bench/benches/formats.rs Cargo.toml

crates/bench/benches/formats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
