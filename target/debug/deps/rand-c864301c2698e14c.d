/root/repo/target/debug/deps/rand-c864301c2698e14c.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-c864301c2698e14c: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
