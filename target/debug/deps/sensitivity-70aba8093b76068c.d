/root/repo/target/debug/deps/sensitivity-70aba8093b76068c.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-70aba8093b76068c: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
