/root/repo/target/debug/deps/tab03_sddmm_guidelines-234cf77fcb0d566d.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

/root/repo/target/debug/deps/tab03_sddmm_guidelines-234cf77fcb0d566d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
