/root/repo/target/debug/deps/properties-307831c7e5efbca2.d: crates/fp16/tests/properties.rs

/root/repo/target/debug/deps/properties-307831c7e5efbca2: crates/fp16/tests/properties.rs

crates/fp16/tests/properties.rs:
