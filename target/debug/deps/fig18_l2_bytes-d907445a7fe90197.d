/root/repo/target/debug/deps/fig18_l2_bytes-d907445a7fe90197.d: crates/bench/src/bin/fig18_l2_bytes.rs

/root/repo/target/debug/deps/fig18_l2_bytes-d907445a7fe90197: crates/bench/src/bin/fig18_l2_bytes.rs

crates/bench/src/bin/fig18_l2_bytes.rs:
