/root/repo/target/debug/deps/ablation_octet-fa9bc8fd3e842bd9.d: crates/bench/src/bin/ablation_octet.rs

/root/repo/target/debug/deps/ablation_octet-fa9bc8fd3e842bd9: crates/bench/src/bin/ablation_octet.rs

crates/bench/src/bin/ablation_octet.rs:
