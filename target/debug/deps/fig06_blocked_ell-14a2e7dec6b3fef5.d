/root/repo/target/debug/deps/fig06_blocked_ell-14a2e7dec6b3fef5.d: crates/bench/src/bin/fig06_blocked_ell.rs

/root/repo/target/debug/deps/fig06_blocked_ell-14a2e7dec6b3fef5: crates/bench/src/bin/fig06_blocked_ell.rs

crates/bench/src/bin/fig06_blocked_ell.rs:
