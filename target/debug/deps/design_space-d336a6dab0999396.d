/root/repo/target/debug/deps/design_space-d336a6dab0999396.d: crates/bench/src/bin/design_space.rs

/root/repo/target/debug/deps/design_space-d336a6dab0999396: crates/bench/src/bin/design_space.rs

crates/bench/src/bin/design_space.rs:
