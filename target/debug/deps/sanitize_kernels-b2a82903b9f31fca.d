/root/repo/target/debug/deps/sanitize_kernels-b2a82903b9f31fca.d: crates/sanitizer/tests/sanitize_kernels.rs

/root/repo/target/debug/deps/sanitize_kernels-b2a82903b9f31fca: crates/sanitizer/tests/sanitize_kernels.rs

crates/sanitizer/tests/sanitize_kernels.rs:
