/root/repo/target/debug/deps/tab04_transformer-0ab6f57bdbffeddd.d: crates/bench/src/bin/tab04_transformer.rs

/root/repo/target/debug/deps/tab04_transformer-0ab6f57bdbffeddd: crates/bench/src/bin/tab04_transformer.rs

crates/bench/src/bin/tab04_transformer.rs:
