/root/repo/target/debug/deps/tab03_sddmm_guidelines-ef3689eeeb248907.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

/root/repo/target/debug/deps/tab03_sddmm_guidelines-ef3689eeeb248907: crates/bench/src/bin/tab03_sddmm_guidelines.rs

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
