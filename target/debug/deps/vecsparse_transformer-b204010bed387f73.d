/root/repo/target/debug/deps/vecsparse_transformer-b204010bed387f73.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

/root/repo/target/debug/deps/vecsparse_transformer-b204010bed387f73: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/memory.rs:
crates/transformer/src/model.rs:
crates/transformer/src/pipeline.rs:
