/root/repo/target/debug/deps/spmm_kernels-6a663e63215f3fdf.d: crates/bench/benches/spmm_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libspmm_kernels-6a663e63215f3fdf.rmeta: crates/bench/benches/spmm_kernels.rs Cargo.toml

crates/bench/benches/spmm_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
