/root/repo/target/debug/deps/fig05_gemm_vs_spmm-0712223acd607cbb.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_gemm_vs_spmm-0712223acd607cbb.rmeta: crates/bench/src/bin/fig05_gemm_vs_spmm.rs Cargo.toml

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
