/root/repo/target/debug/deps/sensitivity-736a46fa75fe06c9.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-736a46fa75fe06c9.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
