/root/repo/target/debug/deps/properties-8dc108cc0ff350c9.d: crates/bench/../../tests/properties.rs

/root/repo/target/debug/deps/properties-8dc108cc0ff350c9: crates/bench/../../tests/properties.rs

crates/bench/../../tests/properties.rs:
