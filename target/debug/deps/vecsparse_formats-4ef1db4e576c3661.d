/root/repo/target/debug/deps/vecsparse_formats-4ef1db4e576c3661.d: crates/formats/src/lib.rs crates/formats/src/blocked_ell.rs crates/formats/src/csr.rs crates/formats/src/cvse.rs crates/formats/src/dense.rs crates/formats/src/gen.rs crates/formats/src/reference.rs crates/formats/src/rvse.rs crates/formats/src/scalar.rs crates/formats/src/smtx.rs crates/formats/src/square_block.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_formats-4ef1db4e576c3661.rmeta: crates/formats/src/lib.rs crates/formats/src/blocked_ell.rs crates/formats/src/csr.rs crates/formats/src/cvse.rs crates/formats/src/dense.rs crates/formats/src/gen.rs crates/formats/src/reference.rs crates/formats/src/rvse.rs crates/formats/src/scalar.rs crates/formats/src/smtx.rs crates/formats/src/square_block.rs Cargo.toml

crates/formats/src/lib.rs:
crates/formats/src/blocked_ell.rs:
crates/formats/src/csr.rs:
crates/formats/src/cvse.rs:
crates/formats/src/dense.rs:
crates/formats/src/gen.rs:
crates/formats/src/reference.rs:
crates/formats/src/rvse.rs:
crates/formats/src/scalar.rs:
crates/formats/src/smtx.rs:
crates/formats/src/square_block.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
