/root/repo/target/debug/deps/rayon-1769b89979fe231c.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1769b89979fe231c.rlib: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1769b89979fe231c.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
