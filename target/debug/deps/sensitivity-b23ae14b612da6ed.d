/root/repo/target/debug/deps/sensitivity-b23ae14b612da6ed.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-b23ae14b612da6ed.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
