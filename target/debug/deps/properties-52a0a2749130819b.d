/root/repo/target/debug/deps/properties-52a0a2749130819b.d: crates/fp16/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-52a0a2749130819b.rmeta: crates/fp16/tests/properties.rs Cargo.toml

crates/fp16/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
