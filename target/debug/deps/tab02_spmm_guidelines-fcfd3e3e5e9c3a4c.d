/root/repo/target/debug/deps/tab02_spmm_guidelines-fcfd3e3e5e9c3a4c.d: crates/bench/src/bin/tab02_spmm_guidelines.rs Cargo.toml

/root/repo/target/debug/deps/libtab02_spmm_guidelines-fcfd3e3e5e9c3a4c.rmeta: crates/bench/src/bin/tab02_spmm_guidelines.rs Cargo.toml

crates/bench/src/bin/tab02_spmm_guidelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
