/root/repo/target/debug/deps/vecsparse_dlmc-fbb3ddf32bface2d.d: crates/dlmc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_dlmc-fbb3ddf32bface2d.rmeta: crates/dlmc/src/lib.rs Cargo.toml

crates/dlmc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
