/root/repo/target/debug/deps/fixtures_fire-30c1f0d92752bfae.d: crates/sanitizer/tests/fixtures_fire.rs Cargo.toml

/root/repo/target/debug/deps/libfixtures_fire-30c1f0d92752bfae.rmeta: crates/sanitizer/tests/fixtures_fire.rs Cargo.toml

crates/sanitizer/tests/fixtures_fire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
