/root/repo/target/debug/deps/tab01_stalls-22260f1e185e7f35.d: crates/bench/src/bin/tab01_stalls.rs

/root/repo/target/debug/deps/tab01_stalls-22260f1e185e7f35: crates/bench/src/bin/tab01_stalls.rs

crates/bench/src/bin/tab01_stalls.rs:
