/root/repo/target/debug/deps/vecsparse_fp16-6c3a2cd61d6d924d.d: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

/root/repo/target/debug/deps/vecsparse_fp16-6c3a2cd61d6d924d: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

crates/fp16/src/lib.rs:
crates/fp16/src/half_type.rs:
crates/fp16/src/packed.rs:
