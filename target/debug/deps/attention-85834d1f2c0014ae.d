/root/repo/target/debug/deps/attention-85834d1f2c0014ae.d: crates/bench/benches/attention.rs Cargo.toml

/root/repo/target/debug/deps/libattention-85834d1f2c0014ae.rmeta: crates/bench/benches/attention.rs Cargo.toml

crates/bench/benches/attention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
