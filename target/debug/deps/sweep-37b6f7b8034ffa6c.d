/root/repo/target/debug/deps/sweep-37b6f7b8034ffa6c.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-37b6f7b8034ffa6c: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
