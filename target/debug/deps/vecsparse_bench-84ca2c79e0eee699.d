/root/repo/target/debug/deps/vecsparse_bench-84ca2c79e0eee699.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_bench-84ca2c79e0eee699.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
