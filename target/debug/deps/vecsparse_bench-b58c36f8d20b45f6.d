/root/repo/target/debug/deps/vecsparse_bench-b58c36f8d20b45f6.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libvecsparse_bench-b58c36f8d20b45f6.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libvecsparse_bench-b58c36f8d20b45f6.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
