/root/repo/target/debug/deps/design_space-b7546da4da379344.d: crates/bench/src/bin/design_space.rs

/root/repo/target/debug/deps/design_space-b7546da4da379344: crates/bench/src/bin/design_space.rs

crates/bench/src/bin/design_space.rs:
