/root/repo/target/debug/deps/sweep-8f3035e702875721.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-8f3035e702875721: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
