/root/repo/target/debug/deps/fig20_attention-97c987641d7f9544.d: crates/bench/src/bin/fig20_attention.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_attention-97c987641d7f9544.rmeta: crates/bench/src/bin/fig20_attention.rs Cargo.toml

crates/bench/src/bin/fig20_attention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
