/root/repo/target/debug/deps/fig19_sddmm_sweep-ea4d525dbd8d278a.d: crates/bench/src/bin/fig19_sddmm_sweep.rs

/root/repo/target/debug/deps/fig19_sddmm_sweep-ea4d525dbd8d278a: crates/bench/src/bin/fig19_sddmm_sweep.rs

crates/bench/src/bin/fig19_sddmm_sweep.rs:
