/root/repo/target/debug/deps/ablation_octet-8c6e8d2b4d67a48b.d: crates/bench/src/bin/ablation_octet.rs

/root/repo/target/debug/deps/ablation_octet-8c6e8d2b4d67a48b: crates/bench/src/bin/ablation_octet.rs

crates/bench/src/bin/ablation_octet.rs:
