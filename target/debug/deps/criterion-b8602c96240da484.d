/root/repo/target/debug/deps/criterion-b8602c96240da484.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-b8602c96240da484: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
