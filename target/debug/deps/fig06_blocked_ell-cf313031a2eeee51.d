/root/repo/target/debug/deps/fig06_blocked_ell-cf313031a2eeee51.d: crates/bench/src/bin/fig06_blocked_ell.rs

/root/repo/target/debug/deps/fig06_blocked_ell-cf313031a2eeee51: crates/bench/src/bin/fig06_blocked_ell.rs

crates/bench/src/bin/fig06_blocked_ell.rs:
