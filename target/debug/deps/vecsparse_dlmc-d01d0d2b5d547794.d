/root/repo/target/debug/deps/vecsparse_dlmc-d01d0d2b5d547794.d: crates/dlmc/src/lib.rs

/root/repo/target/debug/deps/vecsparse_dlmc-d01d0d2b5d547794: crates/dlmc/src/lib.rs

crates/dlmc/src/lib.rs:
