/root/repo/target/debug/deps/sensitivity-73351c03dc43a051.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-73351c03dc43a051: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
