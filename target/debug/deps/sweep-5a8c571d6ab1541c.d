/root/repo/target/debug/deps/sweep-5a8c571d6ab1541c.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-5a8c571d6ab1541c: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
