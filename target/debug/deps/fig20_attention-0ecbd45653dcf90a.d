/root/repo/target/debug/deps/fig20_attention-0ecbd45653dcf90a.d: crates/bench/src/bin/fig20_attention.rs

/root/repo/target/debug/deps/fig20_attention-0ecbd45653dcf90a: crates/bench/src/bin/fig20_attention.rs

crates/bench/src/bin/fig20_attention.rs:
