/root/repo/target/debug/deps/tab03_sddmm_guidelines-61a57872b8e13476.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs Cargo.toml

/root/repo/target/debug/deps/libtab03_sddmm_guidelines-61a57872b8e13476.rmeta: crates/bench/src/bin/tab03_sddmm_guidelines.rs Cargo.toml

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
