/root/repo/target/debug/deps/tab02_spmm_guidelines-a59e6d33b9a6d3b2.d: crates/bench/src/bin/tab02_spmm_guidelines.rs

/root/repo/target/debug/deps/tab02_spmm_guidelines-a59e6d33b9a6d3b2: crates/bench/src/bin/tab02_spmm_guidelines.rs

crates/bench/src/bin/tab02_spmm_guidelines.rs:
