/root/repo/target/debug/deps/vecsparse_bench-7db4d8ab021190ce.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_bench-7db4d8ab021190ce.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
