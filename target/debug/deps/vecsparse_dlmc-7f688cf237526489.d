/root/repo/target/debug/deps/vecsparse_dlmc-7f688cf237526489.d: crates/dlmc/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_dlmc-7f688cf237526489.rmeta: crates/dlmc/src/lib.rs Cargo.toml

crates/dlmc/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
