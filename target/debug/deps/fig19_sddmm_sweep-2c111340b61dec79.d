/root/repo/target/debug/deps/fig19_sddmm_sweep-2c111340b61dec79.d: crates/bench/src/bin/fig19_sddmm_sweep.rs

/root/repo/target/debug/deps/fig19_sddmm_sweep-2c111340b61dec79: crates/bench/src/bin/fig19_sddmm_sweep.rs

crates/bench/src/bin/fig19_sddmm_sweep.rs:
