/root/repo/target/debug/deps/proptest-e6bcabfa585f22ce.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-e6bcabfa585f22ce: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
