/root/repo/target/debug/deps/sddmm_kernels-7c146eef5086184a.d: crates/bench/benches/sddmm_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsddmm_kernels-7c146eef5086184a.rmeta: crates/bench/benches/sddmm_kernels.rs Cargo.toml

crates/bench/benches/sddmm_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
