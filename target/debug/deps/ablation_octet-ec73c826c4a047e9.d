/root/repo/target/debug/deps/ablation_octet-ec73c826c4a047e9.d: crates/bench/src/bin/ablation_octet.rs Cargo.toml

/root/repo/target/debug/deps/libablation_octet-ec73c826c4a047e9.rmeta: crates/bench/src/bin/ablation_octet.rs Cargo.toml

crates/bench/src/bin/ablation_octet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
