/root/repo/target/debug/deps/vecsparse_bench-7d99f2a1823d5d84.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/vecsparse_bench-7d99f2a1823d5d84: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
