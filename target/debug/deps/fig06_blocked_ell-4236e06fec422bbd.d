/root/repo/target/debug/deps/fig06_blocked_ell-4236e06fec422bbd.d: crates/bench/src/bin/fig06_blocked_ell.rs

/root/repo/target/debug/deps/fig06_blocked_ell-4236e06fec422bbd: crates/bench/src/bin/fig06_blocked_ell.rs

crates/bench/src/bin/fig06_blocked_ell.rs:
