/root/repo/target/debug/deps/sensitivity-ebeed59a38acfdb6.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-ebeed59a38acfdb6: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
