/root/repo/target/debug/deps/tab04_transformer-dcb9b3a6963c95ad.d: crates/bench/src/bin/tab04_transformer.rs

/root/repo/target/debug/deps/tab04_transformer-dcb9b3a6963c95ad: crates/bench/src/bin/tab04_transformer.rs

crates/bench/src/bin/tab04_transformer.rs:
