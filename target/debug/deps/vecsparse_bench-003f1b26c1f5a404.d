/root/repo/target/debug/deps/vecsparse_bench-003f1b26c1f5a404.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libvecsparse_bench-003f1b26c1f5a404.rlib: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/libvecsparse_bench-003f1b26c1f5a404.rmeta: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
