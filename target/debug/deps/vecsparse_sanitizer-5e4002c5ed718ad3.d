/root/repo/target/debug/deps/vecsparse_sanitizer-5e4002c5ed718ad3.d: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

/root/repo/target/debug/deps/libvecsparse_sanitizer-5e4002c5ed718ad3.rlib: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

/root/repo/target/debug/deps/libvecsparse_sanitizer-5e4002c5ed718ad3.rmeta: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

crates/sanitizer/src/lib.rs:
crates/sanitizer/src/diag.rs:
crates/sanitizer/src/fixtures.rs:
crates/sanitizer/src/traces.rs:
crates/sanitizer/src/values.rs:
