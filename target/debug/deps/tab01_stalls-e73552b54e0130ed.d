/root/repo/target/debug/deps/tab01_stalls-e73552b54e0130ed.d: crates/bench/src/bin/tab01_stalls.rs Cargo.toml

/root/repo/target/debug/deps/libtab01_stalls-e73552b54e0130ed.rmeta: crates/bench/src/bin/tab01_stalls.rs Cargo.toml

crates/bench/src/bin/tab01_stalls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
