/root/repo/target/debug/deps/integration-246d0aa36ee16c4b.d: crates/bench/../../tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-246d0aa36ee16c4b.rmeta: crates/bench/../../tests/integration.rs Cargo.toml

crates/bench/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
