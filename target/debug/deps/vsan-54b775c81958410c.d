/root/repo/target/debug/deps/vsan-54b775c81958410c.d: crates/sanitizer/src/bin/vsan.rs

/root/repo/target/debug/deps/vsan-54b775c81958410c: crates/sanitizer/src/bin/vsan.rs

crates/sanitizer/src/bin/vsan.rs:
