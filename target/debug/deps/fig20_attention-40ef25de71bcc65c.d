/root/repo/target/debug/deps/fig20_attention-40ef25de71bcc65c.d: crates/bench/src/bin/fig20_attention.rs

/root/repo/target/debug/deps/fig20_attention-40ef25de71bcc65c: crates/bench/src/bin/fig20_attention.rs

crates/bench/src/bin/fig20_attention.rs:
