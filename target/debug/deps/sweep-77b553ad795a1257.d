/root/repo/target/debug/deps/sweep-77b553ad795a1257.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-77b553ad795a1257: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
