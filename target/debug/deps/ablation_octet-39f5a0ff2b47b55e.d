/root/repo/target/debug/deps/ablation_octet-39f5a0ff2b47b55e.d: crates/bench/src/bin/ablation_octet.rs Cargo.toml

/root/repo/target/debug/deps/libablation_octet-39f5a0ff2b47b55e.rmeta: crates/bench/src/bin/ablation_octet.rs Cargo.toml

crates/bench/src/bin/ablation_octet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
