/root/repo/target/debug/deps/vecsparse_formats-489d2210c00ce857.d: crates/formats/src/lib.rs crates/formats/src/blocked_ell.rs crates/formats/src/csr.rs crates/formats/src/cvse.rs crates/formats/src/dense.rs crates/formats/src/gen.rs crates/formats/src/reference.rs crates/formats/src/rvse.rs crates/formats/src/scalar.rs crates/formats/src/smtx.rs crates/formats/src/square_block.rs

/root/repo/target/debug/deps/libvecsparse_formats-489d2210c00ce857.rlib: crates/formats/src/lib.rs crates/formats/src/blocked_ell.rs crates/formats/src/csr.rs crates/formats/src/cvse.rs crates/formats/src/dense.rs crates/formats/src/gen.rs crates/formats/src/reference.rs crates/formats/src/rvse.rs crates/formats/src/scalar.rs crates/formats/src/smtx.rs crates/formats/src/square_block.rs

/root/repo/target/debug/deps/libvecsparse_formats-489d2210c00ce857.rmeta: crates/formats/src/lib.rs crates/formats/src/blocked_ell.rs crates/formats/src/csr.rs crates/formats/src/cvse.rs crates/formats/src/dense.rs crates/formats/src/gen.rs crates/formats/src/reference.rs crates/formats/src/rvse.rs crates/formats/src/scalar.rs crates/formats/src/smtx.rs crates/formats/src/square_block.rs

crates/formats/src/lib.rs:
crates/formats/src/blocked_ell.rs:
crates/formats/src/csr.rs:
crates/formats/src/cvse.rs:
crates/formats/src/dense.rs:
crates/formats/src/gen.rs:
crates/formats/src/reference.rs:
crates/formats/src/rvse.rs:
crates/formats/src/scalar.rs:
crates/formats/src/smtx.rs:
crates/formats/src/square_block.rs:
