/root/repo/target/debug/deps/criterion-07fc81303478e705.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-07fc81303478e705.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-07fc81303478e705.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
