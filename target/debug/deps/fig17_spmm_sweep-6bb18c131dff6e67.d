/root/repo/target/debug/deps/fig17_spmm_sweep-6bb18c131dff6e67.d: crates/bench/src/bin/fig17_spmm_sweep.rs

/root/repo/target/debug/deps/fig17_spmm_sweep-6bb18c131dff6e67: crates/bench/src/bin/fig17_spmm_sweep.rs

crates/bench/src/bin/fig17_spmm_sweep.rs:
