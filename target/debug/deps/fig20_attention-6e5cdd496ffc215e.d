/root/repo/target/debug/deps/fig20_attention-6e5cdd496ffc215e.d: crates/bench/src/bin/fig20_attention.rs

/root/repo/target/debug/deps/fig20_attention-6e5cdd496ffc215e: crates/bench/src/bin/fig20_attention.rs

crates/bench/src/bin/fig20_attention.rs:
