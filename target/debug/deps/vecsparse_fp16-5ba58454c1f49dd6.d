/root/repo/target/debug/deps/vecsparse_fp16-5ba58454c1f49dd6.d: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

/root/repo/target/debug/deps/libvecsparse_fp16-5ba58454c1f49dd6.rlib: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

/root/repo/target/debug/deps/libvecsparse_fp16-5ba58454c1f49dd6.rmeta: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs

crates/fp16/src/lib.rs:
crates/fp16/src/half_type.rs:
crates/fp16/src/packed.rs:
