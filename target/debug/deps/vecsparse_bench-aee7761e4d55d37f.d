/root/repo/target/debug/deps/vecsparse_bench-aee7761e4d55d37f.d: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

/root/repo/target/debug/deps/vecsparse_bench-aee7761e4d55d37f: crates/bench/src/lib.rs crates/bench/src/sweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/sweeps.rs:
