/root/repo/target/debug/deps/tab03_sddmm_guidelines-5e06b5010a665465.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

/root/repo/target/debug/deps/tab03_sddmm_guidelines-5e06b5010a665465: crates/bench/src/bin/tab03_sddmm_guidelines.rs

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
