/root/repo/target/debug/deps/fixtures_fire-2222ab14102f3c42.d: crates/sanitizer/tests/fixtures_fire.rs

/root/repo/target/debug/deps/fixtures_fire-2222ab14102f3c42: crates/sanitizer/tests/fixtures_fire.rs

crates/sanitizer/tests/fixtures_fire.rs:
