/root/repo/target/debug/deps/vecsparse_fp16-27d4ebefba51db7b.d: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_fp16-27d4ebefba51db7b.rmeta: crates/fp16/src/lib.rs crates/fp16/src/half_type.rs crates/fp16/src/packed.rs Cargo.toml

crates/fp16/src/lib.rs:
crates/fp16/src/half_type.rs:
crates/fp16/src/packed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
