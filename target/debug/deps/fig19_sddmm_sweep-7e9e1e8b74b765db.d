/root/repo/target/debug/deps/fig19_sddmm_sweep-7e9e1e8b74b765db.d: crates/bench/src/bin/fig19_sddmm_sweep.rs

/root/repo/target/debug/deps/fig19_sddmm_sweep-7e9e1e8b74b765db: crates/bench/src/bin/fig19_sddmm_sweep.rs

crates/bench/src/bin/fig19_sddmm_sweep.rs:
