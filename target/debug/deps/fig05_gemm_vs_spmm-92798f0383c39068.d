/root/repo/target/debug/deps/fig05_gemm_vs_spmm-92798f0383c39068.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

/root/repo/target/debug/deps/fig05_gemm_vs_spmm-92798f0383c39068: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
