/root/repo/target/debug/deps/tab04_transformer-a4dfe6280974a4ff.d: crates/bench/src/bin/tab04_transformer.rs

/root/repo/target/debug/deps/tab04_transformer-a4dfe6280974a4ff: crates/bench/src/bin/tab04_transformer.rs

crates/bench/src/bin/tab04_transformer.rs:
