/root/repo/target/debug/deps/properties-5ab20b5c766e2895.d: crates/bench/../../tests/properties.rs

/root/repo/target/debug/deps/properties-5ab20b5c766e2895: crates/bench/../../tests/properties.rs

crates/bench/../../tests/properties.rs:
