/root/repo/target/debug/deps/fig04_finegrained-e68a8570d5db8a44.d: crates/bench/src/bin/fig04_finegrained.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_finegrained-e68a8570d5db8a44.rmeta: crates/bench/src/bin/fig04_finegrained.rs Cargo.toml

crates/bench/src/bin/fig04_finegrained.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
