/root/repo/target/debug/deps/rand-2054e0dd50025f07.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2054e0dd50025f07.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2054e0dd50025f07.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
