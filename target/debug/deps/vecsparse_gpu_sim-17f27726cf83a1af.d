/root/repo/target/debug/deps/vecsparse_gpu_sim-17f27726cf83a1af.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/icache.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/program.rs crates/gpu-sim/src/sched.rs crates/gpu-sim/src/tcu.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/warp.rs crates/gpu-sim/src/wvec.rs

/root/repo/target/debug/deps/vecsparse_gpu_sim-17f27726cf83a1af: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/icache.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/program.rs crates/gpu-sim/src/sched.rs crates/gpu-sim/src/tcu.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/warp.rs crates/gpu-sim/src/wvec.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cache.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/icache.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/mem.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/program.rs:
crates/gpu-sim/src/sched.rs:
crates/gpu-sim/src/tcu.rs:
crates/gpu-sim/src/trace.rs:
crates/gpu-sim/src/warp.rs:
crates/gpu-sim/src/wvec.rs:
