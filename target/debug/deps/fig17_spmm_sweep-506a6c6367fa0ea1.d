/root/repo/target/debug/deps/fig17_spmm_sweep-506a6c6367fa0ea1.d: crates/bench/src/bin/fig17_spmm_sweep.rs

/root/repo/target/debug/deps/fig17_spmm_sweep-506a6c6367fa0ea1: crates/bench/src/bin/fig17_spmm_sweep.rs

crates/bench/src/bin/fig17_spmm_sweep.rs:
