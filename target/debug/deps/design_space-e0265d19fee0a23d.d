/root/repo/target/debug/deps/design_space-e0265d19fee0a23d.d: crates/bench/src/bin/design_space.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_space-e0265d19fee0a23d.rmeta: crates/bench/src/bin/design_space.rs Cargo.toml

crates/bench/src/bin/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
