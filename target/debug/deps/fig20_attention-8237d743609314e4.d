/root/repo/target/debug/deps/fig20_attention-8237d743609314e4.d: crates/bench/src/bin/fig20_attention.rs

/root/repo/target/debug/deps/fig20_attention-8237d743609314e4: crates/bench/src/bin/fig20_attention.rs

crates/bench/src/bin/fig20_attention.rs:
