/root/repo/target/debug/deps/fig19_sddmm_sweep-7f6219ffac7ab4cc.d: crates/bench/src/bin/fig19_sddmm_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_sddmm_sweep-7f6219ffac7ab4cc.rmeta: crates/bench/src/bin/fig19_sddmm_sweep.rs Cargo.toml

crates/bench/src/bin/fig19_sddmm_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
