/root/repo/target/debug/deps/vecsparse_transformer-ce3c1d7471c1bb90.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

/root/repo/target/debug/deps/libvecsparse_transformer-ce3c1d7471c1bb90.rlib: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

/root/repo/target/debug/deps/libvecsparse_transformer-ce3c1d7471c1bb90.rmeta: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/memory.rs:
crates/transformer/src/model.rs:
crates/transformer/src/pipeline.rs:
