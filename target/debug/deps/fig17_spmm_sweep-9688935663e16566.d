/root/repo/target/debug/deps/fig17_spmm_sweep-9688935663e16566.d: crates/bench/src/bin/fig17_spmm_sweep.rs

/root/repo/target/debug/deps/fig17_spmm_sweep-9688935663e16566: crates/bench/src/bin/fig17_spmm_sweep.rs

crates/bench/src/bin/fig17_spmm_sweep.rs:
