/root/repo/target/debug/deps/sensitivity-4b48cc416c4065c2.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-4b48cc416c4065c2: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
