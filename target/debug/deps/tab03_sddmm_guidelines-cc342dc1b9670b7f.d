/root/repo/target/debug/deps/tab03_sddmm_guidelines-cc342dc1b9670b7f.d: crates/bench/src/bin/tab03_sddmm_guidelines.rs

/root/repo/target/debug/deps/tab03_sddmm_guidelines-cc342dc1b9670b7f: crates/bench/src/bin/tab03_sddmm_guidelines.rs

crates/bench/src/bin/tab03_sddmm_guidelines.rs:
