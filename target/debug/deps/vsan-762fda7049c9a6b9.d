/root/repo/target/debug/deps/vsan-762fda7049c9a6b9.d: crates/sanitizer/src/bin/vsan.rs Cargo.toml

/root/repo/target/debug/deps/libvsan-762fda7049c9a6b9.rmeta: crates/sanitizer/src/bin/vsan.rs Cargo.toml

crates/sanitizer/src/bin/vsan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
