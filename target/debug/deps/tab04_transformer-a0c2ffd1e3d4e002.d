/root/repo/target/debug/deps/tab04_transformer-a0c2ffd1e3d4e002.d: crates/bench/src/bin/tab04_transformer.rs

/root/repo/target/debug/deps/tab04_transformer-a0c2ffd1e3d4e002: crates/bench/src/bin/tab04_transformer.rs

crates/bench/src/bin/tab04_transformer.rs:
