/root/repo/target/debug/deps/tab01_stalls-3189229da668cee5.d: crates/bench/src/bin/tab01_stalls.rs Cargo.toml

/root/repo/target/debug/deps/libtab01_stalls-3189229da668cee5.rmeta: crates/bench/src/bin/tab01_stalls.rs Cargo.toml

crates/bench/src/bin/tab01_stalls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
