/root/repo/target/debug/deps/vecsparse_transformer-25899321cd64d029.d: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_transformer-25899321cd64d029.rmeta: crates/transformer/src/lib.rs crates/transformer/src/attention.rs crates/transformer/src/memory.rs crates/transformer/src/model.rs crates/transformer/src/pipeline.rs Cargo.toml

crates/transformer/src/lib.rs:
crates/transformer/src/attention.rs:
crates/transformer/src/memory.rs:
crates/transformer/src/model.rs:
crates/transformer/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
