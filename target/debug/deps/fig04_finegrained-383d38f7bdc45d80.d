/root/repo/target/debug/deps/fig04_finegrained-383d38f7bdc45d80.d: crates/bench/src/bin/fig04_finegrained.rs

/root/repo/target/debug/deps/fig04_finegrained-383d38f7bdc45d80: crates/bench/src/bin/fig04_finegrained.rs

crates/bench/src/bin/fig04_finegrained.rs:
