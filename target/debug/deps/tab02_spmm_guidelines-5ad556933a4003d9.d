/root/repo/target/debug/deps/tab02_spmm_guidelines-5ad556933a4003d9.d: crates/bench/src/bin/tab02_spmm_guidelines.rs

/root/repo/target/debug/deps/tab02_spmm_guidelines-5ad556933a4003d9: crates/bench/src/bin/tab02_spmm_guidelines.rs

crates/bench/src/bin/tab02_spmm_guidelines.rs:
