/root/repo/target/debug/deps/tab02_spmm_guidelines-77c6bc6301d71abf.d: crates/bench/src/bin/tab02_spmm_guidelines.rs

/root/repo/target/debug/deps/tab02_spmm_guidelines-77c6bc6301d71abf: crates/bench/src/bin/tab02_spmm_guidelines.rs

crates/bench/src/bin/tab02_spmm_guidelines.rs:
