/root/repo/target/debug/deps/fig06_blocked_ell-37d28adc6baf7663.d: crates/bench/src/bin/fig06_blocked_ell.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_blocked_ell-37d28adc6baf7663.rmeta: crates/bench/src/bin/fig06_blocked_ell.rs Cargo.toml

crates/bench/src/bin/fig06_blocked_ell.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
