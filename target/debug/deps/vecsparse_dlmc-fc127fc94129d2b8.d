/root/repo/target/debug/deps/vecsparse_dlmc-fc127fc94129d2b8.d: crates/dlmc/src/lib.rs

/root/repo/target/debug/deps/libvecsparse_dlmc-fc127fc94129d2b8.rlib: crates/dlmc/src/lib.rs

/root/repo/target/debug/deps/libvecsparse_dlmc-fc127fc94129d2b8.rmeta: crates/dlmc/src/lib.rs

crates/dlmc/src/lib.rs:
