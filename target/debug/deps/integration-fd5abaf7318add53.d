/root/repo/target/debug/deps/integration-fd5abaf7318add53.d: crates/bench/../../tests/integration.rs

/root/repo/target/debug/deps/integration-fd5abaf7318add53: crates/bench/../../tests/integration.rs

crates/bench/../../tests/integration.rs:
