/root/repo/target/debug/deps/fig17_spmm_sweep-c8fcb10c10540565.d: crates/bench/src/bin/fig17_spmm_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_spmm_sweep-c8fcb10c10540565.rmeta: crates/bench/src/bin/fig17_spmm_sweep.rs Cargo.toml

crates/bench/src/bin/fig17_spmm_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
