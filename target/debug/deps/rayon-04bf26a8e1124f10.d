/root/repo/target/debug/deps/rayon-04bf26a8e1124f10.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-04bf26a8e1124f10: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
