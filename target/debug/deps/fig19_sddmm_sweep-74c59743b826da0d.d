/root/repo/target/debug/deps/fig19_sddmm_sweep-74c59743b826da0d.d: crates/bench/src/bin/fig19_sddmm_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_sddmm_sweep-74c59743b826da0d.rmeta: crates/bench/src/bin/fig19_sddmm_sweep.rs Cargo.toml

crates/bench/src/bin/fig19_sddmm_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
