/root/repo/target/debug/deps/vecsparse_sanitizer-c5bbdba14f6fe63e.d: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

/root/repo/target/debug/deps/vecsparse_sanitizer-c5bbdba14f6fe63e: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs

crates/sanitizer/src/lib.rs:
crates/sanitizer/src/diag.rs:
crates/sanitizer/src/fixtures.rs:
crates/sanitizer/src/traces.rs:
crates/sanitizer/src/values.rs:
