/root/repo/target/debug/deps/sanitize_kernels-f664006feb84742d.d: crates/sanitizer/tests/sanitize_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libsanitize_kernels-f664006feb84742d.rmeta: crates/sanitizer/tests/sanitize_kernels.rs Cargo.toml

crates/sanitizer/tests/sanitize_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
