/root/repo/target/debug/deps/fig19_sddmm_sweep-f6fdd0ed6c3a289f.d: crates/bench/src/bin/fig19_sddmm_sweep.rs

/root/repo/target/debug/deps/fig19_sddmm_sweep-f6fdd0ed6c3a289f: crates/bench/src/bin/fig19_sddmm_sweep.rs

crates/bench/src/bin/fig19_sddmm_sweep.rs:
