/root/repo/target/debug/deps/tab01_stalls-cf7d523e89c9b334.d: crates/bench/src/bin/tab01_stalls.rs

/root/repo/target/debug/deps/tab01_stalls-cf7d523e89c9b334: crates/bench/src/bin/tab01_stalls.rs

crates/bench/src/bin/tab01_stalls.rs:
