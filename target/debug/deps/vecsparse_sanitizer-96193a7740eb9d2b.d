/root/repo/target/debug/deps/vecsparse_sanitizer-96193a7740eb9d2b.d: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_sanitizer-96193a7740eb9d2b.rmeta: crates/sanitizer/src/lib.rs crates/sanitizer/src/diag.rs crates/sanitizer/src/fixtures.rs crates/sanitizer/src/traces.rs crates/sanitizer/src/values.rs Cargo.toml

crates/sanitizer/src/lib.rs:
crates/sanitizer/src/diag.rs:
crates/sanitizer/src/fixtures.rs:
crates/sanitizer/src/traces.rs:
crates/sanitizer/src/values.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
