/root/repo/target/debug/deps/design_space-652930b3ffdea268.d: crates/bench/src/bin/design_space.rs

/root/repo/target/debug/deps/design_space-652930b3ffdea268: crates/bench/src/bin/design_space.rs

crates/bench/src/bin/design_space.rs:
