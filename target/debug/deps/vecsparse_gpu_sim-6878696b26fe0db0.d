/root/repo/target/debug/deps/vecsparse_gpu_sim-6878696b26fe0db0.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/icache.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/program.rs crates/gpu-sim/src/sched.rs crates/gpu-sim/src/tcu.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/warp.rs crates/gpu-sim/src/wvec.rs Cargo.toml

/root/repo/target/debug/deps/libvecsparse_gpu_sim-6878696b26fe0db0.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/cache.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/icache.rs crates/gpu-sim/src/launch.rs crates/gpu-sim/src/mem.rs crates/gpu-sim/src/profile.rs crates/gpu-sim/src/program.rs crates/gpu-sim/src/sched.rs crates/gpu-sim/src/tcu.rs crates/gpu-sim/src/trace.rs crates/gpu-sim/src/warp.rs crates/gpu-sim/src/wvec.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/cache.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/icache.rs:
crates/gpu-sim/src/launch.rs:
crates/gpu-sim/src/mem.rs:
crates/gpu-sim/src/profile.rs:
crates/gpu-sim/src/program.rs:
crates/gpu-sim/src/sched.rs:
crates/gpu-sim/src/tcu.rs:
crates/gpu-sim/src/trace.rs:
crates/gpu-sim/src/warp.rs:
crates/gpu-sim/src/wvec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
