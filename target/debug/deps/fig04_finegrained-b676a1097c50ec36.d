/root/repo/target/debug/deps/fig04_finegrained-b676a1097c50ec36.d: crates/bench/src/bin/fig04_finegrained.rs

/root/repo/target/debug/deps/fig04_finegrained-b676a1097c50ec36: crates/bench/src/bin/fig04_finegrained.rs

crates/bench/src/bin/fig04_finegrained.rs:
