/root/repo/target/debug/deps/fig20_attention-8b41eecf4617d478.d: crates/bench/src/bin/fig20_attention.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_attention-8b41eecf4617d478.rmeta: crates/bench/src/bin/fig20_attention.rs Cargo.toml

crates/bench/src/bin/fig20_attention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
