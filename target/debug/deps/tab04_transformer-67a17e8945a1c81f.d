/root/repo/target/debug/deps/tab04_transformer-67a17e8945a1c81f.d: crates/bench/src/bin/tab04_transformer.rs Cargo.toml

/root/repo/target/debug/deps/libtab04_transformer-67a17e8945a1c81f.rmeta: crates/bench/src/bin/tab04_transformer.rs Cargo.toml

crates/bench/src/bin/tab04_transformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
