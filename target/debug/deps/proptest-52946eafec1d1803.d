/root/repo/target/debug/deps/proptest-52946eafec1d1803.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-52946eafec1d1803.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-52946eafec1d1803.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
