/root/repo/target/debug/deps/fig17_spmm_sweep-f9a8c1e77d9c88ef.d: crates/bench/src/bin/fig17_spmm_sweep.rs

/root/repo/target/debug/deps/fig17_spmm_sweep-f9a8c1e77d9c88ef: crates/bench/src/bin/fig17_spmm_sweep.rs

crates/bench/src/bin/fig17_spmm_sweep.rs:
