/root/repo/target/debug/deps/tab01_stalls-4ec6780dc6aa2f91.d: crates/bench/src/bin/tab01_stalls.rs

/root/repo/target/debug/deps/tab01_stalls-4ec6780dc6aa2f91: crates/bench/src/bin/tab01_stalls.rs

crates/bench/src/bin/tab01_stalls.rs:
