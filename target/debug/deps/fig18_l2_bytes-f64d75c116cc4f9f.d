/root/repo/target/debug/deps/fig18_l2_bytes-f64d75c116cc4f9f.d: crates/bench/src/bin/fig18_l2_bytes.rs

/root/repo/target/debug/deps/fig18_l2_bytes-f64d75c116cc4f9f: crates/bench/src/bin/fig18_l2_bytes.rs

crates/bench/src/bin/fig18_l2_bytes.rs:
