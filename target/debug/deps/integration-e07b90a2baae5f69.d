/root/repo/target/debug/deps/integration-e07b90a2baae5f69.d: crates/bench/../../tests/integration.rs

/root/repo/target/debug/deps/integration-e07b90a2baae5f69: crates/bench/../../tests/integration.rs

crates/bench/../../tests/integration.rs:
