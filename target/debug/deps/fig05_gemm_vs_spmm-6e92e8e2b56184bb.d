/root/repo/target/debug/deps/fig05_gemm_vs_spmm-6e92e8e2b56184bb.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

/root/repo/target/debug/deps/fig05_gemm_vs_spmm-6e92e8e2b56184bb: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
