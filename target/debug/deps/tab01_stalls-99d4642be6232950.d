/root/repo/target/debug/deps/tab01_stalls-99d4642be6232950.d: crates/bench/src/bin/tab01_stalls.rs

/root/repo/target/debug/deps/tab01_stalls-99d4642be6232950: crates/bench/src/bin/tab01_stalls.rs

crates/bench/src/bin/tab01_stalls.rs:
