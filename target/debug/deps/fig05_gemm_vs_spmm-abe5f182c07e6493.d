/root/repo/target/debug/deps/fig05_gemm_vs_spmm-abe5f182c07e6493.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

/root/repo/target/debug/deps/fig05_gemm_vs_spmm-abe5f182c07e6493: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
