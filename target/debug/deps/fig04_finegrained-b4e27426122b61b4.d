/root/repo/target/debug/deps/fig04_finegrained-b4e27426122b61b4.d: crates/bench/src/bin/fig04_finegrained.rs

/root/repo/target/debug/deps/fig04_finegrained-b4e27426122b61b4: crates/bench/src/bin/fig04_finegrained.rs

crates/bench/src/bin/fig04_finegrained.rs:
