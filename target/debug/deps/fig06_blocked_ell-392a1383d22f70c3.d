/root/repo/target/debug/deps/fig06_blocked_ell-392a1383d22f70c3.d: crates/bench/src/bin/fig06_blocked_ell.rs

/root/repo/target/debug/deps/fig06_blocked_ell-392a1383d22f70c3: crates/bench/src/bin/fig06_blocked_ell.rs

crates/bench/src/bin/fig06_blocked_ell.rs:
