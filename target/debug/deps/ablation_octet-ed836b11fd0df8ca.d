/root/repo/target/debug/deps/ablation_octet-ed836b11fd0df8ca.d: crates/bench/src/bin/ablation_octet.rs

/root/repo/target/debug/deps/ablation_octet-ed836b11fd0df8ca: crates/bench/src/bin/ablation_octet.rs

crates/bench/src/bin/ablation_octet.rs:
