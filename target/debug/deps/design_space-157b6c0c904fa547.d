/root/repo/target/debug/deps/design_space-157b6c0c904fa547.d: crates/bench/src/bin/design_space.rs Cargo.toml

/root/repo/target/debug/deps/libdesign_space-157b6c0c904fa547.rmeta: crates/bench/src/bin/design_space.rs Cargo.toml

crates/bench/src/bin/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
