/root/repo/target/debug/deps/tab04_transformer-637eb293f2b5c4b2.d: crates/bench/src/bin/tab04_transformer.rs Cargo.toml

/root/repo/target/debug/deps/libtab04_transformer-637eb293f2b5c4b2.rmeta: crates/bench/src/bin/tab04_transformer.rs Cargo.toml

crates/bench/src/bin/tab04_transformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
