/root/repo/target/debug/deps/proptest-fb764c94e5f365fb.d: shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-fb764c94e5f365fb.rmeta: shims/proptest/src/lib.rs Cargo.toml

shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
