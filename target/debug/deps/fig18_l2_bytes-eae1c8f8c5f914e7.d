/root/repo/target/debug/deps/fig18_l2_bytes-eae1c8f8c5f914e7.d: crates/bench/src/bin/fig18_l2_bytes.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_l2_bytes-eae1c8f8c5f914e7.rmeta: crates/bench/src/bin/fig18_l2_bytes.rs Cargo.toml

crates/bench/src/bin/fig18_l2_bytes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
