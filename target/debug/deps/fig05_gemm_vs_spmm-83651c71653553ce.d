/root/repo/target/debug/deps/fig05_gemm_vs_spmm-83651c71653553ce.d: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

/root/repo/target/debug/deps/fig05_gemm_vs_spmm-83651c71653553ce: crates/bench/src/bin/fig05_gemm_vs_spmm.rs

crates/bench/src/bin/fig05_gemm_vs_spmm.rs:
