/root/repo/target/debug/deps/vsan-9e4b03602b7e5cdb.d: crates/sanitizer/src/bin/vsan.rs

/root/repo/target/debug/deps/vsan-9e4b03602b7e5cdb: crates/sanitizer/src/bin/vsan.rs

crates/sanitizer/src/bin/vsan.rs:
