/root/repo/target/debug/deps/tab02_spmm_guidelines-9f5030f487dd42c5.d: crates/bench/src/bin/tab02_spmm_guidelines.rs

/root/repo/target/debug/deps/tab02_spmm_guidelines-9f5030f487dd42c5: crates/bench/src/bin/tab02_spmm_guidelines.rs

crates/bench/src/bin/tab02_spmm_guidelines.rs:
