/root/repo/target/debug/deps/fig18_l2_bytes-6d596963f8c66508.d: crates/bench/src/bin/fig18_l2_bytes.rs

/root/repo/target/debug/deps/fig18_l2_bytes-6d596963f8c66508: crates/bench/src/bin/fig18_l2_bytes.rs

crates/bench/src/bin/fig18_l2_bytes.rs:
