/root/repo/target/debug/deps/fig04_finegrained-4b98b84d9cdd7d09.d: crates/bench/src/bin/fig04_finegrained.rs

/root/repo/target/debug/deps/fig04_finegrained-4b98b84d9cdd7d09: crates/bench/src/bin/fig04_finegrained.rs

crates/bench/src/bin/fig04_finegrained.rs:
