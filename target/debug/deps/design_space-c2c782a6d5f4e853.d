/root/repo/target/debug/deps/design_space-c2c782a6d5f4e853.d: crates/bench/src/bin/design_space.rs

/root/repo/target/debug/deps/design_space-c2c782a6d5f4e853: crates/bench/src/bin/design_space.rs

crates/bench/src/bin/design_space.rs:
