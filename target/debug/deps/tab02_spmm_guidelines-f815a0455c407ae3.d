/root/repo/target/debug/deps/tab02_spmm_guidelines-f815a0455c407ae3.d: crates/bench/src/bin/tab02_spmm_guidelines.rs Cargo.toml

/root/repo/target/debug/deps/libtab02_spmm_guidelines-f815a0455c407ae3.rmeta: crates/bench/src/bin/tab02_spmm_guidelines.rs Cargo.toml

crates/bench/src/bin/tab02_spmm_guidelines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
