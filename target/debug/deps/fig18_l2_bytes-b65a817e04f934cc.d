/root/repo/target/debug/deps/fig18_l2_bytes-b65a817e04f934cc.d: crates/bench/src/bin/fig18_l2_bytes.rs

/root/repo/target/debug/deps/fig18_l2_bytes-b65a817e04f934cc: crates/bench/src/bin/fig18_l2_bytes.rs

crates/bench/src/bin/fig18_l2_bytes.rs:
