/root/repo/target/debug/deps/ablation_octet-cc62bb427de70fec.d: crates/bench/src/bin/ablation_octet.rs

/root/repo/target/debug/deps/ablation_octet-cc62bb427de70fec: crates/bench/src/bin/ablation_octet.rs

crates/bench/src/bin/ablation_octet.rs:
