/root/repo/target/debug/examples/pruned_resnet_layer-81ef52f3b76a1f2f.d: crates/bench/../../examples/pruned_resnet_layer.rs

/root/repo/target/debug/examples/pruned_resnet_layer-81ef52f3b76a1f2f: crates/bench/../../examples/pruned_resnet_layer.rs

crates/bench/../../examples/pruned_resnet_layer.rs:
