/root/repo/target/debug/examples/quickstart-bcdd9a157d35bd00.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bcdd9a157d35bd00: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
