/root/repo/target/debug/examples/sparse_training_step-6c15ebb955a668d8.d: crates/bench/../../examples/sparse_training_step.rs

/root/repo/target/debug/examples/sparse_training_step-6c15ebb955a668d8: crates/bench/../../examples/sparse_training_step.rs

crates/bench/../../examples/sparse_training_step.rs:
