/root/repo/target/debug/examples/kernel_profiler-d74ad2dc599b7d49.d: crates/bench/../../examples/kernel_profiler.rs

/root/repo/target/debug/examples/kernel_profiler-d74ad2dc599b7d49: crates/bench/../../examples/kernel_profiler.rs

crates/bench/../../examples/kernel_profiler.rs:
