/root/repo/target/debug/examples/sparse_attention-e8aad481a571c675.d: crates/bench/../../examples/sparse_attention.rs Cargo.toml

/root/repo/target/debug/examples/libsparse_attention-e8aad481a571c675.rmeta: crates/bench/../../examples/sparse_attention.rs Cargo.toml

crates/bench/../../examples/sparse_attention.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
