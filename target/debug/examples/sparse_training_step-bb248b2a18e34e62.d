/root/repo/target/debug/examples/sparse_training_step-bb248b2a18e34e62.d: crates/bench/../../examples/sparse_training_step.rs

/root/repo/target/debug/examples/sparse_training_step-bb248b2a18e34e62: crates/bench/../../examples/sparse_training_step.rs

crates/bench/../../examples/sparse_training_step.rs:
