/root/repo/target/debug/examples/load_smtx-4a464cdd38aa2bda.d: crates/bench/../../examples/load_smtx.rs

/root/repo/target/debug/examples/load_smtx-4a464cdd38aa2bda: crates/bench/../../examples/load_smtx.rs

crates/bench/../../examples/load_smtx.rs:
