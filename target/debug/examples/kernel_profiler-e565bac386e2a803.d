/root/repo/target/debug/examples/kernel_profiler-e565bac386e2a803.d: crates/bench/../../examples/kernel_profiler.rs Cargo.toml

/root/repo/target/debug/examples/libkernel_profiler-e565bac386e2a803.rmeta: crates/bench/../../examples/kernel_profiler.rs Cargo.toml

crates/bench/../../examples/kernel_profiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
