/root/repo/target/debug/examples/load_smtx-7cb0adbfeab5acbb.d: crates/bench/../../examples/load_smtx.rs Cargo.toml

/root/repo/target/debug/examples/libload_smtx-7cb0adbfeab5acbb.rmeta: crates/bench/../../examples/load_smtx.rs Cargo.toml

crates/bench/../../examples/load_smtx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
