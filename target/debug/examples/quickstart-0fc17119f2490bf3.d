/root/repo/target/debug/examples/quickstart-0fc17119f2490bf3.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0fc17119f2490bf3: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
