/root/repo/target/debug/examples/pruned_resnet_layer-16ba498a45296892.d: crates/bench/../../examples/pruned_resnet_layer.rs

/root/repo/target/debug/examples/pruned_resnet_layer-16ba498a45296892: crates/bench/../../examples/pruned_resnet_layer.rs

crates/bench/../../examples/pruned_resnet_layer.rs:
