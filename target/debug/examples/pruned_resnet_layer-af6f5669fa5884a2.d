/root/repo/target/debug/examples/pruned_resnet_layer-af6f5669fa5884a2.d: crates/bench/../../examples/pruned_resnet_layer.rs Cargo.toml

/root/repo/target/debug/examples/libpruned_resnet_layer-af6f5669fa5884a2.rmeta: crates/bench/../../examples/pruned_resnet_layer.rs Cargo.toml

crates/bench/../../examples/pruned_resnet_layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
