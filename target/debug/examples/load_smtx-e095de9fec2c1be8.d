/root/repo/target/debug/examples/load_smtx-e095de9fec2c1be8.d: crates/bench/../../examples/load_smtx.rs

/root/repo/target/debug/examples/load_smtx-e095de9fec2c1be8: crates/bench/../../examples/load_smtx.rs

crates/bench/../../examples/load_smtx.rs:
