/root/repo/target/debug/examples/sparse_training_step-93b18244a8b34791.d: crates/bench/../../examples/sparse_training_step.rs Cargo.toml

/root/repo/target/debug/examples/libsparse_training_step-93b18244a8b34791.rmeta: crates/bench/../../examples/sparse_training_step.rs Cargo.toml

crates/bench/../../examples/sparse_training_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
