/root/repo/target/debug/examples/kernel_profiler-2d906fd6ba332b51.d: crates/bench/../../examples/kernel_profiler.rs

/root/repo/target/debug/examples/kernel_profiler-2d906fd6ba332b51: crates/bench/../../examples/kernel_profiler.rs

crates/bench/../../examples/kernel_profiler.rs:
