/root/repo/target/debug/examples/sparse_attention-58a69aa26a4b5724.d: crates/bench/../../examples/sparse_attention.rs

/root/repo/target/debug/examples/sparse_attention-58a69aa26a4b5724: crates/bench/../../examples/sparse_attention.rs

crates/bench/../../examples/sparse_attention.rs:
