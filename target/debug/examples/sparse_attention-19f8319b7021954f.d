/root/repo/target/debug/examples/sparse_attention-19f8319b7021954f.d: crates/bench/../../examples/sparse_attention.rs

/root/repo/target/debug/examples/sparse_attention-19f8319b7021954f: crates/bench/../../examples/sparse_attention.rs

crates/bench/../../examples/sparse_attention.rs:
