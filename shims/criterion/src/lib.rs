//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! No statistics, plots, or warm-up schedules: each benchmark runs a small
//! fixed number of iterations and prints the mean wall-clock time. Enough to
//! keep `cargo bench` compiling and to spot order-of-magnitude regressions
//! by eye; restore the real crate for publishable numbers.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const ITERS_PER_BENCH: u32 = 10;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn sampling_mode(&mut self, _mode: SamplingMode) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Copy)]
pub enum SamplingMode {
    Auto,
    Linear,
    Flat,
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

pub struct Bencher {
    total: std::time::Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS_PER_BENCH {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
        }
        self.iters += ITERS_PER_BENCH;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        total: std::time::Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total / b.iters
    } else {
        std::time::Duration::ZERO
    };
    println!("bench {label:<48} {mean:>12.3?}/iter ({} iters)", b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_runs() {
        benches();
    }
}
