//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! Deterministic xoshiro256** generators behind the familiar trait surface:
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Statistical quality is more than adequate
//! for test-data generation; cryptographic use is out of scope.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from OS entropy in real `rand`; here, a fixed seed keeps the
    /// whole workspace deterministic.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5EED_CAFE_F00D_D00D)
    }
}

/// High-level sampling interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform bits for integers, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a bool that is true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from the standard distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types sampleable uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `hi > lo`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`; `hi >= lo`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the default deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator; `rand` distinguishes them only by speed/quality.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four nonzero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-16..=16);
            assert!((-16..=16).contains(&v));
            let u: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&u));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 32 elements left them in order");
    }
}
