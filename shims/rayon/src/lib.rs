//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! `into_par_iter()` / `par_iter()` return ordinary sequential iterators, so
//! results are bit-identical to the parallel versions (gpu-sim only uses
//! rayon for embarrassingly-parallel CTA loops whose outputs are merged
//! deterministically). Swap back to real rayon by restoring the version in
//! the root `Cargo.toml` — no call sites change.

/// Sequential drop-in for `rayon::prelude`.
pub mod prelude {
    /// Mirror of rayon's `IntoParallelIterator`, yielding a plain iterator.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Mirror of rayon's `IntoParallelRefIterator` (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Item = <&'data I as IntoIterator>::Item;
        type Iter = <&'data I as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..8usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn vec_par_iter_borrows() {
        let data = vec![1u32, 2, 3];
        let sum: u32 = data.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
