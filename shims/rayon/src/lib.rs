//! Offline stand-in for the subset of `rayon` this workspace uses —
//! **now a real `std::thread`-based pool**, no longer a sequential alias.
//!
//! `into_par_iter()` / `par_iter()` materialize the input and fan the
//! mapped work out over scoped worker threads. Determinism is structural:
//! the input is split into contiguous index-ordered chunks, each worker
//! writes results into its chunk's pre-allocated slots, and `collect`
//! reads the slots back in index order — so results are bit-identical to
//! the sequential path at any thread count.
//!
//! Thread-count resolution (first match wins):
//! 1. a [`ThreadPoolBuilder::build_global`] override,
//! 2. the `VECSPARSE_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! `VECSPARSE_THREADS=1` (or a 1-thread global build) forces the exact
//! sequential path: no worker threads are spawned at all. Parallel
//! regions nested inside a worker also run inline, so the total worker
//! count never exceeds the configured width.
//!
//! Divergences from real rayon, by design: iterators are eager (inputs
//! are materialized into a `Vec` up front), only the adapters this
//! workspace uses exist (`map`, `zip`, `collect`, `sum`), and calling
//! `build_global` a second time *replaces* the thread-count override
//! instead of returning an error — the determinism tests re-configure
//! the pool between runs. Swap back to real rayon by restoring the
//! version in the root `Cargo.toml` — no call sites change.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Global thread-count override installed by
/// [`ThreadPoolBuilder::build_global`]; `0` means "not set".
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached `VECSPARSE_THREADS` parse (read once, like rayon's
/// `RAYON_NUM_THREADS`).
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// Set while running inside a pool worker: nested parallel regions
    /// run inline instead of spawning a second generation of workers.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("VECSPARSE_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// The number of threads parallel regions will use, after the override /
/// `VECSPARSE_THREADS` / available-parallelism resolution.
pub fn current_num_threads() -> usize {
    let o = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    if o >= 1 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Subset of rayon's `ThreadPoolBuilder`: only the global thread-count
/// knob is supported.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` worker threads; `0` keeps the env/auto resolution.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the thread count globally. Unlike real rayon this never
    /// fails and may be called repeatedly (later calls replace the
    /// override) — the determinism gate re-configures the pool per run.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Error type of [`ThreadPoolBuilder::build_global`] (never produced by
/// this shim; kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Fan `items` out over scoped workers, returning results in input
/// order. The sequential path (1 thread, ≤1 item, or already inside a
/// worker) runs inline with zero spawns.
fn pool_run<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 || IN_WORKER.with(|w| w.get()) {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunked split: worker `w` owns input slots
    // [w*chunk, (w+1)*chunk) and writes the matching output slots, so
    // reassembly is pure index order — no work stealing, no racing on
    // who produced what.
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = (0..slots.len()).map(|_| None).collect();
    let chunk = slots.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        for (in_chunk, out_chunk) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (slot, res) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    *res = Some(f(slot.take().expect("input slot filled once")));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// An eager parallel iterator: the input sequence, materialized.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair up two parallel iterators, truncating to the shorter.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn sum<S>(self) -> S
    where
        T: Clone,
        S: std::iter::Sum<T>,
    {
        self.map(|x| x).sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator; consuming it (`collect`, `sum`) runs the
/// map on the pool.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        pool_run(self.items, self.f).into_iter().collect()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        pool_run(self.items, self.f).into_iter().sum()
    }
}

/// The rayon prelude subset: conversion traits into [`ParIter`].
pub mod prelude {
    use super::ParIter;

    /// Mirror of rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I> IntoParallelIterator for I
    where
        I: IntoIterator,
        I::Item: Send,
    {
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Mirror of rayon's `IntoParallelRefIterator` (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        type Item: Send;
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, I: 'data> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
        <&'data I as IntoIterator>::Item: Send,
    {
        type Item = <&'data I as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

// `ParIter` is constructed by the prelude traits; re-open construction
// for them without exposing the field.
impl<T> ParIter<T> {
    #[doc(hidden)]
    pub fn from_vec(items: Vec<T>) -> Self {
        ParIter { items }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let v: Vec<usize> = (0..8usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn vec_par_iter_borrows() {
        let data = vec![1u32, 2, 3];
        let sum: u32 = data.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn zip_truncates_and_keeps_order() {
        let a = vec![1u32, 2, 3, 4];
        let b = vec![10u32, 20, 30];
        let v: Vec<u32> = a
            .into_par_iter()
            .zip(b.into_par_iter())
            .map(|(x, y)| x * y)
            .collect();
        assert_eq!(v, vec![10, 40, 90]);
    }

    #[test]
    fn forced_width_matches_sequential() {
        // Same results at every width, including widths > items.
        let seq: Vec<u64> = (0..23u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        for threads in [1usize, 2, 4, 8, 64] {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .unwrap();
            let par: Vec<u64> = (0..23u64)
                .into_par_iter()
                .map(|i| i.wrapping_mul(0x9e37_79b9))
                .collect();
            assert_eq!(par, seq, "threads={threads}");
        }
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
    }

    #[test]
    fn nested_regions_run_inline() {
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let v: Vec<usize> = (0..4usize)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..4usize).into_par_iter().map(|j| i * 4 + j).collect();
                inner.into_iter().sum()
            })
            .collect();
        assert_eq!(v, vec![6, 22, 38, 54]);
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
    }
}
