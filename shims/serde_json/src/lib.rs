//! Offline stand-in for the subset of `serde_json` this workspace uses.
//!
//! Provides the dynamically-typed [`Value`] tree, [`from_str`] to parse
//! one, and [`to_string`] to serialise one — enough for trace-export
//! round-trip tests and CI artifact validation. No derive support, no
//! serde integration: callers that only traffic in `Value` (as this
//! workspace does) compile unchanged against the real crate.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered string → value map (stands in for `serde_json::Map`).
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// Object field or array index lookup, `None` on kind mismatch.
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Lookup key for [`Value::get`]: a string (objects) or usize (arrays).
pub trait Index {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl Index for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(*self))
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }
}

/// Parse or serialisation failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serialise a [`Value`] to compact JSON.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the contiguous run up to the next quote or escape with
            // a single UTF-8 validation — validating per character would
            // make parsing quadratic in the document size.
            let run_start = self.pos;
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            if self.pos > run_start {
                let run = std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                out.push_str(run);
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's traces; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                // The run loop above stops only at None, '"' or '\\'.
                Some(_) => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.get(idx).unwrap_or(&NULL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = from_str(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3e2}}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_str(), Some("x\n"));
        assert_eq!(v["a"][3].as_bool(), Some(true));
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"].as_f64(), Some(-300.0));
    }

    #[test]
    fn round_trips() {
        let src = r#"{"name":"spmm-octet","ts":12,"args":{"pc":"ldg[0]"}}"#;
        let v = from_str(src).unwrap();
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nul").is_err());
    }
}
