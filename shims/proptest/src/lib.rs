//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Instead of shrinking test trees, each `proptest!` test runs
//! `ProptestConfig::cases` iterations with inputs drawn from a generator
//! seeded deterministically from the test's module path + name, so failures
//! reproduce exactly across runs. `prop_assert!`/`prop_assert_eq!` are plain
//! assertions; the failing input values appear in the panic message of the
//! assertion that used them.

pub use ::rand;

use rand::prelude::*;

/// The generator threaded through strategies by the `proptest!` macro.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator. The real proptest builds shrinkable value trees;
/// here a strategy just samples.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy, used by `prop_oneof!` to mix strategy types.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

/// Numeric ranges are strategies (uniform sampling).
impl<T> Strategy for std::ops::Range<T>
where
    T: rand::SampleUniform + Copy + PartialOrd,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: rand::SampleUniform + Copy + PartialOrd,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

macro_rules! arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

// Floats sample the full bit space, so NaN/Inf/subnormals all appear —
// matching real proptest's inclusion of special values.
impl Arbitrary for f32 {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.gen::<u64>())
    }
}

/// `prop::array::uniform4` and friends.
pub mod prop {
    pub mod array {
        use crate::{Strategy, TestRng};

        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.0.sample(rng))
            }
        }

        macro_rules! uniform_fn {
            ($($name:ident $n:literal),*) => {$(
                pub fn $name<S: Strategy>(s: S) -> UniformArray<S, $n> {
                    UniformArray(s)
                }
            )*};
        }

        uniform_fn!(uniform2 2, uniform3 3, uniform4 4, uniform8 8);
    }
}

/// FNV-1a over the test's path, so each test gets a stable distinct seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( ($weight, $crate::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $( (1u32, $crate::Strategy::boxed($strat)) ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut rng =
                <$crate::TestRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
            for _case in 0..config.cases {
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Composite strategy mirroring the workspace's `vs_params()` shape.
        #[test]
        fn composed_tuple_strategy(
            (a, b, pick, f, raw) in (
                1usize..5,
                1usize..5,
                prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
                0.2f64..0.95,
                any::<u64>(),
            )
                .prop_map(|(a, b, p, f, r)| (a * 2, b, p, f, r)),
        ) {
            prop_assert!((2..10).contains(&a));
            prop_assert!((1..5).contains(&b));
            prop_assert!([1usize, 2, 4, 8].contains(&pick));
            prop_assert!((0.2..0.95).contains(&f));
            let _ = raw;
        }

        #[test]
        fn multiple_params(x in -64i32..=64, arr in prop::array::uniform4(-8.0f32..8.0)) {
            prop_assert!((-64..=64).contains(&x));
            for v in arr {
                prop_assert!((-8.0..8.0).contains(&v), "out of range: {}", v);
            }
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_from_name("a::b"), seed_from_name("a::c"));
        assert_eq!(seed_from_name("a::b"), seed_from_name("a::b"));
    }

    use crate::seed_from_name;
}
