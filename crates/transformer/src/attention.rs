//! Sparse self-attention on the vecsparse kernels.

use std::sync::Arc;
use vecsparse::engine::{Context, SddmmPlan};
use vecsparse::softmax::{profile_softmax_vs, softmax_vs, DenseSoftmax};
use vecsparse::spmm::profile_dense_gemm;
use vecsparse::{SddmmAlgo, SpmmAlgo};
use vecsparse_formats::{gen, reference, DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, KernelSpec, Launch, MemPool, Mode, TraceSink};

/// Shape of one attention layer instance.
#[derive(Clone, Copy, Debug)]
pub struct AttentionConfig {
    /// Sequence length `l`.
    pub seq_len: usize,
    /// Per-head feature dimension `k`.
    pub head_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Mask sparsity (fraction of pruned entries).
    pub sparsity: f64,
    /// Column-vector grain of the mask (8 in the paper).
    pub v: usize,
    /// Width of the dense diagonal band (256 in the paper).
    pub band: usize,
}

impl AttentionConfig {
    /// The paper's LRA setup: l=4000 (rounded to 4096 for alignment),
    /// 4 heads of 64, 90% sparsity, band 256, 8×1 vectors.
    pub fn paper_lra() -> Self {
        AttentionConfig {
            seq_len: 4096,
            head_dim: 64,
            heads: 4,
            sparsity: 0.9,
            v: 8,
            band: 256,
        }
    }

    /// The band+random attention mask (§7.4).
    pub fn mask(&self, seed: u64) -> SparsityPattern {
        gen::banded_random_pattern(self.seq_len, self.v, self.band, self.sparsity, seed)
    }
}

/// Functional sparse attention for one head, computed **through the
/// kernels** on the engine: octet SDDMM → sparse softmax → octet SpMM.
///
/// `q`, `k`, `v` are `l × head_dim` row-major. Scores are scaled by
/// `1/√head_dim` before the softmax (applied on the sparse values, as the
/// paper's custom softmax kernel does).
///
/// Plans a fresh SDDMM for the mask on every call; when the mask is
/// reused across heads or layers, plan once and use
/// [`sparse_attention_head_planned`] instead.
///
/// # Panics
/// Panics on shape mismatches.
pub fn sparse_attention_head(
    ctx: &Context,
    q: &DenseMatrix<f16>,
    k: &DenseMatrix<f16>,
    v: &DenseMatrix<f16>,
    mask: &SparsityPattern,
) -> DenseMatrix<f16> {
    let plan = ctx.plan_sddmm(mask, q.cols(), SddmmAlgo::OctetArch);
    sparse_attention_head_planned(ctx, &plan, q, k, v)
}

/// [`sparse_attention_head`] against a pre-built SDDMM plan for the
/// shared mask — the form the encoder pipeline uses, so the mask is
/// captured once per forward pass rather than once per head.
///
/// # Panics
/// Panics on shape mismatches against the plan's descriptor.
pub fn sparse_attention_head_planned(
    ctx: &Context,
    plan: &SddmmPlan,
    q: &DenseMatrix<f16>,
    k: &DenseMatrix<f16>,
    v: &DenseMatrix<f16>,
) -> DenseMatrix<f16> {
    let head_dim = q.cols();
    assert_eq!(k.cols(), head_dim);
    assert_eq!(v.cols(), head_dim);

    // SDDMM wants B = Kᵀ in column-major, which shares K's row-major
    // bytes: re-tag via transpose + layout conversion.
    let kt = k.transpose().to_layout(Layout::ColMajor);
    let scores = plan.run(q, &kt);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let scaled = VectorSparse::new(
        plan.mask().clone(),
        scores
            .values()
            .iter()
            .map(|x| f16::from_f32(x.to_f32() * scale))
            .collect(),
    );
    let attn = softmax_vs(ctx.gpu(), &scaled);
    ctx.spmm(&attn, v, SpmmAlgo::Octet)
}

/// Dense reference attention (masked, f32 accumulation) for validation.
pub fn dense_attention_reference(
    q: &DenseMatrix<f16>,
    k: &DenseMatrix<f16>,
    v: &DenseMatrix<f16>,
    mask: &SparsityPattern,
) -> DenseMatrix<f16> {
    let head_dim = q.cols();
    let kt = k.transpose().to_layout(Layout::ColMajor);
    let scores = reference::sddmm(q, &kt, mask);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let scaled = VectorSparse::new(
        mask.clone(),
        scores
            .values()
            .iter()
            .map(|x| f16::from_f32(x.to_f32() * scale))
            .collect(),
    );
    let attn = reference::softmax_vs(&scaled);
    reference::spmm_vs(&attn, v)
}

/// Cycle-model latency breakdown of one attention layer (all heads),
/// mirroring Fig. 20's stacks: `QKᵀ∘C`, `Softmax`, `A·V`, `Others`
/// (input/output projections).
#[derive(Clone, Copy, Debug, Default)]
pub struct AttentionLatency {
    /// Cycles in the score computation (SDDMM or dense GEMM).
    pub qk: f64,
    /// Cycles in the softmax.
    pub softmax: f64,
    /// Cycles in the value aggregation (SpMM or dense GEMM).
    pub av: f64,
    /// Cycles in the four projection GEMMs.
    pub others: f64,
}

impl AttentionLatency {
    /// Total layer cycles.
    pub fn total(&self) -> f64 {
        self.qk + self.softmax + self.av + self.others
    }
}

/// Latency of the **sparse** attention layer using the vecsparse kernels,
/// profiled through an engine context on `gpu`.
pub fn sparse_attention_latency(gpu: &GpuConfig, cfg: &AttentionConfig) -> AttentionLatency {
    sparse_attention_latency_traced(gpu, cfg, Arc::new(TraceSink::disabled()))
}

/// [`sparse_attention_latency`] with the profiling context recording into
/// `sink`: every plan/tune/stage span and the per-scheduler kernel
/// timelines of the QK SDDMM and AV SpMM land in the trace.
pub fn sparse_attention_latency_traced(
    gpu: &GpuConfig,
    cfg: &AttentionConfig,
    sink: Arc<TraceSink>,
) -> AttentionLatency {
    let ctx = Context::builder().gpu(gpu.clone()).telemetry(sink).build();
    let l = cfg.seq_len;
    let d = cfg.head_dim;
    let mask = cfg.mask(0x7A);
    // Representative operand structures; values are irrelevant in
    // performance mode.
    let q = gen::random_dense::<f16>(l, d, Layout::RowMajor, 1);
    let kt = gen::random_dense::<f16>(d, l, Layout::ColMajor, 2);
    let v = gen::random_dense::<f16>(l, d, Layout::RowMajor, 3);
    let attn = gen::fill_pattern::<f16>(mask.clone(), 4);

    let heads = cfg.heads as f64;
    let qk = ctx
        .plan_sddmm(&mask, d, SddmmAlgo::OctetArch)
        .profile(&q, &kt);
    let sm = profile_softmax_vs(gpu, &attn);
    let av = ctx.plan_spmm(&attn, d, SpmmAlgo::Octet).profile(&v);
    AttentionLatency {
        qk: qk.cycles * heads,
        softmax: sm.cycles * heads,
        av: av.cycles * heads,
        others: projection_cycles(gpu, cfg),
    }
}

/// Latency of the **dense** attention layer (`cublasHgemm` + dense
/// softmax) at the same shape.
pub fn dense_attention_latency(gpu: &GpuConfig, cfg: &AttentionConfig) -> AttentionLatency {
    let l = cfg.seq_len;
    let d = cfg.head_dim;
    let heads = cfg.heads as f64;
    let q = gen::random_dense::<f16>(l, d, Layout::RowMajor, 1);
    let kt = gen::random_dense::<f16>(d, l, Layout::RowMajor, 2);
    let scores = gen::random_dense::<f16>(l, l, Layout::RowMajor, 3);
    let v = gen::random_dense::<f16>(l, d, Layout::RowMajor, 4);

    let qk = profile_dense_gemm(gpu, &q, &kt);
    // Dense softmax kernel over the l×l score matrix.
    let sm = {
        let mut mem = MemPool::new();
        let kernel = DenseSoftmax::new(&mut mem, l, l, Mode::Performance);
        Launch::new(&mut mem, &kernel)
            .gpu(gpu)
            .performance()
            .run()
            .profile
            .expect("profile")
    };
    let av = profile_dense_gemm(gpu, &scores, &v);
    AttentionLatency {
        qk: qk.cycles * heads,
        softmax: sm.cycles * heads,
        av: av.cycles * heads,
        others: projection_cycles(gpu, cfg),
    }
}

/// The four projection GEMMs (`l × d_model` by `d_model × d_model`),
/// identical for sparse and dense attention.
fn projection_cycles(gpu: &GpuConfig, cfg: &AttentionConfig) -> f64 {
    let d_model = cfg.head_dim * cfg.heads;
    let x = gen::random_dense::<f16>(cfg.seq_len, d_model, Layout::RowMajor, 5);
    let w = gen::random_dense::<f16>(d_model, d_model, Layout::RowMajor, 6);
    let p = profile_dense_gemm(gpu, &x, &w);
    p.cycles * 4.0
}

/// Check that a profiled kernel's name mentions the expected algorithm
/// (tiny helper for tests/reports).
pub fn describe<K: KernelSpec>(kernel: &K) -> String {
    kernel.name()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_attention_matches_reference() {
        let gpu = GpuConfig::small();
        let cfg = AttentionConfig {
            seq_len: 64,
            head_dim: 32,
            heads: 1,
            sparsity: 0.7,
            v: 8,
            band: 16,
        };
        let mask = cfg.mask(11);
        let q = gen::random_dense::<f16>(64, 32, Layout::RowMajor, 1);
        let k = gen::random_dense::<f16>(64, 32, Layout::RowMajor, 2);
        let v = gen::random_dense::<f16>(64, 32, Layout::RowMajor, 3);
        let ctx = Context::builder().gpu(gpu.clone()).build();
        let got = sparse_attention_head(&ctx, &q, &k, &v, &mask);
        let want = dense_attention_reference(&q, &k, &v, &mask);
        // Softmax goes through exp(); allow a few half-precision ulps.
        assert!(
            got.max_abs_diff(&want) < 5e-3,
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn sparse_layer_beats_dense_at_high_sparsity() {
        let gpu = GpuConfig::small();
        let cfg = AttentionConfig {
            seq_len: 1024,
            head_dim: 64,
            heads: 4,
            sparsity: 0.95,
            v: 8,
            band: 64,
        };
        let sparse = sparse_attention_latency(&gpu, &cfg);
        let dense = dense_attention_latency(&gpu, &cfg);
        assert!(
            sparse.total() < dense.total(),
            "sparse {} dense {}",
            sparse.total(),
            dense.total()
        );
        // Softmax and AV shrink the most (Fig. 20's observation).
        assert!(sparse.softmax < dense.softmax);
        assert!(sparse.av < dense.av);
        // Projections are identical.
        assert!((sparse.others - dense.others).abs() < 1e-6);
    }
}
