//! A small trainable transformer — the accuracy surrogate for Table 4.
//!
//! The paper fine-tunes a 4-layer transformer on Long-Range Arena
//! byte-level text classification and reports that the 8×1 vector-sparse
//! attention mask costs ≈0.1% accuracy versus dense attention, and that
//! post-training fp16 quantisation costs ≈0.03%. Neither the LRA data nor
//! a GPU training stack is available here, so this module reproduces the
//! *claim* on a synthetic long-sequence classification task (which token
//! of a pair occurs more often — evidence spread across the whole
//! sequence, like byte-level text classification) trained **with the same
//! band+random vector-sparse mask** the kernels execute.
//!
//! Everything is pure Rust: forward pass, manual backpropagation, SGD.
//! Evaluation modes:
//!
//! * dense-f32 — full attention, single precision (the baseline);
//! * dense-f16 — weights and boundary activations rounded to binary16;
//! * sparse-f16 — the band+random CVSE mask plus f16 rounding, i.e. the
//!   configuration the vecsparse kernels execute.

use rand::prelude::*;
use rand::rngs::StdRng;
use vecsparse_formats::SparsityPattern;
use vecsparse_fp16::f16;

/// Reserved token id (unused by the counting task; kept for tasks that
/// need a marker symbol).
pub const MARK: usize = 14;
/// Vocabulary size (tokens 0..=13 are data, 14 reserved, 15 padding).
pub const VOCAB: usize = 16;

/// A tiny row-major matrix (f32) with just the ops backprop needs.
#[derive(Clone, Debug)]
pub struct Mat {
    /// Rows.
    pub r: usize,
    /// Cols.
    pub c: usize,
    /// Row-major data.
    pub d: Vec<f32>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(r: usize, c: usize) -> Mat {
        Mat {
            r,
            c,
            d: vec![0.0; r * c],
        }
    }

    /// Xavier-ish random init.
    pub fn randn(r: usize, c: usize, rng: &mut StdRng) -> Mat {
        let scale = (2.0 / (r + c) as f32).sqrt();
        Mat {
            r,
            c,
            d: (0..r * c)
                .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
                .collect(),
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f32 {
        self.d[i * self.c + j]
    }

    #[inline]
    fn at_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        &mut self.d[i * self.c + j]
    }

    /// `self · other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.c, other.r);
        let mut out = Mat::zeros(self.r, other.c);
        for i in 0..self.r {
            for k in 0..self.c {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.c {
                    *out.at_mut(i, j) += a * other.at(k, j);
                }
            }
        }
        out
    }

    /// `selfᵀ · other`.
    pub fn t_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.r, other.r);
        let mut out = Mat::zeros(self.c, other.c);
        for k in 0..self.r {
            for i in 0..self.c {
                let a = self.at(k, i);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.c {
                    *out.at_mut(i, j) += a * other.at(k, j);
                }
            }
        }
        out
    }

    /// `self · otherᵀ`.
    pub fn matmul_t(&self, other: &Mat) -> Mat {
        assert_eq!(self.c, other.c);
        let mut out = Mat::zeros(self.r, other.r);
        for i in 0..self.r {
            for j in 0..other.r {
                let mut s = 0.0;
                for k in 0..self.c {
                    s += self.at(i, k) * other.at(j, k);
                }
                *out.at_mut(i, j) = s;
            }
        }
        out
    }

    /// Elementwise `self += other * scale`.
    pub fn add_scaled(&mut self, other: &Mat, scale: f32) {
        debug_assert_eq!(self.d.len(), other.d.len());
        for (a, b) in self.d.iter_mut().zip(&other.d) {
            *a += b * scale;
        }
    }

    /// Round every entry to the binary16 grid.
    pub fn quantise_f16(&mut self) {
        for v in &mut self.d {
            *v = f16::from_f32(*v).to_f32();
        }
    }
}

/// One generated example.
#[derive(Clone, Debug)]
pub struct Example {
    /// Token ids, length `seq_len`.
    pub tokens: Vec<usize>,
    /// Class label (0/1).
    pub label: usize,
}

/// The synthetic long-sequence classification task.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticTask {
    /// Sequence length.
    pub seq_len: usize,
}

impl SyntheticTask {
    /// Generate one example: random tokens; the label says whether token
    /// `3` or token `5` occurs more often (ties are broken by flipping
    /// one occurrence). Long-range evidence is spread over the whole
    /// sequence — the same regime as LRA byte-level classification — and
    /// is available through banded-plus-random sparse attention.
    pub fn sample(&self, rng: &mut StdRng) -> Example {
        let mut tokens: Vec<usize> = (0..self.seq_len).map(|_| rng.gen_range(0..14)).collect();
        let c3 = tokens.iter().filter(|&&t| t == 3).count();
        let c5 = tokens.iter().filter(|&&t| t == 5).count();
        if c3 == c5 {
            // Break the tie deterministically in favour of a random side.
            let side = if rng.gen::<bool>() { 3 } else { 5 };
            if let Some(slot) = tokens.iter_mut().find(|t| **t != 3 && **t != 5) {
                *slot = side;
            }
        }
        let c3 = tokens.iter().filter(|&&t| t == 3).count();
        let c5 = tokens.iter().filter(|&&t| t == 5).count();
        let label = usize::from(c3 > c5);
        Example { tokens, label }
    }

    /// A batch of examples.
    pub fn batch(&self, n: usize, rng: &mut StdRng) -> Vec<Example> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Evaluation / training numerics mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalMode {
    /// Dense attention, f32.
    DenseSingle,
    /// Dense attention, f16-rounded weights and activations.
    DenseHalf,
    /// Vector-sparse masked attention, f16-rounded.
    SparseHalf,
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// SGD steps.
    pub steps: usize,
    /// Examples per step.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 300,
            batch: 8,
            lr: 0.25,
            seed: 7,
        }
    }
}

/// A one-layer, one-head transformer classifier (kept minimal so the
/// hand-written backward pass stays auditable).
pub struct TinyTransformer {
    /// Sequence length.
    pub seq_len: usize,
    /// Model width.
    pub d: usize,
    emb: Mat,
    pos: Mat,
    wq: Mat,
    wk: Mat,
    wv: Mat,
    w1: Mat,
    w2: Mat,
    wc: Mat,
    /// Optional attention mask (None = dense attention).
    pub mask: Option<SparsityPattern>,
}

struct Forward {
    x: Mat,         // L×D input embeddings
    q: Mat,         // L×D
    k: Mat,         // L×D
    v: Mat,         // L×D
    attn: Mat,      // L×L post-softmax (masked entries zero)
    ctx: Mat,       // L×D attention output (+residual applied later)
    h1: Mat,        // L×F post-relu
    pool: Vec<f32>, // D mean-pooled
    logits: [f32; 2],
    probs: [f32; 2],
}

impl TinyTransformer {
    /// Fresh random model.
    pub fn new(seq_len: usize, d: usize, seed: u64) -> TinyTransformer {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = 2 * d;
        TinyTransformer {
            seq_len,
            d,
            emb: Mat::randn(VOCAB, d, &mut rng),
            pos: Mat::randn(seq_len, d, &mut rng),
            wq: Mat::randn(d, d, &mut rng),
            wk: Mat::randn(d, d, &mut rng),
            wv: Mat::randn(d, d, &mut rng),
            w1: Mat::randn(d, f, &mut rng),
            w2: Mat::randn(f, d, &mut rng),
            wc: Mat::randn(d, 2, &mut rng),
            mask: None,
        }
    }

    /// Copy all trainable parameters from another model (same shape).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn clone_weights_from(&mut self, other: &TinyTransformer) {
        assert_eq!(self.seq_len, other.seq_len);
        assert_eq!(self.d, other.d);
        self.emb = other.emb.clone();
        self.pos = other.pos.clone();
        self.wq = other.wq.clone();
        self.wk = other.wk.clone();
        self.wv = other.wv.clone();
        self.w1 = other.w1.clone();
        self.w2 = other.w2.clone();
        self.wc = other.wc.clone();
    }

    /// Quantise all parameters to the f16 grid (post-training, as the
    /// paper does: "directly quantize the weights and activations to half
    /// without finetuning").
    pub fn quantise_f16(&mut self) {
        for m in [
            &mut self.emb,
            &mut self.pos,
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.w1,
            &mut self.w2,
            &mut self.wc,
        ] {
            m.quantise_f16();
        }
    }

    fn round_if(m: &mut Mat, half: bool) {
        if half {
            m.quantise_f16();
        }
    }

    fn forward(&self, ex: &Example, mode: EvalMode) -> Forward {
        let l = self.seq_len;
        let d = self.d;
        let half = mode != EvalMode::DenseSingle;
        let masked = mode == EvalMode::SparseHalf;

        let mut x = Mat::zeros(l, d);
        for (i, &t) in ex.tokens.iter().enumerate() {
            for j in 0..d {
                *x.at_mut(i, j) = self.emb.at(t, j) + self.pos.at(i, j);
            }
        }
        Self::round_if(&mut x, half);

        let mut q = x.matmul(&self.wq);
        let mut k = x.matmul(&self.wk);
        let mut v = x.matmul(&self.wv);
        Self::round_if(&mut q, half);
        Self::round_if(&mut k, half);
        Self::round_if(&mut v, half);

        // Scores with optional vector-sparse mask; masked-out = -inf.
        let scale = 1.0 / (d as f32).sqrt();
        let mut scores = q.matmul_t(&k);
        for s in &mut scores.d {
            *s *= scale;
        }
        if masked {
            let mask = self.mask.as_ref().expect("sparse eval needs a mask");
            for i in 0..l {
                for j in 0..l {
                    if !mask.contains(i, j) {
                        *scores.at_mut(i, j) = f32::NEG_INFINITY;
                    }
                }
            }
        }
        // Row softmax.
        let mut attn = Mat::zeros(l, l);
        for i in 0..l {
            let mut mx = f32::NEG_INFINITY;
            for j in 0..l {
                mx = mx.max(scores.at(i, j));
            }
            let mut denom = 0.0;
            for j in 0..l {
                denom += (scores.at(i, j) - mx).exp();
            }
            for j in 0..l {
                *attn.at_mut(i, j) = (scores.at(i, j) - mx).exp() / denom;
            }
        }
        Self::round_if(&mut attn, half);

        let mut ctx = attn.matmul(&v);
        // Residual.
        for i in 0..l * d {
            ctx.d[i] += x.d[i];
        }
        Self::round_if(&mut ctx, half);

        // FFN with relu + residual.
        let mut h1 = ctx.matmul(&self.w1);
        for h in &mut h1.d {
            *h = h.max(0.0);
        }
        Self::round_if(&mut h1, half);
        let mut h2 = h1.matmul(&self.w2);
        for i in 0..l * d {
            h2.d[i] += ctx.d[i];
        }
        Self::round_if(&mut h2, half);

        // Mean pool + classifier.
        let mut pool = vec![0.0f32; d];
        for i in 0..l {
            for j in 0..d {
                pool[j] += h2.at(i, j) / l as f32;
            }
        }
        let mut logits = [0.0f32; 2];
        for c in 0..2 {
            for j in 0..d {
                logits[c] += pool[j] * self.wc.at(j, c);
            }
        }
        let mx = logits[0].max(logits[1]);
        let e0 = (logits[0] - mx).exp();
        let e1 = (logits[1] - mx).exp();
        let probs = [e0 / (e0 + e1), e1 / (e0 + e1)];

        Forward {
            x,
            q,
            k,
            v,
            attn,
            ctx,
            h1,
            pool,
            logits,
            probs,
        }
    }

    /// Predicted class under the given mode.
    pub fn predict(&self, ex: &Example, mode: EvalMode) -> usize {
        let f = self.forward(ex, mode);
        usize::from(f.logits[1] > f.logits[0])
    }

    /// Accuracy over a dataset.
    pub fn accuracy(&self, data: &[Example], mode: EvalMode) -> f64 {
        let correct = data
            .iter()
            .filter(|ex| self.predict(ex, mode) == ex.label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// One SGD step over a batch (dense-f32 training, optionally with the
    /// sparse mask applied — the paper trains *with* the fixed mask).
    ///
    /// Returns the mean cross-entropy loss.
    pub fn train_step(&mut self, batch: &[Example], lr: f32, masked: bool) -> f32 {
        let l = self.seq_len;
        let d = self.d;
        let f = 2 * d;
        let mode = if masked && self.mask.is_some() {
            // Masked training still runs in f32.
            EvalMode::SparseHalf
        } else {
            EvalMode::DenseSingle
        };
        // Gradient accumulators.
        let mut g_emb = Mat::zeros(VOCAB, d);
        let mut g_pos = Mat::zeros(l, d);
        let mut g_wq = Mat::zeros(d, d);
        let mut g_wk = Mat::zeros(d, d);
        let mut g_wv = Mat::zeros(d, d);
        let mut g_w1 = Mat::zeros(d, f);
        let mut g_w2 = Mat::zeros(f, d);
        let mut g_wc = Mat::zeros(d, 2);
        let mut loss_sum = 0.0f32;

        for ex in batch {
            // Forward in f32 (ignore rounding during training).
            let fwd = self.forward(
                ex,
                if mode == EvalMode::SparseHalf {
                    EvalMode::SparseHalf
                } else {
                    EvalMode::DenseSingle
                },
            );
            loss_sum += -(fwd.probs[ex.label].max(1e-9)).ln();

            // dLogits.
            let mut dlogits = [fwd.probs[0], fwd.probs[1]];
            dlogits[ex.label] -= 1.0;
            // Classifier grads.
            for j in 0..d {
                for c in 0..2 {
                    *g_wc.at_mut(j, c) += fwd.pool[j] * dlogits[c];
                }
            }
            // dPool.
            let mut dpool = vec![0.0f32; d];
            for j in 0..d {
                for c in 0..2 {
                    dpool[j] += self.wc.at(j, c) * dlogits[c];
                }
            }
            // dH2 (mean pool).
            let mut dh2 = Mat::zeros(l, d);
            for i in 0..l {
                for j in 0..d {
                    *dh2.at_mut(i, j) = dpool[j] / l as f32;
                }
            }
            // FFN backward: h2 = relu(ctx·W1)·W2 + ctx.
            let dh1_pre = dh2.matmul_t(&self.w2); // L×F
            let mut dh1 = dh1_pre;
            for (g, h) in dh1.d.iter_mut().zip(&fwd.h1.d) {
                if *h <= 0.0 {
                    *g = 0.0;
                }
            }
            g_w2.add_scaled(&fwd.h1.t_matmul(&dh2), 1.0);
            g_w1.add_scaled(&fwd.ctx.t_matmul(&dh1), 1.0);
            let mut dctx = dh1.matmul_t(&self.w1);
            dctx.add_scaled(&dh2, 1.0); // Residual.

            // Attention backward: ctx = attn·v + x.
            let dv = fwd.attn.t_matmul(&dctx); // L×D
            let dattn = dctx.matmul_t(&fwd.v); // L×L
                                               // Softmax backward per row.
            let mut dscores = Mat::zeros(l, l);
            for i in 0..l {
                let mut dot = 0.0;
                for j in 0..l {
                    dot += dattn.at(i, j) * fwd.attn.at(i, j);
                }
                for j in 0..l {
                    let a = fwd.attn.at(i, j);
                    *dscores.at_mut(i, j) = a * (dattn.at(i, j) - dot);
                }
            }
            let scale = 1.0 / (d as f32).sqrt();
            for s in &mut dscores.d {
                *s *= scale;
            }
            let dq = dscores.matmul(&fwd.k);
            let dk = dscores.t_matmul(&fwd.q);
            g_wq.add_scaled(&fwd.x.t_matmul(&dq), 1.0);
            g_wk.add_scaled(&fwd.x.t_matmul(&dk), 1.0);
            g_wv.add_scaled(&fwd.x.t_matmul(&dv), 1.0);

            // dX: through q/k/v projections, residuals.
            let mut dx = dq.matmul_t(&self.wq);
            dx.add_scaled(&dk.matmul_t(&self.wk), 1.0);
            dx.add_scaled(&dv.matmul_t(&self.wv), 1.0);
            dx.add_scaled(&dctx, 1.0); // Residual into attention block.

            // Embedding grads.
            for (i, &t) in ex.tokens.iter().enumerate() {
                for j in 0..d {
                    *g_emb.at_mut(t, j) += dx.at(i, j);
                    *g_pos.at_mut(i, j) += dx.at(i, j);
                }
            }
        }

        let step = -lr / batch.len() as f32;
        self.emb.add_scaled(&g_emb, step);
        self.pos.add_scaled(&g_pos, step);
        self.wq.add_scaled(&g_wq, step);
        self.wk.add_scaled(&g_wk, step);
        self.wv.add_scaled(&g_wv, step);
        self.w1.add_scaled(&g_w1, step);
        self.w2.add_scaled(&g_w2, step);
        self.wc.add_scaled(&g_wc, step);
        loss_sum / batch.len() as f32
    }

    /// Train to convergence on the synthetic task; returns the final
    /// training loss.
    pub fn train(&mut self, task: &SyntheticTask, cfg: &TrainConfig, masked: bool) -> f32 {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut loss = f32::INFINITY;
        for _ in 0..cfg.steps {
            let batch = task.batch(cfg.batch, &mut rng);
            loss = self.train_step(&batch, cfg.lr, masked);
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::gen;

    fn mask_for(seq: usize) -> SparsityPattern {
        gen::banded_random_pattern(seq, 8, 16, 0.7, 3)
    }

    #[test]
    fn task_labels_are_balanced() {
        let task = SyntheticTask { seq_len: 64 };
        let mut rng = StdRng::seed_from_u64(1);
        let data = task.batch(400, &mut rng);
        let ones = data.iter().filter(|e| e.label == 1).count();
        assert!((120..280).contains(&ones), "ones {ones}");
    }

    #[test]
    fn training_reduces_loss() {
        let task = SyntheticTask { seq_len: 32 };
        let mut model = TinyTransformer::new(32, 16, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let batch = task.batch(8, &mut rng);
        let first = model.train_step(&batch, 0.2, false);
        for _ in 0..30 {
            let b = task.batch(8, &mut rng);
            model.train_step(&b, 0.2, false);
        }
        let last = model.train_step(&batch, 0.0, false);
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn quantised_model_agrees_with_f32_mostly() {
        let task = SyntheticTask { seq_len: 32 };
        let mut model = TinyTransformer::new(32, 16, 6);
        model.mask = Some(gen::banded_random_pattern(32, 8, 16, 0.5, 4));
        let cfg = TrainConfig {
            steps: 60,
            ..TrainConfig::default()
        };
        model.train(&task, &cfg, false);
        let mut rng = StdRng::seed_from_u64(9);
        let test = task.batch(100, &mut rng);
        let mut q = TinyTransformer::new(32, 16, 6);
        q.clone_weights_from(&model);
        q.mask = model.mask.clone();
        q.quantise_f16();
        let a32 = model.accuracy(&test, EvalMode::DenseSingle);
        let a16 = q.accuracy(&test, EvalMode::DenseHalf);
        assert!((a32 - a16).abs() < 0.1, "f32 {a32} vs f16 {a16}");
    }

    #[test]
    fn masked_training_learns_the_task() {
        let seq = 48;
        let task = SyntheticTask { seq_len: seq };
        let mut model = TinyTransformer::new(seq, 24, 11);
        model.mask = Some(mask_for(seq));
        let cfg = TrainConfig {
            steps: 250,
            batch: 8,
            lr: 0.3,
            seed: 13,
        };
        model.train(&task, &cfg, true);
        let mut rng = StdRng::seed_from_u64(21);
        let test = task.batch(200, &mut rng);
        let acc = model.accuracy(&test, EvalMode::SparseHalf);
        assert!(acc > 0.7, "accuracy {acc}");
    }
}
