//! Peak-memory accounting for Table 4.
//!
//! The dominant term at long sequence length is the attention score
//! matrix: dense attention materialises `batch × heads × l × l` scores,
//! while the sparse pipeline stores only the mask's nonzeros (values plus
//! CVSE indices, the index arrays shared across batch and heads).

use crate::attention::AttentionConfig;

/// Numeric precision of the activations/weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// 32-bit floats.
    Single,
    /// 16-bit floats.
    Half,
}

impl Precision {
    /// Bytes per element.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Single => 4,
            Precision::Half => 2,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Single => "float",
            Precision::Half => "half",
        }
    }
}

/// Peak-memory breakdown of a transformer forward pass.
#[derive(Clone, Copy, Debug)]
pub struct MemoryReport {
    /// Bytes for the attention score/probability matrices.
    pub scores_bytes: u64,
    /// Bytes for Q/K/V/O activations of one layer.
    pub qkv_bytes: u64,
    /// Bytes for the CVSE index arrays (sparse only).
    pub index_bytes: u64,
    /// Total peak bytes.
    pub total_bytes: u64,
}

impl MemoryReport {
    /// Total in GiB.
    pub fn gib(&self) -> f64 {
        self.total_bytes as f64 / (1u64 << 30) as f64
    }

    /// Total in MiB.
    pub fn mib(&self) -> f64 {
        self.total_bytes as f64 / (1u64 << 20) as f64
    }
}

/// Peak memory of the attention stack for a batch, dense or sparse.
///
/// `sparse` selects the CVSE pipeline (scores stored only at mask
/// nonzeros). Two score-sized activations are live at the peak (scores
/// plus softmax output), matching a straightforward implementation.
pub fn attention_peak_memory(
    cfg: &AttentionConfig,
    batch: usize,
    precision: Precision,
    sparse: bool,
) -> MemoryReport {
    let l = cfg.seq_len as u64;
    let b = batch as u64;
    let h = cfg.heads as u64;
    let e = precision.bytes();
    let d_model = (cfg.head_dim * cfg.heads) as u64;

    let (scores_bytes, index_bytes) = if sparse {
        let nnz = ((l * l) as f64 * (1.0 - cfg.sparsity)) as u64;
        // Values per batch×head, index arrays shared (one mask).
        let values = 2 * b * h * nnz * e;
        let indices = (nnz / cfg.v as u64) * 4 + (l / cfg.v as u64 + 1) * 4;
        (values, indices)
    } else {
        (2 * b * h * l * l * e, 0)
    };
    // Q, K, V, output activations for the layer.
    let qkv_bytes = 4 * b * l * d_model * e;
    MemoryReport {
        scores_bytes,
        qkv_bytes,
        index_bytes,
        total_bytes: scores_bytes + qkv_bytes + index_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lra() -> AttentionConfig {
        AttentionConfig::paper_lra()
    }

    #[test]
    fn half_halves_dense_memory() {
        let d32 = attention_peak_memory(&lra(), 8, Precision::Single, false);
        let d16 = attention_peak_memory(&lra(), 8, Precision::Half, false);
        let ratio = d32.total_bytes as f64 / d16.total_bytes as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn sparse_memory_reduction_matches_table4_scale() {
        // Table 4: dense(half) 2.22 GB vs sparse(half) 170 MB — ≈13×.
        let dense = attention_peak_memory(&lra(), 8, Precision::Half, false);
        let sparse = attention_peak_memory(&lra(), 8, Precision::Half, true);
        let ratio = dense.total_bytes as f64 / sparse.total_bytes as f64;
        assert!(
            (6.0..16.0).contains(&ratio),
            "reduction {ratio} (dense {} MiB, sparse {} MiB)",
            dense.mib(),
            sparse.mib()
        );
        // Dense(float) lands in the paper's multi-GiB regime.
        let d32 = attention_peak_memory(&lra(), 8, Precision::Single, false);
        assert!(d32.gib() > 3.0 && d32.gib() < 6.5, "{} GiB", d32.gib());
    }
}
