//! # vecsparse-transformer
//!
//! The paper's §7.4 application: **sparse transformer inference** built on
//! the vecsparse kernels. The self-attention layer
//!
//! ```text
//! A = Softmax((QKᵀ ∘ C) / √k),   Attention(Q, K, V) = A·V
//! ```
//!
//! becomes SDDMM → sparse softmax → SpMM when the mask `C` is sparse.
//! This crate provides:
//!
//! * [`attention`] — functional single-head attention through the actual
//!   kernels (validated against a dense reference) and the cycle-model
//!   latency breakdown behind Fig. 20;
//! * [`memory`] — the peak-memory accounting behind Table 4;
//! * [`model`] — a small trainable transformer (pure-Rust forward and
//!   backward) used as the accuracy surrogate for Table 4: the real paper
//!   trains on Long-Range Arena byte-level text classification, which is
//!   substituted by a synthetic long-sequence classification task whose
//!   solution requires attention inside the same band+random 8×1
//!   vector-sparse mask (see DESIGN.md §1).

#![forbid(unsafe_code)]
// Kernel and backprop code index several parallel arrays in lock-step;
// iterator-zip rewrites of those loops hurt readability, so the indexed
// form is kept deliberately.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod attention;
pub mod memory;
pub mod model;
pub mod pipeline;

pub use attention::{
    dense_attention_reference, sparse_attention_head, sparse_attention_head_planned,
    AttentionConfig, AttentionLatency,
};
pub use memory::{attention_peak_memory, MemoryReport, Precision};
pub use model::{SyntheticTask, TinyTransformer, TrainConfig};
pub use pipeline::{LayerWeights, SparseEncoder};
