//! A full multi-head, multi-layer transformer encoder stack executed on
//! the vecsparse kernels — the inference engine behind Table 4's
//! throughput row, runnable functionally end to end.
//!
//! Each encoder layer is: Q/K/V projections → per-head sparse attention
//! (SDDMM → sparse softmax → SpMM on the kernels) → output projection →
//! residual → two-layer FFN with ReLU → residual. Projections and FFN
//! run through the dense GEMM kernel so that *every* matrix operation of
//! the forward pass goes through the simulated GPU.

use crate::attention::{sparse_attention_head_planned, AttentionConfig};
use vecsparse::engine::{Context, SddmmPlan};
use vecsparse::spmm::dense_gemm;
use vecsparse::SddmmAlgo;
use vecsparse_formats::{gen, DenseMatrix, Layout, SparsityPattern};
use vecsparse_fp16::f16;

/// Weights of one encoder layer (all `f16`, row-major).
pub struct LayerWeights {
    /// Q/K/V projection matrices, `d_model × d_model`.
    pub wq: DenseMatrix<f16>,
    /// Key projection.
    pub wk: DenseMatrix<f16>,
    /// Value projection.
    pub wv: DenseMatrix<f16>,
    /// Output projection.
    pub wo: DenseMatrix<f16>,
    /// FFN expansion, `d_model × d_ff`.
    pub w1: DenseMatrix<f16>,
    /// FFN contraction, `d_ff × d_model`.
    pub w2: DenseMatrix<f16>,
}

impl LayerWeights {
    /// Random weights for a layer of width `d_model` (FFN 2×).
    pub fn random(d_model: usize, seed: u64) -> LayerWeights {
        let r = |rows, cols, s| gen::random_dense::<f16>(rows, cols, Layout::RowMajor, s);
        LayerWeights {
            wq: r(d_model, d_model, seed),
            wk: r(d_model, d_model, seed + 1),
            wv: r(d_model, d_model, seed + 2),
            wo: r(d_model, d_model, seed + 3),
            w1: r(d_model, 2 * d_model, seed + 4),
            w2: r(2 * d_model, d_model, seed + 5),
        }
    }
}

/// A sparse transformer encoder stack.
pub struct SparseEncoder {
    /// Shape of the attention layers.
    pub cfg: AttentionConfig,
    /// Shared attention mask (fixed, as in the paper).
    pub mask: SparsityPattern,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
}

impl SparseEncoder {
    /// Build a stack of `n_layers` random layers.
    pub fn random(cfg: AttentionConfig, n_layers: usize, seed: u64) -> SparseEncoder {
        let mask = cfg.mask(seed);
        let d_model = cfg.head_dim * cfg.heads;
        let layers = (0..n_layers)
            .map(|i| LayerWeights::random(d_model, seed + 100 * i as u64))
            .collect();
        SparseEncoder { cfg, mask, layers }
    }

    /// Run the stack on an `l × d_model` input, entirely on the kernels
    /// via the engine `ctx`. The shared attention mask is planned **once**
    /// and the plan reused across every head of every layer.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn forward(&self, ctx: &Context, x: &DenseMatrix<f16>) -> DenseMatrix<f16> {
        let d_model = self.cfg.head_dim * self.cfg.heads;
        assert_eq!(x.cols(), d_model, "input width mismatch");
        assert_eq!(x.rows(), self.cfg.seq_len, "sequence length mismatch");
        let sddmm = ctx.plan_sddmm(&self.mask, self.cfg.head_dim, SddmmAlgo::OctetArch);
        let mut h = x.clone();
        for layer in &self.layers {
            h = self.layer_forward(ctx, &sddmm, &h, layer);
        }
        h
    }

    fn layer_forward(
        &self,
        ctx: &Context,
        sddmm: &SddmmPlan,
        x: &DenseMatrix<f16>,
        w: &LayerWeights,
    ) -> DenseMatrix<f16> {
        let l = self.cfg.seq_len;
        let d = self.cfg.head_dim;
        let heads = self.cfg.heads;
        let d_model = d * heads;
        let gpu = ctx.gpu();

        // Projections through the dense GEMM kernel.
        let q = dense_gemm(gpu, x, &w.wq);
        let k = dense_gemm(gpu, x, &w.wk);
        let v = dense_gemm(gpu, x, &w.wv);

        // Per-head sparse attention against the shared mask plan.
        let mut concat = DenseMatrix::zeros(l, d_model, Layout::RowMajor);
        for head in 0..heads {
            let slice = |m: &DenseMatrix<f16>| {
                DenseMatrix::from_fn(l, d, Layout::RowMajor, |r, c| m.get(r, head * d + c))
            };
            let out = sparse_attention_head_planned(ctx, sddmm, &slice(&q), &slice(&k), &slice(&v));
            for r in 0..l {
                for c in 0..d {
                    *concat.get_mut(r, head * d + c) = out.get(r, c);
                }
            }
        }
        let attn_out = dense_gemm(gpu, &concat, &w.wo);

        // Residual 1.
        let mut h = DenseMatrix::zeros(l, d_model, Layout::RowMajor);
        for r in 0..l {
            for c in 0..d_model {
                *h.get_mut(r, c) =
                    f16::from_f32(x.get(r, c).to_f32() + attn_out.get(r, c).to_f32());
            }
        }

        // FFN with ReLU + residual 2.
        let mut mid = dense_gemm(gpu, &h, &w.w1);
        for v in mid.data_mut() {
            if v.to_f32() < 0.0 {
                *v = f16::ZERO;
            }
        }
        let ffn = dense_gemm(gpu, &mid, &w.w2);
        let mut out = DenseMatrix::zeros(l, d_model, Layout::RowMajor);
        for r in 0..l {
            for c in 0..d_model {
                *out.get_mut(r, c) = f16::from_f32(h.get(r, c).to_f32() + ffn.get(r, c).to_f32());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::dense_attention_reference;
    use vecsparse_formats::reference;

    fn small_cfg() -> AttentionConfig {
        AttentionConfig {
            seq_len: 32,
            head_dim: 16,
            heads: 2,
            sparsity: 0.6,
            v: 8,
            band: 8,
        }
    }

    /// A host-side reference of one encoder layer for validation.
    fn layer_reference(
        enc: &SparseEncoder,
        x: &DenseMatrix<f16>,
        w: &LayerWeights,
    ) -> DenseMatrix<f16> {
        let l = enc.cfg.seq_len;
        let d = enc.cfg.head_dim;
        let heads = enc.cfg.heads;
        let d_model = d * heads;
        let q = reference::gemm(x, &w.wq);
        let k = reference::gemm(x, &w.wk);
        let v = reference::gemm(x, &w.wv);
        let mut concat = DenseMatrix::zeros(l, d_model, Layout::RowMajor);
        for head in 0..heads {
            let slice = |m: &DenseMatrix<f16>| {
                DenseMatrix::from_fn(l, d, Layout::RowMajor, |r, c| m.get(r, head * d + c))
            };
            let out = dense_attention_reference(&slice(&q), &slice(&k), &slice(&v), &enc.mask);
            for r in 0..l {
                for c in 0..d {
                    *concat.get_mut(r, head * d + c) = out.get(r, c);
                }
            }
        }
        let attn_out = reference::gemm(&concat, &w.wo);
        let mut h = DenseMatrix::zeros(l, d_model, Layout::RowMajor);
        for r in 0..l {
            for c in 0..d_model {
                *h.get_mut(r, c) =
                    f16::from_f32(x.get(r, c).to_f32() + attn_out.get(r, c).to_f32());
            }
        }
        let mut mid = reference::gemm(&h, &w.w1);
        for v in mid.data_mut() {
            if v.to_f32() < 0.0 {
                *v = f16::ZERO;
            }
        }
        let ffn = reference::gemm(&mid, &w.w2);
        DenseMatrix::from_fn(l, d_model, Layout::RowMajor, |r, c| {
            f16::from_f32(h.get(r, c).to_f32() + ffn.get(r, c).to_f32())
        })
    }

    #[test]
    fn one_layer_matches_reference() {
        let ctx = Context::builder()
            .gpu(vecsparse_gpu_sim::GpuConfig::small())
            .build();
        let enc = SparseEncoder::random(small_cfg(), 1, 7);
        let x = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 8);
        let got = enc.forward(&ctx, &x);
        let want = layer_reference(&enc, &x, &enc.layers[0]);
        // Attention's softmax introduces a few half-ulps; GEMMs are exact.
        // Values grow with d_model so bound the relative error.
        let mut worst: f32 = 0.0;
        for r in 0..32 {
            for c in 0..32 {
                let g = got.get(r, c).to_f32();
                let w = want.get(r, c).to_f32();
                worst = worst.max((g - w).abs() / w.abs().max(1.0));
            }
        }
        assert!(worst < 5e-2, "relative diff {worst}");
    }

    #[test]
    fn stack_composes() {
        let ctx = Context::builder()
            .gpu(vecsparse_gpu_sim::GpuConfig::small())
            .build();
        let enc = SparseEncoder::random(small_cfg(), 2, 9);
        let x = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 10);
        let y = enc.forward(&ctx, &x);
        assert_eq!((y.rows(), y.cols()), (32, 32));
        // A second run is deterministic, and the mask plan was built once
        // per forward pass (never re-tuned: the algorithm is fixed).
        let y2 = enc.forward(&ctx, &x);
        assert_eq!(y.max_abs_diff(&y2), 0.0);
        assert_eq!(ctx.stats().tuner_launches, 0);
        // 2 forwards × (1 mask plan + 2 layers × 2 heads × 1 SpMM plan).
        assert_eq!(ctx.stats().plans_built as usize, 2 * (1 + 2 * 2));
    }

    #[test]
    fn traced_forward_records_engine_spans() {
        use std::sync::Arc;
        use vecsparse_gpu_sim::TraceSink;

        let sink = Arc::new(TraceSink::enabled(1 << 16));
        let ctx = Context::builder()
            .gpu(vecsparse_gpu_sim::GpuConfig::small())
            .telemetry(Arc::clone(&sink))
            .build();
        let enc = SparseEncoder::random(small_cfg(), 1, 7);
        let x = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 8);
        enc.forward(&ctx, &x);

        let events = sink.events();
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        // One mask plan, with its staging span.
        assert_eq!(count("plan sddmm"), 1);
        assert_eq!(count("stage sddmm"), 1);
        // Per-head attention: one SDDMM and one SpMM run each, 2 heads.
        assert_eq!(count("run sddmm"), 2);
        assert_eq!(count("run spmm"), 2);
        // The engine track is named so the Perfetto export labels it.
        assert!(sink
            .process_names()
            .iter()
            .any(|(pid, name)| *pid == 0 && name == "engine"));
        // An untraced context records nothing (zero-overhead default).
        let quiet = Context::builder()
            .gpu(vecsparse_gpu_sim::GpuConfig::small())
            .build();
        enc.forward(&quiet, &x);
        assert!(quiet.sink().events().is_empty());
    }
}
