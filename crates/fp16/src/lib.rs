//! Software IEEE 754 binary16 ("half precision") arithmetic.
//!
//! The vecsparse workspace simulates Volta-generation GPU kernels, whose
//! native operand type is fp16 with fp32 accumulation (the Tensor Core
//! contract). The Rust ecosystem crates allowed in this workspace do not
//! include a half-precision type, so this crate provides one from scratch:
//!
//! * <code>f16</code> — a bit-exact binary16 storage type with round-to-nearest-even
//!   conversions to and from `f32`.
//! * [`Half2`], [`Half4`], [`Float4`] — the packed register types the paper
//!   uses for its column-vector sparse encoding (`half2` for V=2, `half4`
//!   for V=4, `float4` i.e. eight halves for V=8).
//!
//! Arithmetic on `f16` is performed by converting to `f32`, operating, and
//! rounding back, which matches how scalar half arithmetic behaves on real
//! hardware when intermediate precision is single (HFMA with `.f32`
//! accumulate). The Tensor Core model in `vecsparse-gpu-sim` keeps
//! accumulators in `f32` and only rounds on the final store, exactly like
//! `mma.m8n8k4.f32.f16.f16.f32`.

#![forbid(unsafe_code)]

mod half_type;
mod packed;

pub use half_type::f16;
pub use packed::{vector_load_bits, Float4, Half2, Half4};

/// Fused multiply-add in single precision: `a * b + c`.
///
/// The FPU baselines in the paper compute partial sums with `HMUL` (half
/// multiply) followed by `FADD` (single-precision add) to bound the
/// accumulation error; this helper mirrors that numeric path: operands are
/// half precision, the product and the running sum are single precision.
#[inline]
pub fn hmul_fadd(a: f16, b: f16, acc: f32) -> f32 {
    // HMUL rounds the product to half precision before FADD widens it.
    let prod = f16::from_f32(a.to_f32() * b.to_f32());
    acc + prod.to_f32()
}

/// The Tensor Core inner product step: four fp16 products accumulated in
/// fp32 without intermediate rounding (each TCU lane owns a 4-wide dot
/// product unit; see Fig. 1 of the paper).
#[inline]
pub fn tcu_dot4(a: [f16; 4], b: [f16; 4], acc: f32) -> f32 {
    let mut sum = acc;
    for i in 0..4 {
        sum += a[i].to_f32() * b[i].to_f32();
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmul_fadd_rounds_product_to_half() {
        // Pick operands whose product is not representable in f16.
        let a = f16::from_f32(0.1);
        let b = f16::from_f32(3.0);
        let exact = a.to_f32() * b.to_f32();
        let rounded = f16::from_f32(exact).to_f32();
        assert_ne!(exact, rounded, "test needs a product that rounds");
        assert_eq!(hmul_fadd(a, b, 0.0), rounded);
    }

    #[test]
    fn tcu_dot4_keeps_full_precision_products() {
        let a = [f16::from_f32(0.1); 4];
        let b = [f16::from_f32(3.0); 4];
        let exact = a[0].to_f32() * b[0].to_f32() * 4.0;
        assert_eq!(tcu_dot4(a, b, 0.0), exact);
    }
}
