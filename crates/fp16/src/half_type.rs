//! Bit-exact IEEE 754 binary16 storage type.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// IEEE 754 binary16 floating point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
/// Conversions use round-to-nearest-even, matching hardware `F2F` behaviour.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct f16(u16);

impl PartialEq for f16 {
    /// IEEE semantics: NaN compares unequal to everything (including
    /// itself) and +0.0 == -0.0, matching `f32`.
    #[inline]
    fn eq(&self, other: &f16) -> bool {
        self.to_f32() == other.to_f32()
    }
}

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl f16 {
    /// Positive zero.
    pub const ZERO: f16 = f16(0);
    /// Negative zero.
    pub const NEG_ZERO: f16 = f16(SIGN_MASK);
    /// One.
    pub const ONE: f16 = f16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: f16 = f16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: f16 = f16(EXP_MASK);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(SIGN_MASK | EXP_MASK);
    /// A canonical quiet NaN.
    pub const NAN: f16 = f16(0x7E00);
    /// Largest finite value, 65504.
    ///
    /// ```
    /// use vecsparse_fp16::f16;
    /// assert_eq!(f16::MAX.to_f32(), 65504.0);
    /// assert!(f16::from_f32(65520.0).is_infinite()); // Past MAX + ulp/2.
    /// ```
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: f16 = f16(0xFBFF);
    /// Smallest positive normal value, 2^-14; anything smaller is flushed
    /// or represented subnormally.
    ///
    /// ```
    /// use vecsparse_fp16::f16;
    /// assert_eq!(f16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
    /// assert!(f16::from_f32(2.0f32.powi(-15)).is_subnormal());
    /// ```
    pub const MIN_POSITIVE: f16 = f16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: f16 = f16(0x0001);
    /// Machine epsilon, 2^-10: the gap between 1.0 and the next
    /// representable value.
    ///
    /// ```
    /// use vecsparse_fp16::f16;
    /// assert_eq!(f16::EPSILON.to_f32(), 2.0f32.powi(-10));
    /// assert_eq!(f16::EPSILON.to_f32(), f16::ONE.ulp());
    /// ```
    pub const EPSILON: f16 = f16(0x1400);

    /// Reinterpret raw bits as an `f16`.
    #[inline]
    pub const fn from_bits(bits: u16) -> f16 {
        f16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Convert from `f32` with round-to-nearest-even.
    ///
    /// Overflow saturates to infinity (IEEE default), underflow produces
    /// subnormals or signed zero. NaNs are preserved as quiet NaNs.
    pub fn from_f32(value: f32) -> f16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if man == 0 {
                f16(sign | EXP_MASK)
            } else {
                // Quiet NaN; keep the top mantissa bits for debuggability.
                f16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        // Target half exponent.
        let half_exp = unbiased + 15;

        if half_exp >= 0x1F {
            // Overflow to infinity.
            return f16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal or zero. The implicit leading 1 must be made
            // explicit before shifting it below the representable range.
            if half_exp < -10 {
                // Rounds to zero even after the sticky bit is considered.
                return f16(sign);
            }
            let full_man = man | 0x0080_0000;
            // Shift so that 10 mantissa bits remain for half_exp == 0,
            // one fewer for each step below.
            let shift = (14 - half_exp) as u32;
            let halfway = 1u32 << (shift - 1);
            let mut half_man = (full_man >> shift) as u16;
            let rem = full_man & ((1u32 << shift) - 1);
            if rem > halfway || (rem == halfway && (half_man & 1) == 1) {
                half_man += 1; // May carry into the exponent; that is correct.
            }
            return f16(sign | half_man);
        }

        // Normal number: round 23-bit mantissa to 10 bits.
        let mut out = sign | ((half_exp as u16) << 10) | ((man >> 13) as u16);
        let rem = man & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
            // Round up; carry may overflow into the exponent and even to
            // infinity, both of which are correct IEEE behaviour.
            out = out.wrapping_add(1);
        }
        f16(out)
    }

    /// Convert to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & SIGN_MASK) << 16;
        let exp = (self.0 & EXP_MASK) >> 10;
        let man = u32::from(self.0 & MAN_MASK);

        let bits = match exp {
            0 => {
                if man == 0 {
                    sign // Signed zero.
                } else {
                    // Subnormal: value = man * 2^-24. Normalise around the
                    // highest set bit p: 1.f * 2^(p-24).
                    let p = 31 - man.leading_zeros();
                    let exp = 103 + p; // 127 + p - 24
                    let man = (man << (23 - p)) & 0x007F_FFFF;
                    sign | (exp << 23) | man
                }
            }
            0x1F => {
                if man == 0 {
                    sign | 0x7F80_0000 // Infinity.
                } else {
                    sign | 0x7FC0_0000 | (man << 13) // NaN.
                }
            }
            _ => {
                let exp = u32::from(exp) + 127 - 15;
                sign | (exp << 23) | (man << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Convert from `f64` with a **single** round-to-nearest-even.
    ///
    /// Rounding through `f32` first would round twice, which disagrees
    /// with a direct conversion for values that sit within half an f32
    /// ulp of an f16 rounding boundary (e.g. `1 + 2^-11 + 2^-40` rounds
    /// to `1 + 2^-10` directly but collapses to the tie `1 + 2^-11` in
    /// `f32` and then ties-to-even down to `1.0`).
    pub fn from_f64(value: f64) -> f16 {
        let bits = value.to_bits();
        let sign = ((bits >> 48) & 0x8000) as u16;
        let exp = ((bits >> 52) & 0x7FF) as i32;
        let man = bits & 0x000F_FFFF_FFFF_FFFF;

        if exp == 0x7FF {
            // Infinity or NaN.
            return if man == 0 {
                f16(sign | EXP_MASK)
            } else {
                // Quiet NaN; keep the top mantissa bits for debuggability.
                f16(sign | EXP_MASK | 0x0200 | ((man >> 42) as u16 & MAN_MASK))
            };
        }

        let unbiased = exp - 1023;
        let half_exp = unbiased + 15;

        if half_exp >= 0x1F {
            // Overflow to infinity.
            return f16(sign | EXP_MASK);
        }

        if half_exp <= 0 {
            // Subnormal or zero; f64 subnormals land here too (their
            // half_exp is hugely negative, far below the -10 cutoff).
            if half_exp < -10 {
                return f16(sign);
            }
            let full_man = man | (1u64 << 52);
            // Shift so that 10 mantissa bits remain for half_exp == 0,
            // one fewer for each step below.
            let shift = (43 - half_exp) as u32;
            let halfway = 1u64 << (shift - 1);
            let mut half_man = (full_man >> shift) as u16;
            let rem = full_man & ((1u64 << shift) - 1);
            if rem > halfway || (rem == halfway && (half_man & 1) == 1) {
                half_man += 1; // May carry into the exponent; that is correct.
            }
            return f16(sign | half_man);
        }

        // Normal number: round the 52-bit mantissa to 10 bits.
        let mut out = sign | ((half_exp as u16) << 10) | ((man >> 42) as u16);
        let rem = man & ((1u64 << 42) - 1);
        let halfway = 1u64 << 41;
        if rem > halfway || (rem == halfway && (out & 1) == 1) {
            // Round up; carry may overflow into the exponent and even to
            // infinity, both of which are correct IEEE behaviour.
            out = out.wrapping_add(1);
        }
        f16(out)
    }

    /// Widen to `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// True if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// True if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True if the value is subnormal.
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }

    /// True for +0.0 and -0.0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// Sign bit set (note: true for -0.0 and NaNs with the sign bit).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> f16 {
        f16(self.0 & !SIGN_MASK)
    }

    /// One unit in the last place: the gap between this value and the
    /// next representable binary16 value of larger magnitude, exactly as
    /// `f32`. Zero and subnormals report the subnormal spacing `2^-24`;
    /// infinities and NaNs report `f32::NAN`. A store that rounds to
    /// nearest is therefore off by at most `self.ulp() / 2.0`.
    ///
    /// # Examples
    /// ```
    /// use vecsparse_fp16::f16;
    /// assert_eq!(f16::ONE.ulp(), f16::EPSILON.to_f32());
    /// assert_eq!(f16::from_f32(1000.0).ulp(), 0.5);
    /// assert_eq!(f16::MAX.ulp(), 32.0);
    /// assert_eq!(f16::ZERO.ulp(), f16::MIN_POSITIVE_SUBNORMAL.to_f32());
    /// assert!(f16::INFINITY.ulp().is_nan());
    /// ```
    #[inline]
    pub fn ulp(self) -> f32 {
        if !self.is_finite() {
            return f32::NAN;
        }
        let exp = (self.0 & EXP_MASK) >> 10;
        if exp == 0 {
            // Subnormal spacing (also the gap above ±0).
            2.0f32.powi(-24)
        } else {
            2.0f32.powi(i32::from(exp) - 15 - 10)
        }
    }

    /// IEEE minimum (NaN-propagating like `f32::min` semantics).
    #[inline]
    pub fn min(self, other: f16) -> f16 {
        f16::from_f32(self.to_f32().min(other.to_f32()))
    }

    /// IEEE maximum.
    #[inline]
    pub fn max(self, other: f16) -> f16 {
        f16::from_f32(self.to_f32().max(other.to_f32()))
    }
}

impl From<f32> for f16 {
    #[inline]
    fn from(v: f32) -> f16 {
        f16::from_f32(v)
    }
}

impl From<f16> for f32 {
    #[inline]
    fn from(v: f16) -> f32 {
        v.to_f32()
    }
}

impl fmt::Debug for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for f16 {
    #[inline]
    fn partial_cmp(&self, other: &f16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for f16 {
            type Output = f16;
            #[inline]
            fn $method(self, rhs: f16) -> f16 {
                f16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);

impl AddAssign for f16 {
    #[inline]
    fn add_assign(&mut self, rhs: f16) {
        *self = *self + rhs;
    }
}

impl MulAssign for f16 {
    #[inline]
    fn mul_assign(&mut self, rhs: f16) {
        *self = *self * rhs;
    }
}

impl Neg for f16 {
    type Output = f16;
    #[inline]
    fn neg(self) -> f16 {
        f16(self.0 ^ SIGN_MASK)
    }
}

impl Sum for f16 {
    fn sum<I: Iterator<Item = f16>>(iter: I) -> f16 {
        // Accumulate in f32 like the kernels do; round once at the end.
        f16::from_f32(iter.map(f16::to_f32).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -65504.0] {
            assert_eq!(f16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn constants_match_bits() {
        assert_eq!(f16::ONE.to_f32(), 1.0);
        assert_eq!(f16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert_eq!(f16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(f16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(f16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(f16::from_f32(65520.0).is_infinite());
        assert!(f16::from_f32(1e9).is_infinite());
        assert!(f16::from_f32(-1e9).is_infinite());
        assert!(f16::from_f32(-1e9).is_sign_negative());
        // 65504 + half an ulp rounds to max, not infinity.
        assert_eq!(f16::from_f32(65503.0), f16::MAX);
    }

    #[test]
    fn underflow_to_subnormal_and_zero() {
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16::from_f32(tiny), f16::MIN_POSITIVE_SUBNORMAL);
        // Below half of the smallest subnormal rounds to zero.
        assert!(f16::from_f32(tiny / 4.0).is_zero());
        // Exactly half rounds to even (zero).
        assert!(f16::from_f32(tiny / 2.0).is_zero());
        // Just above half rounds up to the subnormal.
        assert_eq!(
            f16::from_f32(tiny / 2.0 + tiny / 8.0),
            f16::MIN_POSITIVE_SUBNORMAL
        );
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties to even
        // picks 1.0 (even mantissa).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway), f16::ONE);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; ties to even
        // picks 1+2^-9 (mantissa 0b10).
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway_up).to_f32(), 1.0 + 2.0f32.powi(-9));
    }

    #[test]
    fn nan_handling() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::NAN.to_f32().is_nan());
        assert!(f16::NAN != f16::NAN);
    }

    #[test]
    fn signed_zero() {
        assert!(f16::from_f32(-0.0).is_zero());
        assert!(f16::from_f32(-0.0).is_sign_negative());
        assert_eq!(f16::from_f32(-0.0).to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn subnormal_to_f32_roundtrip() {
        for bits in 1u16..0x0400 {
            let h = f16::from_bits(bits);
            assert!(h.is_subnormal());
            assert_eq!(f16::from_f32(h.to_f32()), h, "bits {bits:#06x}");
        }
    }

    #[test]
    fn exhaustive_finite_roundtrip() {
        // Every finite f16 must roundtrip exactly through f32.
        for bits in 0u16..=0xFFFF {
            let h = f16::from_bits(bits);
            if h.is_nan() {
                assert!(f16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    f16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn from_f64_rounds_once() {
        // 1 + 2^-11 + 2^-40: strictly above the f16 tie point, so direct
        // conversion rounds up to 1 + 2^-10. Via f32 the tail 2^-40 is
        // lost first, leaving the exact tie 1 + 2^-11 which then rounds
        // to even — i.e. down to 1.0. The classic double-rounding bug.
        let v = 1.0 + 2.0f64.powi(-11) + 2.0f64.powi(-40);
        assert_eq!(f16::from_f32(v as f32), f16::ONE, "double rounding");
        assert_eq!(f16::from_f64(v).to_f32(), 1.0 + 2.0f32.powi(-10));

        // Same shape one binade up, and with a negative sign.
        let v2 = 2.0 + 2.0f64.powi(-10) + 2.0f64.powi(-39);
        assert_eq!(f16::from_f64(v2).to_f32(), 2.0 + 2.0f32.powi(-9));
        assert_eq!(f16::from_f64(-v2).to_f32(), -(2.0 + 2.0f32.powi(-9)));

        // Subnormal boundary: half of the smallest subnormal plus the
        // smallest f64 tail at that magnitude (2^-77, the last mantissa
        // bit — far below f32's half-ulp 2^-49 there, so an f32 detour
        // collapses it back onto the tie). Must round up, not to zero.
        let tiny = 2.0f64.powi(-25) + 2.0f64.powi(-77);
        assert_eq!(f16::from_f64(tiny), f16::MIN_POSITIVE_SUBNORMAL);
        // The exact halfway ties to even (zero).
        assert!(f16::from_f64(2.0f64.powi(-25)).is_zero());
    }

    #[test]
    fn from_f64_special_values() {
        assert!(f16::from_f64(f64::NAN).is_nan());
        assert!(f16::from_f64(f64::INFINITY).is_infinite());
        assert!(f16::from_f64(f64::NEG_INFINITY).is_sign_negative());
        assert!(f16::from_f64(1e300).is_infinite());
        assert!(f16::from_f64(-1e300).is_sign_negative());
        assert!(f16::from_f64(f64::MIN_POSITIVE).is_zero()); // Deep underflow.
        assert!(f16::from_f64(-0.0).is_zero());
        assert!(f16::from_f64(-0.0).is_sign_negative());
        // Overflow by rounding: halfway between MAX and the next step.
        assert!(f16::from_f64(65520.0).is_infinite());
        assert_eq!(f16::from_f64(65519.999), f16::MAX);
    }

    #[test]
    fn from_f64_agrees_with_from_f32_on_f32_inputs() {
        // On values already exactly representable in f32 the two paths
        // are the same single rounding; check across every f16 plus
        // perturbations that exercise each rounding case.
        for bits in 0u16..=0xFFFF {
            let h = f16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let w = h.to_f32();
            for delta in [0.0f32, 2.0f32.powi(-26), -(2.0f32.powi(-26))] {
                let x = w + delta;
                assert_eq!(
                    f16::from_f64(f64::from(x)).to_bits(),
                    f16::from_f32(x).to_bits(),
                    "bits {bits:#06x} delta {delta:e}"
                );
            }
        }
    }

    #[test]
    fn ulp_spacing_is_consistent() {
        for bits in 0u16..0x7C00 {
            let h = f16::from_bits(bits);
            let next = f16::from_bits(bits + 1);
            if next.is_infinite() {
                continue;
            }
            assert_eq!(next.to_f32() - h.to_f32(), h.ulp(), "bits {bits:#06x}");
        }
    }

    #[test]
    fn arithmetic_basics() {
        let a = f16::from_f32(1.5);
        let b = f16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn sum_accumulates_in_f32() {
        // 1024 + 1 overflows half-precision addition granularity: in pure
        // f16 the ones would be absorbed, in f32 accumulation they are not.
        let vals = std::iter::once(f16::from_f32(1024.0)).chain(std::iter::repeat_n(f16::ONE, 512));
        let total: f16 = vals.sum();
        assert_eq!(total.to_f32(), 1536.0);
    }
}
