//! Packed half-precision vector types.
//!
//! The column-vector sparse encoding stores each nonzero as a short column
//! vector: `half2` (V=2), `half4` (V=4), or `float4` reinterpreted as eight
//! halves (V=8). These types model the 32/64/128-bit registers a CUDA kernel
//! uses to move those vectors, and let us reason about vector memory
//! operation widths (LDG.32/64/128) in the simulator.

use crate::f16;
use core::ops::{Index, IndexMut};

/// Two packed `f16` values (a 32-bit register; CUDA `half2`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Half2(pub [f16; 2]);

/// Four packed `f16` values (a 64-bit register pair; CUDA `half4`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Half4(pub [f16; 4]);

/// Eight packed `f16` values (a 128-bit register quad; CUDA `float4`
/// reinterpreted as halves — the widest vector load, LDG.128).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Float4(pub [f16; 8]);

macro_rules! impl_packed {
    ($name:ident, $n:expr, $bits:expr) => {
        impl $name {
            /// Number of packed halves.
            pub const LANES: usize = $n;
            /// Register width in bits (the LDG width needed to load one).
            pub const BITS: u32 = $bits;

            /// All lanes zero.
            #[inline]
            pub fn zero() -> Self {
                Self([f16::ZERO; $n])
            }

            /// Broadcast a single value to all lanes.
            #[inline]
            pub fn splat(v: f16) -> Self {
                Self([v; $n])
            }

            /// Construct from a slice of exactly `LANES` halves.
            ///
            /// # Panics
            /// Panics if `slice.len() != LANES`.
            #[inline]
            pub fn from_slice(slice: &[f16]) -> Self {
                let mut out = Self::zero();
                out.0.copy_from_slice(slice);
                out
            }

            /// View the lanes as a slice.
            #[inline]
            pub fn as_slice(&self) -> &[f16] {
                &self.0
            }

            /// Lane-wise sum in f32 (used by reduction-style tests).
            #[inline]
            pub fn sum_f32(&self) -> f32 {
                self.0.iter().map(|h| h.to_f32()).sum()
            }

            /// Lane-wise fused multiply-add against a broadcast scalar,
            /// accumulating into an f32 array: `acc[i] += self[i] * s`.
            #[inline]
            pub fn fma_scalar_into(&self, s: f16, acc: &mut [f32; $n]) {
                let sv = s.to_f32();
                for i in 0..$n {
                    acc[i] += self.0[i].to_f32() * sv;
                }
            }
        }

        impl Index<usize> for $name {
            type Output = f16;
            #[inline]
            fn index(&self, i: usize) -> &f16 {
                &self.0[i]
            }
        }

        impl IndexMut<usize> for $name {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut f16 {
                &mut self.0[i]
            }
        }

        impl From<[f16; $n]> for $name {
            #[inline]
            fn from(v: [f16; $n]) -> Self {
                Self(v)
            }
        }
    };
}

impl_packed!(Half2, 2, 32);
impl_packed!(Half4, 4, 64);
impl_packed!(Float4, 8, 128);

/// The register width (in bits) required to load one nonzero column vector
/// of length `v` in a single vector memory operation, as used by the paper
/// (`half2`/`half4`/`float4` for V = 2/4/8; a scalar half for V = 1).
///
/// # Panics
/// Panics for unsupported vector lengths.
pub const fn vector_load_bits(v: usize) -> u32 {
    match v {
        1 => 16,
        2 => 32,
        4 => 64,
        8 => 128,
        _ => panic!("column vector length must be 1, 2, 4, or 8"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_and_index() {
        let v = Half4::splat(f16::from_f32(2.5));
        assert_eq!(v[3].to_f32(), 2.5);
        assert_eq!(v.sum_f32(), 10.0);
    }

    #[test]
    fn from_slice_roundtrip() {
        let vals: Vec<f16> = (0..8).map(|i| f16::from_f32(i as f32)).collect();
        let v = Float4::from_slice(&vals);
        assert_eq!(v.as_slice(), &vals[..]);
        assert_eq!(v.sum_f32(), 28.0);
    }

    #[test]
    fn fma_scalar_into_accumulates() {
        let v = Half2::from([f16::from_f32(1.0), f16::from_f32(2.0)]);
        let mut acc = [10.0f32, 20.0];
        v.fma_scalar_into(f16::from_f32(3.0), &mut acc);
        assert_eq!(acc, [13.0, 26.0]);
    }

    #[test]
    fn load_bits_match_paper_types() {
        assert_eq!(vector_load_bits(1), 16);
        assert_eq!(vector_load_bits(2), Half2::BITS);
        assert_eq!(vector_load_bits(4), Half4::BITS);
        assert_eq!(vector_load_bits(8), Float4::BITS);
    }
}
