//! Property-based tests of the binary16 implementation.

use proptest::prelude::*;
use vecsparse_fp16::{f16, hmul_fadd, tcu_dot4, Half4};

proptest! {
    /// from_f32 is monotone on finite inputs (order-preserving rounding).
    #[test]
    fn conversion_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hlo, hhi) = (f16::from_f32(lo), f16::from_f32(hi));
        prop_assert!(hlo.to_f32() <= hhi.to_f32());
    }

    /// Roundtripping through f32 is idempotent: a second conversion
    /// changes nothing.
    #[test]
    fn double_rounding_is_stable(x in any::<f32>()) {
        let once = f16::from_f32(x);
        let twice = f16::from_f32(once.to_f32());
        if once.is_nan() {
            prop_assert!(twice.is_nan());
        } else {
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }
    }

    /// The rounding error of a finite conversion is at most half an ulp
    /// of the result's binade (for normals).
    #[test]
    fn rounding_error_is_bounded(x in -60000.0f32..60000.0) {
        let h = f16::from_f32(x);
        let y = h.to_f32();
        let exp = y.abs().max(f32::MIN_POSITIVE).log2().floor();
        let ulp = 2.0f32.powf(exp - 10.0);
        // Subnormal ulp floor.
        let ulp = ulp.max(2.0f32.powi(-24));
        prop_assert!((x - y).abs() <= ulp / 2.0 + 1e-12, "x {x} y {y} ulp {ulp}");
    }

    /// Negation is exact (a sign-bit flip).
    #[test]
    fn negation_is_exact(x in -60000.0f32..60000.0) {
        let h = f16::from_f32(x);
        prop_assert_eq!((-h).to_f32(), -h.to_f32());
    }

    /// abs never increases the bit pattern's magnitude interpretation.
    #[test]
    fn abs_is_nonnegative(x in any::<f32>()) {
        let h = f16::from_f32(x);
        if !h.is_nan() {
            prop_assert!(h.abs().to_f32() >= 0.0 || h.abs().to_f32().is_nan());
        }
    }

    /// Addition commutes bit-exactly (both orders round identically).
    #[test]
    fn addition_commutes(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (x, y) = (f16::from_f32(a), f16::from_f32(b));
        prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
    }

    /// hmul_fadd equals the widened computation with one intermediate
    /// rounding of the product.
    #[test]
    fn hmul_fadd_semantics(a in -16.0f32..16.0, b in -16.0f32..16.0, acc in -100.0f32..100.0) {
        let (ha, hb) = (f16::from_f32(a), f16::from_f32(b));
        let got = hmul_fadd(ha, hb, acc);
        let want = acc + f16::from_f32(ha.to_f32() * hb.to_f32()).to_f32();
        prop_assert_eq!(got, want);
    }

    /// tcu_dot4 accumulates without intermediate rounding: it equals the
    /// f32 dot product of the (already rounded) operands.
    #[test]
    fn tcu_dot4_is_f32_exact(
        a in prop::array::uniform4(-8.0f32..8.0),
        b in prop::array::uniform4(-8.0f32..8.0),
        acc in -100.0f32..100.0,
    ) {
        let ha = a.map(f16::from_f32);
        let hb = b.map(f16::from_f32);
        let got = tcu_dot4(ha, hb, acc);
        let mut want = acc;
        for i in 0..4 {
            want += ha[i].to_f32() * hb[i].to_f32();
        }
        prop_assert_eq!(got, want);
    }

    /// Packed lanes roundtrip through slices.
    #[test]
    fn half4_roundtrip(vals in prop::array::uniform4(-100.0f32..100.0)) {
        let h = vals.map(f16::from_f32);
        let v = Half4::from_slice(&h);
        prop_assert_eq!(v.as_slice(), &h[..]);
    }

    /// Comparisons agree with f32 comparisons of the rounded values.
    #[test]
    fn ordering_matches_f32(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (x, y) = (f16::from_f32(a), f16::from_f32(b));
        prop_assert_eq!(x.partial_cmp(&y), x.to_f32().partial_cmp(&y.to_f32()));
    }
}
