//! The DLMC `.smtx` text format.
//!
//! The real Deep Learning Matrix Collection distributes each sparse
//! matrix as a text file:
//!
//! ```text
//! <nrows>, <ncols>, <nnz>
//! <nrows + 1 row pointers, space separated>
//! <nnz column indices, space separated>
//! ```
//!
//! This module parses and writes that format, so the synthetic suite in
//! `vecsparse-dlmc` can be swapped for the real dataset byte-for-byte:
//! load an `.smtx`, apply the paper's Fig. 16 construction
//! ([`to_vector_sparse`]) and feed the kernels.

use crate::{Csr, Scalar, SparsityPattern, VectorSparse};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::fmt::Write as _;

/// A parsed `.smtx` structure (indices only — DLMC ships no values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Smtx {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Row pointers (`rows + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices (`nnz` entries).
    pub col_idx: Vec<u32>,
}

/// Parsing errors.
#[derive(Debug, PartialEq, Eq)]
pub enum SmtxError {
    /// The header line is missing or malformed.
    BadHeader,
    /// A numeric field failed to parse.
    BadNumber(String),
    /// Array lengths disagree with the header.
    LengthMismatch {
        /// What was being read.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// Row pointers are not monotone or indices are out of range.
    Inconsistent(&'static str),
}

impl std::fmt::Display for SmtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmtxError::BadHeader => write!(f, "malformed .smtx header"),
            SmtxError::BadNumber(s) => write!(f, "unparseable number {s:?}"),
            SmtxError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected {expected} entries, found {actual}"),
            SmtxError::Inconsistent(what) => write!(f, "inconsistent structure: {what}"),
        }
    }
}

impl std::error::Error for SmtxError {}

impl Smtx {
    /// Parse from the text format.
    ///
    /// # Errors
    /// Returns an [`SmtxError`] for malformed input.
    pub fn parse(text: &str) -> Result<Smtx, SmtxError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or(SmtxError::BadHeader)?;
        let fields: Vec<&str> = header
            .split([',', ' '])
            .filter(|s| !s.trim().is_empty())
            .collect();
        if fields.len() != 3 {
            return Err(SmtxError::BadHeader);
        }
        let parse = |s: &str| -> Result<usize, SmtxError> {
            s.trim()
                .parse()
                .map_err(|_| SmtxError::BadNumber(s.trim().to_string()))
        };
        let rows = parse(fields[0])?;
        let cols = parse(fields[1])?;
        let nnz = parse(fields[2])?;

        // Remaining numbers may be split across any number of lines.
        let mut numbers = lines.flat_map(|l| l.split_whitespace());
        let mut row_ptr = Vec::with_capacity(rows + 1);
        for _ in 0..=rows {
            let tok = numbers.next().ok_or(SmtxError::LengthMismatch {
                what: "row pointers",
                expected: rows + 1,
                actual: row_ptr.len(),
            })?;
            row_ptr.push(parse(tok)?);
        }
        let mut col_idx = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let tok = numbers.next().ok_or(SmtxError::LengthMismatch {
                what: "column indices",
                expected: nnz,
                actual: col_idx.len(),
            })?;
            col_idx.push(parse(tok)? as u32);
        }

        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SmtxError::Inconsistent("row pointers not monotone"));
        }
        if *row_ptr.last().unwrap() != nnz {
            return Err(SmtxError::Inconsistent("last row pointer != nnz"));
        }
        if col_idx.iter().any(|&c| c as usize >= cols) {
            return Err(SmtxError::Inconsistent("column index out of range"));
        }
        Ok(Smtx {
            rows,
            cols,
            row_ptr,
            col_idx,
        })
    }

    /// Serialise to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}, {}, {}", self.rows, self.cols, self.col_idx.len());
        let mut first = true;
        for p in &self.row_ptr {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{p}");
            first = false;
        }
        out.push('\n');
        first = true;
        for c in &self.col_idx {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{c}");
            first = false;
        }
        out.push('\n');
        out
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Build a CSR matrix with random values (DLMC ships structure only).
    pub fn to_csr<T: Scalar>(&self, seed: u64) -> Csr<T> {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = (0..self.nnz())
            .map(|_| T::from_f32(rng.gen_range(-16i32..=16) as f32 / 8.0))
            .collect();
        Csr::new(
            self.rows,
            self.cols,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            values,
        )
    }

    /// The paper's Fig. 16 benchmark construction: reuse `csrRowPtr` and
    /// `csrColInd` as *vector* pointers/indices and attach a random
    /// nonzero V-vector to each indexed position. Rows are interpreted as
    /// block rows, so the resulting matrix has `rows × v` scalar rows.
    pub fn to_vector_sparse<T: Scalar>(&self, v: usize, seed: u64) -> VectorSparse<T> {
        let pattern = SparsityPattern::new(
            self.rows * v,
            self.cols,
            v,
            self.row_ptr.clone(),
            self.col_idx.clone(),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let values = (0..pattern.nnz())
            .map(|_| T::from_f32(rng.gen_range(-16i32..=16) as f32 / 8.0))
            .collect();
        VectorSparse::new(pattern, values)
    }
}

/// Export a pattern's structure as `.smtx` (block rows become rows).
pub fn pattern_to_smtx(p: &SparsityPattern) -> Smtx {
    Smtx {
        rows: p.block_rows(),
        cols: p.cols(),
        row_ptr: p.row_ptr().to_vec(),
        col_idx: p.col_idx().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::Layout;
    use vecsparse_fp16::f16;

    const SAMPLE: &str = "3, 8, 6\n0 3 4 6\n0 2 6 3 1 6\n";

    #[test]
    fn parses_the_fig8_structure() {
        let s = Smtx::parse(SAMPLE).unwrap();
        assert_eq!((s.rows, s.cols, s.nnz()), (3, 8, 6));
        assert_eq!(s.row_ptr, vec![0, 3, 4, 6]);
        assert_eq!(s.col_idx, vec![0, 2, 6, 3, 1, 6]);
    }

    #[test]
    fn roundtrips_through_text() {
        let s = Smtx::parse(SAMPLE).unwrap();
        let again = Smtx::parse(&s.to_text()).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn accepts_multiline_arrays() {
        let wrapped = "3, 8, 6\n0 3\n4 6\n0 2 6\n3 1 6\n";
        assert_eq!(Smtx::parse(wrapped).unwrap(), Smtx::parse(SAMPLE).unwrap());
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(Smtx::parse(""), Err(SmtxError::BadHeader));
        assert_eq!(Smtx::parse("3, 8\n"), Err(SmtxError::BadHeader));
        assert!(matches!(
            Smtx::parse("3, 8, 6\n0 3 4\n"),
            Err(SmtxError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Smtx::parse("1, 2, 1\n0 2\n0 5\n"),
            Err(SmtxError::Inconsistent(_)) | Err(SmtxError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Smtx::parse("1, 8, 1\n0 1\n9\n"),
            Err(SmtxError::Inconsistent(_))
        ));
    }

    #[test]
    fn fig16_construction_matches_paper() {
        let s = Smtx::parse(SAMPLE).unwrap();
        let m = s.to_vector_sparse::<f16>(4, 7);
        // Same structure as the Fig. 8 worked example.
        assert_eq!(m.rows(), 12);
        assert_eq!(m.pattern().nnz_vectors(), 6);
        assert_eq!(m.pattern().col_idx(), &[0, 2, 6, 3, 1, 6]);
        // All vector values nonzero-capable and exactly representable.
        for &v in m.values() {
            assert_eq!(f16::from_f32(v.to_f32()), v);
        }
    }

    #[test]
    fn pattern_export_roundtrip() {
        let p = gen::random_pattern(64, 128, 4, 0.8, 9);
        let s = pattern_to_smtx(&p);
        let again = Smtx::parse(&s.to_text()).unwrap();
        let back = again.to_vector_sparse::<f16>(4, 10);
        assert_eq!(back.pattern().row_ptr(), p.row_ptr());
        assert_eq!(back.pattern().col_idx(), p.col_idx());
    }

    #[test]
    fn csr_from_smtx_is_consistent() {
        let s = Smtx::parse(SAMPLE).unwrap();
        let c = s.to_csr::<f32>(11);
        assert_eq!(c.nnz(), 6);
        assert_eq!(c.to_dense(Layout::RowMajor).rows(), 3);
        assert!((s.sparsity() - c.sparsity()).abs() < 1e-12);
    }
}
