//! Random structure and value generators.
//!
//! These implement the benchmark-construction recipe of §7.1.1 / Fig. 16:
//! given a target shape and sparsity, draw a per-row nonzero budget, pick
//! distinct columns uniformly, and fill values from a small uniform range.
//! The Blocked-ELL builder mirrors the paper: block size = V, number of
//! blocks per row = round(N/V · (1 − S)), uniform distinct column indices.

use crate::{BlockedEll, Csr, DenseMatrix, Layout, Scalar, SparsityPattern, VectorSparse};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Uniform value in the range the DLMC-style benchmarks use. Values are
/// kept small and exactly representable pressure-free so that half-precision
/// kernels accumulate with bounded error in tests.
fn random_value<T: Scalar, R: Rng>(rng: &mut R) -> T {
    // Multiples of 1/8 in [-2, 2] are exact in binary16.
    let q: i32 = rng.gen_range(-16..=16);
    T::from_f32(q as f32 / 8.0)
}

/// A dense matrix with uniform random values.
pub fn random_dense<T: Scalar>(
    rows: usize,
    cols: usize,
    layout: Layout,
    seed: u64,
) -> DenseMatrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(rows, cols, layout, |_, _| random_value(&mut rng))
}

/// Draw `count` distinct sorted column indices out of `cols`.
fn distinct_columns<R: Rng>(rng: &mut R, cols: usize, count: usize) -> Vec<u32> {
    debug_assert!(count <= cols);
    // Partial Fisher-Yates over an index pool: O(cols) per row but rows are
    // generated once per benchmark, so clarity wins over a reservoir.
    let mut pool: Vec<u32> = (0..cols as u32).collect();
    for i in 0..count {
        let j = rng.gen_range(i..cols);
        pool.swap(i, j);
    }
    let mut picked = pool[..count].to_vec();
    picked.sort_unstable();
    picked
}

/// A random [`SparsityPattern`]: each block row receives
/// `round(cols * (1 - sparsity))` nonzero vectors at distinct uniform
/// columns, reproducing the construction in Fig. 16.
pub fn random_pattern(
    rows: usize,
    cols: usize,
    v: usize,
    sparsity: f64,
    seed: u64,
) -> SparsityPattern {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let block_rows = rows / v;
    let per_row = ((cols as f64) * (1.0 - sparsity)).round() as usize;
    let per_row = per_row.min(cols);
    let mut row_ptr = Vec::with_capacity(block_rows + 1);
    let mut col_idx = Vec::with_capacity(block_rows * per_row);
    row_ptr.push(0);
    for _ in 0..block_rows {
        col_idx.extend(distinct_columns(&mut rng, cols, per_row));
        row_ptr.push(col_idx.len());
    }
    SparsityPattern::new(rows, cols, v, row_ptr, col_idx)
}

/// Fill a pattern with random values.
pub fn fill_pattern<T: Scalar>(pattern: SparsityPattern, seed: u64) -> VectorSparse<T> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let values = (0..pattern.nnz()).map(|_| random_value(&mut rng)).collect();
    VectorSparse::new(pattern, values)
}

/// A random vector-sparse matrix (pattern + values in one call).
pub fn random_vector_sparse<T: Scalar>(
    rows: usize,
    cols: usize,
    v: usize,
    sparsity: f64,
    seed: u64,
) -> VectorSparse<T> {
    fill_pattern(random_pattern(rows, cols, v, sparsity, seed), seed)
}

/// A random fine-grained CSR matrix with `round(cols * (1-sparsity))`
/// nonzeros per row.
pub fn random_csr<T: Scalar>(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Csr<T> {
    random_vector_sparse::<T>(rows, cols, 1, sparsity, seed).to_csr()
}

/// A random Blocked-ELL matrix with the same sparsity and problem size as a
/// vector-sparse benchmark: block size `block`, `ceil(cols/block * (1-S))`
/// nonzero blocks per block row at distinct uniform block columns
/// (§7.1.1: "compute the number of blocks in each row with ⌈N/V × S⌉").
pub fn random_blocked_ell<T: Scalar>(
    rows: usize,
    cols: usize,
    block: usize,
    sparsity: f64,
    seed: u64,
) -> BlockedEll<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let block_rows = rows / block;
    let block_cols = cols / block;
    let bpr = (((cols / block) as f64) * (1.0 - sparsity)).ceil() as usize;
    let bpr = bpr.clamp(1, block_cols);
    let mut block_col_idx = Vec::with_capacity(block_rows * bpr);
    for _ in 0..block_rows {
        block_col_idx.extend(distinct_columns(&mut rng, block_cols, bpr));
    }
    let values = (0..block_rows * bpr * block * block)
        .map(|_| random_value(&mut rng))
        .collect();
    BlockedEll::new(rows, cols, block, bpr * block, block_col_idx, values)
}

/// A banded-plus-random attention mask pattern (§7.4): a dense diagonal
/// band of width `band` plus uniform random off-diagonal vectors until the
/// target sparsity is met. Rows and columns are the sequence length; `v` is
/// the vector constraint (8 in the paper).
pub fn banded_random_pattern(
    seq_len: usize,
    v: usize,
    band: usize,
    sparsity: f64,
    seed: u64,
) -> SparsityPattern {
    let mut rng = StdRng::seed_from_u64(seed);
    let block_rows = seq_len / v;
    let target_per_row = ((seq_len as f64) * (1.0 - sparsity)).round() as usize;
    let mut row_ptr = Vec::with_capacity(block_rows + 1);
    let mut col_idx: Vec<u32> = Vec::new();
    row_ptr.push(0);
    for br in 0..block_rows {
        let centre = br * v + v / 2;
        let lo = centre.saturating_sub(band / 2);
        let hi = (lo + band).min(seq_len);
        let lo = hi.saturating_sub(band);
        let mut cols: Vec<u32> = (lo as u32..hi as u32).collect();
        // Random off-band columns to reach the target density.
        while cols.len() < target_per_row {
            let c = rng.gen_range(0..seq_len as u32);
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        cols.sort_unstable();
        col_idx.extend(cols);
        row_ptr.push(col_idx.len());
    }
    SparsityPattern::new(seq_len, seq_len, v, row_ptr, col_idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_hits_target_sparsity() {
        let p = random_pattern(256, 256, 4, 0.9, 1);
        assert!((p.sparsity() - 0.9).abs() < 0.01, "got {}", p.sparsity());
        // Each block row has round(256 * 0.1) = 26 vectors.
        for br in 0..p.block_rows() {
            assert_eq!(p.block_row_range(br).len(), 26);
        }
    }

    #[test]
    fn pattern_columns_distinct_and_sorted() {
        let p = random_pattern(64, 128, 2, 0.8, 7);
        for br in 0..p.block_rows() {
            let cols = &p.col_idx()[p.block_row_range(br)];
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {br}: {cols:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_vector_sparse::<f32>(64, 64, 4, 0.7, 42);
        let b = random_vector_sparse::<f32>(64, 64, 4, 0.7, 42);
        assert_eq!(a, b);
        let c = random_vector_sparse::<f32>(64, 64, 4, 0.7, 43);
        assert_ne!(a.pattern(), c.pattern());
    }

    #[test]
    fn blocked_ell_matches_sparsity() {
        let e = random_blocked_ell::<f32>(128, 128, 4, 0.9, 3);
        // ceil(32 * 0.1) = 4 blocks per row.
        assert_eq!(e.blocks_per_row(), 4);
        assert_eq!(e.ell_cols(), 16);
        // All indices valid and distinct per row.
        for br in 0..e.block_rows() {
            let row: Vec<u32> = (0..e.blocks_per_row())
                .map(|j| e.block_col(br, j))
                .collect();
            let mut sorted = row.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), row.len());
        }
    }

    #[test]
    fn banded_mask_covers_diagonal() {
        let p = banded_random_pattern(512, 8, 64, 0.8, 9);
        // The band guarantees the diagonal entry of each block row's centre.
        for br in 0..p.block_rows() {
            let centre = br * 8 + 4;
            assert!(p.contains(br * 8, centre), "block row {br}");
        }
        assert!(p.sparsity() <= 0.81);
    }

    #[test]
    fn csr_generator_sparsity() {
        let c = random_csr::<f32>(128, 256, 0.95, 5);
        assert!((c.sparsity() - 0.95).abs() < 0.01);
    }

    #[test]
    fn half_values_exact_in_half() {
        use vecsparse_fp16::f16;
        let m = random_vector_sparse::<f16>(32, 32, 2, 0.5, 11);
        for &v in m.values() {
            let f = v.to_f32();
            assert_eq!(f16::from_f32(f), v);
            assert!((-2.0..=2.0).contains(&f));
        }
    }
}
