//! Blocked-ELL format (cuSPARSE's structured-sparse SpMM input).
//!
//! The matrix is divided into square `b × b` blocks. Every block row stores
//! the **same number** of blocks (`ell_cols / b` of them); rows with fewer
//! real nonzero blocks are padded with zero blocks. Column indices form a
//! dense `(rows / b) × (ell_cols / b)` array, and block values are stored
//! densely, row-major inside each block.

use crate::{DenseMatrix, Layout, Scalar};

/// A Blocked-ELL sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockedEll<T> {
    rows: usize,
    cols: usize,
    block: usize,
    /// Width of the ELL slab in scalar columns (`blocks_per_row * block`).
    ell_cols: usize,
    /// `(rows / block) * (ell_cols / block)` block-column indices, row-major.
    /// An index of `u32::MAX` marks an explicit padding block.
    block_col_idx: Vec<u32>,
    /// Block values: for block `(br, j)`, element `(r, c)` lives at
    /// `((br * blocks_per_row + j) * block + r) * block + c`.
    values: Vec<T>,
}

/// Sentinel marking an all-zero padding block.
pub const ELL_PAD: u32 = u32::MAX;

impl<T: Scalar> BlockedEll<T> {
    /// Build from raw arrays.
    ///
    /// # Panics
    /// Panics on inconsistent dimensions.
    pub fn new(
        rows: usize,
        cols: usize,
        block: usize,
        ell_cols: usize,
        block_col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        assert!(block >= 1);
        assert_eq!(rows % block, 0, "rows must be a multiple of block size");
        assert_eq!(cols % block, 0, "cols must be a multiple of block size");
        assert_eq!(ell_cols % block, 0, "ell_cols must be a multiple of block");
        let block_rows = rows / block;
        let bpr = ell_cols / block;
        assert_eq!(block_col_idx.len(), block_rows * bpr, "index array size");
        assert_eq!(
            values.len(),
            block_rows * bpr * block * block,
            "values size"
        );
        assert!(
            block_col_idx
                .iter()
                .all(|&c| c == ELL_PAD || (c as usize) < cols / block),
            "block column index out of range"
        );
        BlockedEll {
            rows,
            cols,
            block,
            ell_cols,
            block_col_idx,
            values,
        }
    }

    /// Matrix rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Square block edge length.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// ELL slab width in scalar columns.
    #[inline]
    pub fn ell_cols(&self) -> usize {
        self.ell_cols
    }

    /// Blocks stored per block row (including padding blocks).
    #[inline]
    pub fn blocks_per_row(&self) -> usize {
        self.ell_cols / self.block
    }

    /// Number of block rows.
    #[inline]
    pub fn block_rows(&self) -> usize {
        self.rows / self.block
    }

    /// Block-column index of slot `(br, j)` (`ELL_PAD` for padding).
    #[inline]
    pub fn block_col(&self, br: usize, j: usize) -> u32 {
        self.block_col_idx[br * self.blocks_per_row() + j]
    }

    /// The dense values of block slot `(br, j)`, row-major `block × block`.
    #[inline]
    pub fn block_values(&self, br: usize, j: usize) -> &[T] {
        let bb = self.block * self.block;
        let base = (br * self.blocks_per_row() + j) * bb;
        &self.values[base..base + bb]
    }

    /// The raw block-column index array.
    #[inline]
    pub fn block_col_idx(&self) -> &[u32] {
        &self.block_col_idx
    }

    /// The raw value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Stored scalar count including padding.
    #[inline]
    pub fn stored_len(&self) -> usize {
        self.values.len()
    }

    /// Materialise as a dense matrix (padding blocks contribute zeros).
    pub fn to_dense(&self, layout: Layout) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols, layout);
        for br in 0..self.block_rows() {
            for j in 0..self.blocks_per_row() {
                let bc = self.block_col(br, j);
                if bc == ELL_PAD {
                    continue;
                }
                let vals = self.block_values(br, j);
                for r in 0..self.block {
                    for c in 0..self.block {
                        let val = vals[r * self.block + c];
                        let gr = br * self.block + r;
                        let gc = bc as usize * self.block + c;
                        // Padding slots repeat column 0 in some generators;
                        // accumulate would be wrong, so last-writer-wins and
                        // generators guarantee distinct columns per row.
                        *out.get_mut(gr, gc) = val;
                    }
                }
            }
        }
        out
    }

    /// Total footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values.len() * T::bytes() + self.block_col_idx.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BlockedEll<f32> {
        // 4x4 matrix, block 2, one block per block row.
        // Block row 0 -> block col 1, block row 1 -> padding.
        let values = vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0];
        BlockedEll::new(4, 4, 2, 2, vec![1, ELL_PAD], values)
    }

    #[test]
    fn dense_materialisation() {
        let d = sample().to_dense(Layout::RowMajor);
        assert_eq!(d.get(0, 2), 1.0);
        assert_eq!(d.get(0, 3), 2.0);
        assert_eq!(d.get(1, 2), 3.0);
        assert_eq!(d.get(1, 3), 4.0);
        for c in 0..4 {
            assert_eq!(d.get(2, c), 0.0);
            assert_eq!(d.get(3, c), 0.0);
        }
    }

    #[test]
    fn geometry() {
        let e = sample();
        assert_eq!(e.block_rows(), 2);
        assert_eq!(e.blocks_per_row(), 1);
        assert_eq!(e.stored_len(), 8);
        assert_eq!(e.size_bytes(), 8 * 4 + 2 * 4);
    }

    #[test]
    #[should_panic(expected = "block column index out of range")]
    fn rejects_out_of_range_block() {
        let _ = BlockedEll::<f32>::new(2, 2, 2, 2, vec![3], vec![0.0; 4]);
    }
}
