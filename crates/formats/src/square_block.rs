//! Square-block constrained encodings — the §8 discussion cases.
//!
//! **Case 1 (training):** when a pruned weight matrix `W` is used both
//! forward (`W·X`) and backward (`Wᵀ·∂L/∂V`), the sparsity must survive
//! transposition. Constraining nonzeros to square `V × V` blocks aligned
//! in both dimensions lets *both* `W` and `Wᵀ` be stored in the
//! column-vector sparse encoding (each block contributes V column vectors
//! with one shared column index), so the same SpMM/SDDMM kernels serve
//! the whole training step.
//!
//! **Case 2 (global attention):** when entire rows are nonzero (a short,
//! wide matrix — the global tokens of a sparse transformer), the pattern
//! degenerates to a row list; the encoding stays valid and the kernels
//! simply see fully-dense block rows.

use crate::{Scalar, SparsityPattern, VectorSparse};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Generate a square-block pattern: nonzero `v × v` blocks at distinct
/// uniform block columns, `round(cols/v · (1-sparsity))` per block row.
/// The result is expressed as an ordinary [`SparsityPattern`] whose
/// column indices come in runs of `v` consecutive columns.
pub fn random_square_block_pattern(
    rows: usize,
    cols: usize,
    v: usize,
    sparsity: f64,
    seed: u64,
) -> SparsityPattern {
    assert_eq!(rows % v, 0, "rows must be a multiple of v");
    assert_eq!(cols % v, 0, "cols must be a multiple of v");
    let mut rng = StdRng::seed_from_u64(seed);
    let block_rows = rows / v;
    let block_cols = cols / v;
    let per_row = (((block_cols) as f64) * (1.0 - sparsity)).round() as usize;
    let per_row = per_row.clamp(1, block_cols);

    let mut row_ptr = Vec::with_capacity(block_rows + 1);
    let mut col_idx = Vec::new();
    row_ptr.push(0);
    for _ in 0..block_rows {
        // Distinct block columns, then expand each into v columns.
        let mut pool: Vec<u32> = (0..block_cols as u32).collect();
        for i in 0..per_row {
            let j = rng.gen_range(i..block_cols);
            pool.swap(i, j);
        }
        let mut picked = pool[..per_row].to_vec();
        picked.sort_unstable();
        for bc in picked {
            for e in 0..v as u32 {
                col_idx.push(bc * v as u32 + e);
            }
        }
        row_ptr.push(col_idx.len());
    }
    SparsityPattern::new(rows, cols, v, row_ptr, col_idx)
}

/// True if every block row's columns come in aligned runs of `v` — i.e.
/// the pattern satisfies the square-block constraint of §8 Case 1.
pub fn is_square_block(pattern: &SparsityPattern) -> bool {
    let v = pattern.v();
    for br in 0..pattern.block_rows() {
        let range = pattern.block_row_range(br);
        let cols = &pattern.col_idx()[range];
        if !cols.len().is_multiple_of(v) {
            return false;
        }
        for run in cols.chunks(v) {
            if !(run[0] as usize).is_multiple_of(v) {
                return false;
            }
            for (e, &c) in run.iter().enumerate() {
                if c != run[0] + e as u32 {
                    return false;
                }
            }
        }
    }
    true
}

/// Transpose a square-block vector-sparse matrix: the result is again in
/// column-vector sparse encoding with the same grain, containing exactly
/// the transposed values. This is the §8 Case 1 operation that lets the
/// backward pass (`Wᵀ ·`) reuse the forward kernels.
///
/// # Panics
/// Panics if the pattern does not satisfy [`is_square_block`].
pub fn transpose_square_block<T: Scalar>(m: &VectorSparse<T>) -> VectorSparse<T> {
    let p = m.pattern();
    assert!(
        is_square_block(p),
        "transpose_square_block needs a square-block pattern"
    );
    let v = p.v();
    let (rows, cols) = (p.rows(), p.cols());
    let t_block_rows = cols / v;

    // Pass 1: count blocks per transposed block row.
    let mut counts = vec![0usize; t_block_rows];
    for br in 0..p.block_rows() {
        for run in p.col_idx()[p.block_row_range(br)].chunks(v) {
            counts[run[0] as usize / v] += 1;
        }
    }
    let mut row_ptr = Vec::with_capacity(t_block_rows + 1);
    row_ptr.push(0usize);
    for c in &counts {
        row_ptr.push(row_ptr.last().unwrap() + c * v);
    }
    // Vector-level pointers (each block becomes v vectors).
    let total_vectors = row_ptr[t_block_rows];
    let mut col_idx = vec![0u32; total_vectors];
    let mut values = vec![T::ZERO; total_vectors * v];
    let mut cursor: Vec<usize> = row_ptr[..t_block_rows].to_vec();

    for br in 0..p.block_rows() {
        let range = p.block_row_range(br);
        for (chunk_i, run) in p.col_idx()[range.clone()].chunks(v).enumerate() {
            let tbr = run[0] as usize / v;
            let dst = cursor[tbr];
            cursor[tbr] += v;
            // The transposed block's v vectors sit at columns
            // br*v .. br*v+v; element (r, c) of the source block becomes
            // (c, r) of the destination block.
            for c in 0..v {
                col_idx[dst + c] = (br * v + c) as u32;
                for r in 0..v {
                    let src_vec = range.start + chunk_i * v + c_swap(c, r).0;
                    let src_elem = c_swap(c, r).1;
                    values[(dst + c) * v + r] = m.values()[src_vec * v + src_elem];
                }
            }
        }
    }

    // Rebuild block-row pointers in vector units.
    let pattern = SparsityPattern::new(cols, rows, v, row_ptr, col_idx);
    VectorSparse::new(pattern, values)
}

/// Source coordinates for destination `(vector c, element r)` of a
/// transposed block: source vector `r` (column r of the original block),
/// element `c`.
#[inline]
fn c_swap(c: usize, r: usize) -> (usize, usize) {
    (r, c)
}

/// A row-sparse pattern (§8 Case 2): `keep` whole block rows are fully
/// dense, the rest empty — the "global attention" structure.
pub fn row_sparse_pattern(rows: usize, cols: usize, v: usize, keep: &[usize]) -> SparsityPattern {
    assert_eq!(rows % v, 0);
    let block_rows = rows / v;
    let mut row_ptr = Vec::with_capacity(block_rows + 1);
    let mut col_idx = Vec::new();
    row_ptr.push(0);
    for br in 0..block_rows {
        if keep.contains(&br) {
            col_idx.extend(0..cols as u32);
        }
        row_ptr.push(col_idx.len());
    }
    SparsityPattern::new(rows, cols, v, row_ptr, col_idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::Layout;
    use vecsparse_fp16::f16;

    #[test]
    fn square_block_pattern_is_square() {
        let p = random_square_block_pattern(64, 128, 4, 0.8, 1);
        assert!(is_square_block(&p));
        assert!((p.sparsity() - 0.8).abs() < 0.05);
        // A generic pattern is generally not square-block.
        let q = gen::random_pattern(64, 128, 4, 0.8, 1);
        assert!(!is_square_block(&q));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let p = random_square_block_pattern(32, 48, 4, 0.7, 2);
        let m = gen::fill_pattern::<f16>(p, 3);
        let t = transpose_square_block(&m);
        assert!(is_square_block(t.pattern()));
        let want = m.to_dense(Layout::RowMajor).transpose();
        let got = t.to_dense(Layout::RowMajor);
        assert_eq!(got, want);
    }

    #[test]
    fn transpose_is_involution() {
        let p = random_square_block_pattern(24, 24, 8, 0.6, 4);
        let m = gen::fill_pattern::<f16>(p, 5);
        let tt = transpose_square_block(&transpose_square_block(&m));
        assert_eq!(tt.to_dense(Layout::RowMajor), m.to_dense(Layout::RowMajor));
    }

    #[test]
    fn transpose_works_for_v1() {
        // V = 1 degenerates to plain CSR transposition.
        let p = random_square_block_pattern(8, 16, 1, 0.5, 6);
        let m = gen::fill_pattern::<f32>(p, 7);
        let t = transpose_square_block(&m);
        assert_eq!(
            t.to_dense(Layout::RowMajor),
            m.to_dense(Layout::RowMajor).transpose()
        );
    }

    #[test]
    fn row_sparse_rows_are_dense() {
        let p = row_sparse_pattern(32, 64, 8, &[0, 3]);
        assert_eq!(p.block_row_range(0).len(), 64);
        assert_eq!(p.block_row_range(1).len(), 0);
        assert_eq!(p.block_row_range(3).len(), 64);
        for c in 0..64 {
            assert!(p.contains(0, c));
            assert!(!p.contains(8, c));
        }
    }
}
