//! Column-vector sparse encoding (CVSE) — the paper's §4 contribution.
//!
//! A sparse `M × K` matrix is viewed as `M / V` *block rows* of height `V`.
//! Every nonzero is a dense `V × 1` column vector inside one block row, and
//! the vectors are indexed exactly like CSR scalars: `row_ptr` over block
//! rows, one `col_idx` entry per nonzero vector, and values stored with the
//! `V` elements of each vector contiguous (so a vector is loadable with one
//! `half2`/`half4`/`float4` vector memory operation).
//!
//! `V = 1` degenerates to plain CSR, which is how the fine-grained baselines
//! are driven through the same code paths.

use crate::{Csr, DenseMatrix, Layout, Scalar};

/// The structure (indices only) of a column-vector sparse matrix.
///
/// SDDMM consumes the output structure as a binary mask, so the pattern is
/// its own type that [`VectorSparse`] embeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsityPattern {
    rows: usize,
    cols: usize,
    v: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
}

impl SparsityPattern {
    /// Build from raw CSR-of-vectors arrays.
    ///
    /// `rows` must be a multiple of `v`; `row_ptr` has `rows / v + 1`
    /// entries; every column index must be `< cols`.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent.
    pub fn new(rows: usize, cols: usize, v: usize, row_ptr: Vec<usize>, col_idx: Vec<u32>) -> Self {
        assert!(v >= 1, "vector length must be positive");
        assert_eq!(rows % v, 0, "rows must be a multiple of the vector length");
        assert_eq!(row_ptr.len(), rows / v + 1, "row_ptr length");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "nnz mismatch");
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        assert!(
            col_idx.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        SparsityPattern {
            rows,
            cols,
            v,
            row_ptr,
            col_idx,
        }
    }

    /// Matrix rows (scalar rows, not block rows).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column vector length V (the grain height).
    #[inline]
    pub fn v(&self) -> usize {
        self.v
    }

    /// Number of block rows (`rows / v`).
    #[inline]
    pub fn block_rows(&self) -> usize {
        self.rows / self.v
    }

    /// Number of nonzero column vectors.
    #[inline]
    pub fn nnz_vectors(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of nonzero scalars (`nnz_vectors * v`).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len() * self.v
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The nonzero-vector index range of block row `br`.
    #[inline]
    pub fn block_row_range(&self, br: usize) -> core::ops::Range<usize> {
        self.row_ptr[br]..self.row_ptr[br + 1]
    }

    /// Row pointer array over block rows.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (one entry per nonzero vector).
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// True if the scalar entry `(row, col)` falls inside a stored vector.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        let br = row / self.v;
        self.block_row_range(br)
            .any(|i| self.col_idx[i] as usize == col)
    }

    /// Index-array footprint in bytes (4-byte indices and row pointers).
    pub fn index_bytes(&self) -> usize {
        self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }
}

/// A sparse matrix in column-vector sparse encoding: a [`SparsityPattern`]
/// plus the packed vector values.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorSparse<T> {
    pattern: SparsityPattern,
    /// `pattern.nnz()` values; vector `i` occupies
    /// `values[i * v .. (i + 1) * v]`, element `e` of the vector being the
    /// scalar at row `br * v + e`.
    values: Vec<T>,
}

impl<T: Scalar> VectorSparse<T> {
    /// Pair a pattern with its values.
    ///
    /// # Panics
    /// Panics if `values.len() != pattern.nnz()`.
    pub fn new(pattern: SparsityPattern, values: Vec<T>) -> Self {
        assert_eq!(values.len(), pattern.nnz(), "values length");
        VectorSparse { pattern, values }
    }

    /// Extract nonzero vectors from a dense matrix: a `V × 1` vector is kept
    /// iff any of its elements is nonzero (zeros inside a kept vector are
    /// stored explicitly, exactly like the encoding prescribes).
    pub fn from_dense(dense: &DenseMatrix<T>, v: usize) -> Self {
        assert_eq!(dense.rows() % v, 0, "rows must be a multiple of v");
        let block_rows = dense.rows() / v;
        let mut row_ptr = Vec::with_capacity(block_rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for br in 0..block_rows {
            for c in 0..dense.cols() {
                let any = (0..v).any(|e| dense.get(br * v + e, c) != T::ZERO);
                if any {
                    col_idx.push(c as u32);
                    for e in 0..v {
                        values.push(dense.get(br * v + e, c));
                    }
                }
            }
            row_ptr.push(col_idx.len());
        }
        VectorSparse {
            pattern: SparsityPattern::new(dense.rows(), dense.cols(), v, row_ptr, col_idx),
            values,
        }
    }

    /// Materialise as a dense matrix.
    pub fn to_dense(&self, layout: Layout) -> DenseMatrix<T> {
        let p = &self.pattern;
        let mut out = DenseMatrix::zeros(p.rows, p.cols, layout);
        for br in 0..p.block_rows() {
            for i in p.block_row_range(br) {
                let c = p.col_idx[i] as usize;
                for e in 0..p.v {
                    *out.get_mut(br * p.v + e, c) = self.values[i * p.v + e];
                }
            }
        }
        out
    }

    /// Row-major `f32` image of the matrix, as staged into simulator
    /// memory. Only stored vectors are converted; untouched entries keep
    /// the `+0.0` a fresh image holds, which is exactly what converting a
    /// zero element yields, so this matches a full [`Self::to_dense`]
    /// image converted element by element.
    pub fn to_f32_image(&self) -> Vec<f32> {
        let p = &self.pattern;
        let mut img = vec![0.0f32; p.rows * p.cols];
        for br in 0..p.block_rows() {
            for i in p.block_row_range(br) {
                let c = p.col_idx[i] as usize;
                for e in 0..p.v {
                    img[(br * p.v + e) * p.cols + c] = self.values[i * p.v + e].to_f32();
                }
            }
        }
        img
    }

    /// The index structure.
    #[inline]
    pub fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    /// Packed values (vector-major).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable packed values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The `V` values of nonzero vector `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[T] {
        let v = self.pattern.v;
        &self.values[i * v..(i + 1) * v]
    }

    /// Matrix rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.pattern.rows
    }

    /// Matrix columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.pattern.cols
    }

    /// Column vector length V.
    #[inline]
    pub fn v(&self) -> usize {
        self.pattern.v
    }

    /// Convert values to another precision, sharing the structure.
    pub fn cast<U: Scalar>(&self) -> VectorSparse<U> {
        VectorSparse {
            pattern: self.pattern.clone(),
            values: self
                .values
                .iter()
                .map(|v| U::from_f32(v.to_f32()))
                .collect(),
        }
    }

    /// Total footprint in bytes (values + indices).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * T::bytes() + self.pattern.index_bytes()
    }

    /// Lower to scalar CSR (each vector element becomes one CSR nonzero).
    /// With `v == 1` this is a structural identity; it is how fine-grained
    /// kernels consume vector-sparse data in the tests.
    pub fn to_csr(&self) -> Csr<T> {
        let p = &self.pattern;
        let mut row_ptr = Vec::with_capacity(p.rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..p.rows {
            let br = r / p.v;
            let e = r % p.v;
            for i in p.block_row_range(br) {
                col_idx.push(p.col_idx[i]);
                values.push(self.values[i * p.v + e]);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::new(p.rows, p.cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Fig. 8: a 12-row matrix with V = 4, values
    /// 0..=11 over three block rows with column indices [0,2,6], [3], [1,6].
    fn fig8() -> VectorSparse<f32> {
        let pattern = SparsityPattern::new(12, 8, 4, vec![0, 3, 4, 6], vec![0, 2, 6, 3, 1, 6]);
        // The paper stores csrVal = [0..11] with one value per vector in its
        // illustration; here each vector is 4 elements, so expand: vector i
        // holds [4i, 4i+1, 4i+2, 4i+3] scaled down to the figure's ids.
        let values: Vec<f32> = (0..24).map(|i| i as f32).collect();
        VectorSparse::new(pattern, values)
    }

    #[test]
    fn fig8_structure() {
        let m = fig8();
        assert_eq!(m.pattern().block_rows(), 3);
        assert_eq!(m.pattern().nnz_vectors(), 6);
        assert_eq!(m.pattern().nnz(), 24);
        assert_eq!(m.pattern().row_ptr(), &[0, 3, 4, 6]);
        assert_eq!(m.pattern().col_idx(), &[0, 2, 6, 3, 1, 6]);
    }

    #[test]
    fn dense_roundtrip() {
        let m = fig8();
        let d = m.to_dense(Layout::RowMajor);
        // Vector 3 (block row 1, column 3) holds values 12..16 at rows 4..8.
        assert_eq!(d.get(4, 3), 12.0);
        assert_eq!(d.get(7, 3), 15.0);
        assert_eq!(d.get(4, 0), 0.0);
        let back = VectorSparse::from_dense(&d, 4);
        // from_dense drops the all-zero vector 0 (values 0,1,2,3 include a
        // leading zero but not all-zero), so structure must be preserved.
        assert_eq!(back.pattern(), m.pattern());
    }

    #[test]
    fn from_dense_keeps_vectors_with_any_nonzero() {
        let mut d = DenseMatrix::<f32>::zeros(4, 2, Layout::RowMajor);
        *d.get_mut(2, 1) = 5.0; // One nonzero inside the second half of col 1.
        let m = VectorSparse::from_dense(&d, 2);
        assert_eq!(m.pattern().nnz_vectors(), 1);
        assert_eq!(m.vector(0), &[5.0, 0.0]); // Explicit zero stored.
    }

    #[test]
    fn contains_matches_dense() {
        let m = fig8();
        let d = m.to_dense(Layout::RowMajor);
        for r in 0..12 {
            for c in 0..8 {
                // Pattern containment is at vector granularity: row 0 col 0
                // is inside vector 0 even though its value is 0.0.
                let in_pattern = m.pattern().contains(r, c);
                if d.get(r, c) != 0.0 {
                    assert!(in_pattern, "({r},{c})");
                }
            }
        }
    }

    #[test]
    fn v1_to_csr_is_identity_structure() {
        let d = DenseMatrix::<f32>::from_fn(4, 4, Layout::RowMajor, |r, c| {
            if (r + c) % 3 == 0 {
                (r * 4 + c) as f32 + 1.0
            } else {
                0.0
            }
        });
        let vs = VectorSparse::from_dense(&d, 1);
        let csr = vs.to_csr();
        assert_eq!(csr.to_dense(Layout::RowMajor), d);
        assert_eq!(csr.nnz(), vs.pattern().nnz());
    }

    #[test]
    fn size_accounting() {
        let m = fig8();
        assert_eq!(m.size_bytes(), 24 * 4 + 6 * 4 + 4 * 4);
        let h = m.cast::<vecsparse_fp16::f16>();
        assert_eq!(h.size_bytes(), 24 * 2 + 6 * 4 + 4 * 4);
    }
}
