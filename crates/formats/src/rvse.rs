//! Row-vector sparse encoding — the transposed view of §8.
//!
//! The paper's SpMM/SDDMM are defined on row-major matrices; for
//! column-major frameworks one mathematically transposes both sides
//! (`Dᵀ = Bᵀ Cᵀ`), and the transposed sparse operand `Cᵀ` becomes short
//! **row** vectors aligned horizontally, indexed in compressed sparse
//! column (CSC). This module provides that encoding with lossless
//! conversion to and from [`VectorSparse`], so a column-major caller can
//! keep its natural layout and still drive the same kernels.

use crate::{DenseMatrix, Layout, Scalar, SparsityPattern, VectorSparse};

/// A sparse matrix of `1 × V` row vectors aligned along the horizontal
/// dimension, indexed by compressed sparse column.
#[derive(Clone, Debug, PartialEq)]
pub struct RowVectorSparse<T> {
    rows: usize,
    cols: usize,
    v: usize,
    /// `cols / v + 1` pointers over block columns.
    col_ptr: Vec<usize>,
    /// Row index of each nonzero row vector.
    row_idx: Vec<u32>,
    /// Packed values: vector `i` occupies `values[i*v..(i+1)*v]`, element
    /// `e` being the scalar at column `bc * v + e`.
    values: Vec<T>,
}

impl<T: Scalar> RowVectorSparse<T> {
    /// Build from raw CSC-of-vectors arrays.
    ///
    /// # Panics
    /// Panics on inconsistent arrays.
    pub fn new(
        rows: usize,
        cols: usize,
        v: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        assert!(v >= 1);
        assert_eq!(cols % v, 0, "cols must be a multiple of v");
        assert_eq!(col_ptr.len(), cols / v + 1, "col_ptr length");
        assert_eq!(*col_ptr.last().unwrap(), row_idx.len(), "nnz mismatch");
        assert!(col_ptr.windows(2).all(|w| w[0] <= w[1]), "col_ptr monotone");
        assert!(row_idx.iter().all(|&r| (r as usize) < rows), "row index");
        assert_eq!(values.len(), row_idx.len() * v, "values length");
        RowVectorSparse {
            rows,
            cols,
            v,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// The mathematical transpose of a column-vector sparse matrix, with
    /// no re-encoding loss: each V×1 column vector becomes a 1×V row
    /// vector of the transpose.
    pub fn transpose_of(m: &VectorSparse<T>) -> RowVectorSparse<T> {
        let p = m.pattern();
        let v = p.v();
        // Transposed shape: (cols × rows). Block columns of the result
        // are the block rows of the source.
        let mut entries: Vec<(u32, usize, usize)> = Vec::with_capacity(p.nnz_vectors());
        for br in 0..p.block_rows() {
            for i in p.block_row_range(br) {
                // Source vector at (block row br, column c) → transposed
                // row vector at (row c, block column br).
                entries.push((p.col_idx()[i], br, i));
            }
        }
        // CSC order: by block column (= source block row) — already
        // grouped; within a block column sort by row (= source column).
        entries.sort_by_key(|&(row, bc, _)| (bc, row));
        let block_cols = p.rows() / v;
        let mut col_ptr = vec![0usize; block_cols + 1];
        let mut row_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len() * v);
        for &(row, bc, src) in &entries {
            col_ptr[bc + 1] += 1;
            row_idx.push(row);
            values.extend_from_slice(m.vector(src));
        }
        for i in 0..block_cols {
            col_ptr[i + 1] += col_ptr[i];
        }
        RowVectorSparse::new(p.cols(), p.rows(), v, col_ptr, row_idx, values)
    }

    /// Re-encode as a column-vector sparse matrix of the *same* matrix
    /// (possible because both encodings are coordinate-complete; vectors
    /// split into scalars, i.e. V becomes 1).
    pub fn to_vector_sparse(&self) -> VectorSparse<T> {
        let dense = self.to_dense(Layout::RowMajor);
        VectorSparse::from_dense(&dense, 1)
    }

    /// Materialise as a dense matrix.
    pub fn to_dense(&self, layout: Layout) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols, layout);
        for bc in 0..self.cols / self.v {
            for i in self.col_ptr[bc]..self.col_ptr[bc + 1] {
                let r = self.row_idx[i] as usize;
                for e in 0..self.v {
                    *out.get_mut(r, bc * self.v + e) = self.values[i * self.v + e];
                }
            }
        }
        out
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-vector length V.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Number of stored row vectors.
    pub fn nnz_vectors(&self) -> usize {
        self.row_idx.len()
    }

    /// The structure re-read as the [`SparsityPattern`] of **this
    /// matrix's transpose** (the CSC pointers become CSR pointers), for
    /// mask-style uses on the row-major side.
    pub fn transposed_pattern(&self) -> SparsityPattern {
        SparsityPattern::new(
            self.cols,
            self.rows,
            self.v,
            self.col_ptr.clone(),
            self.row_idx.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use vecsparse_fp16::f16;

    #[test]
    fn transpose_matches_dense() {
        let m = gen::random_vector_sparse::<f16>(24, 40, 4, 0.7, 1);
        let t = RowVectorSparse::transpose_of(&m);
        assert_eq!((t.rows(), t.cols()), (40, 24));
        assert_eq!(t.nnz_vectors(), m.pattern().nnz_vectors());
        let want = m.to_dense(Layout::RowMajor).transpose();
        assert_eq!(t.to_dense(Layout::RowMajor), want);
    }

    #[test]
    fn works_for_all_grains() {
        for v in [1usize, 2, 8] {
            let m = gen::random_vector_sparse::<f32>(16, 32, v, 0.5, v as u64);
            let t = RowVectorSparse::transpose_of(&m);
            assert_eq!(
                t.to_dense(Layout::RowMajor),
                m.to_dense(Layout::RowMajor).transpose(),
                "V={v}"
            );
        }
    }

    #[test]
    fn back_to_cvse_preserves_values() {
        let m = gen::random_vector_sparse::<f16>(16, 24, 2, 0.6, 3);
        let t = RowVectorSparse::transpose_of(&m);
        let back = t.to_vector_sparse();
        assert_eq!(
            back.to_dense(Layout::RowMajor),
            m.to_dense(Layout::RowMajor).transpose()
        );
    }

    #[test]
    fn transposed_pattern_is_consistent() {
        let m = gen::random_vector_sparse::<f16>(16, 24, 4, 0.5, 4);
        let t = RowVectorSparse::transpose_of(&m);
        let p = t.transposed_pattern();
        assert_eq!(p.nnz_vectors(), m.pattern().nnz_vectors());
        // tᵀ has the original matrix's shape.
        assert_eq!(p.rows(), m.rows());
        assert_eq!(p.cols(), m.cols());
    }

    #[test]
    #[should_panic(expected = "cols must be a multiple of v")]
    fn rejects_misaligned_cols() {
        let _ = RowVectorSparse::<f32>::new(4, 6, 4, vec![0, 0], vec![], vec![]);
    }
}
