//! Scalar reference implementations (ground truth for every kernel).
//!
//! All reference routines accumulate in `f32`, matching both the FPU
//! baseline (HMUL + FADD) and the TCU datapath (fp16 multiply, fp32
//! accumulate), and round once on the final store. Kernel outputs are
//! required to match these bit-for-bit when the summation order is
//! equivalent, or within a tight tolerance otherwise (the test-suites pick
//! operands for which all orders agree).

use crate::{Csr, DenseMatrix, Layout, Scalar, SparsityPattern, VectorSparse};

/// Dense GEMM: `C = A · B` with f32 accumulation, `C` row-major.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn gemm<T: Scalar>(a: &DenseMatrix<T>, b: &DenseMatrix<T>) -> DenseMatrix<T> {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = DenseMatrix::zeros(m, n, Layout::RowMajor);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a.get(i, l).to_f32() * b.get(l, j).to_f32();
            }
            *c.get_mut(i, j) = T::from_f32(acc);
        }
    }
    c
}

/// SpMM on CSR: `C = A_sparse · B`, `C` row-major.
pub fn spmm_csr<T: Scalar>(a: &Csr<T>, b: &DenseMatrix<T>) -> DenseMatrix<T> {
    assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
    let mut c = DenseMatrix::zeros(a.rows(), b.cols(), Layout::RowMajor);
    for r in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for i in a.row_range(r) {
                let col = a.col_idx()[i] as usize;
                acc += a.values()[i].to_f32() * b.get(col, j).to_f32();
            }
            *c.get_mut(r, j) = T::from_f32(acc);
        }
    }
    c
}

/// SpMM on column-vector sparse encoding: `C = A_vs · B`, `C` row-major.
///
/// Each nonzero vector of `A` at block row `br`, column `k` contributes
/// `vector[e] * B[k, :]` to output row `br * v + e`.
pub fn spmm_vs<T: Scalar>(a: &VectorSparse<T>, b: &DenseMatrix<T>) -> DenseMatrix<T> {
    assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
    let v = a.v();
    let n = b.cols();
    let mut c = DenseMatrix::zeros(a.rows(), n, Layout::RowMajor);
    let p = a.pattern();
    for br in 0..p.block_rows() {
        let mut acc = vec![0.0f32; v * n];
        for i in p.block_row_range(br) {
            let col = p.col_idx()[i] as usize;
            let vec = a.vector(i);
            for j in 0..n {
                let bval = b.get(col, j).to_f32();
                for e in 0..v {
                    acc[e * n + j] += vec[e].to_f32() * bval;
                }
            }
        }
        for e in 0..v {
            for j in 0..n {
                *c.get_mut(br * v + e, j) = T::from_f32(acc[e * n + j]);
            }
        }
    }
    c
}

/// SDDMM: `C = (A · B) ∘ D` where `D` is a binary mask given as a
/// [`SparsityPattern`]; only masked positions are computed. `A` is
/// `M × K` row-major, `B` is `K × N` (any layout), and the result carries
/// the mask's structure.
pub fn sddmm<T: Scalar>(
    a: &DenseMatrix<T>,
    b: &DenseMatrix<T>,
    mask: &SparsityPattern,
) -> VectorSparse<T> {
    assert_eq!(a.cols(), b.rows(), "SDDMM inner dimension mismatch");
    assert_eq!(a.rows(), mask.rows(), "mask rows");
    assert_eq!(b.cols(), mask.cols(), "mask cols");
    let v = mask.v();
    let k = a.cols();
    let mut values = vec![T::ZERO; mask.nnz()];
    for br in 0..mask.block_rows() {
        for i in mask.block_row_range(br) {
            let col = mask.col_idx()[i] as usize;
            for e in 0..v {
                let row = br * v + e;
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += a.get(row, l).to_f32() * b.get(l, col).to_f32();
                }
                values[i * v + e] = T::from_f32(acc);
            }
        }
    }
    VectorSparse::new(mask.clone(), values)
}

/// Row-wise softmax over a dense matrix (numerically stabilised), in f32.
pub fn softmax_dense<T: Scalar>(x: &DenseMatrix<T>) -> DenseMatrix<T> {
    let mut out = DenseMatrix::zeros(x.rows(), x.cols(), x.layout());
    for r in 0..x.rows() {
        let mut maxv = f32::NEG_INFINITY;
        for c in 0..x.cols() {
            maxv = maxv.max(x.get(r, c).to_f32());
        }
        let mut denom = 0.0f32;
        for c in 0..x.cols() {
            denom += (x.get(r, c).to_f32() - maxv).exp();
        }
        for c in 0..x.cols() {
            let e = (x.get(r, c).to_f32() - maxv).exp();
            *out.get_mut(r, c) = T::from_f32(e / denom);
        }
    }
    out
}

/// Row-wise softmax over the stored entries of a vector-sparse matrix:
/// absent entries are treated as `-inf` (masked attention semantics), so
/// each *scalar row's* stored values sum to one.
pub fn softmax_vs<T: Scalar>(x: &VectorSparse<T>) -> VectorSparse<T> {
    let p = x.pattern();
    let v = p.v();
    let mut values = vec![T::ZERO; p.nnz()];
    for br in 0..p.block_rows() {
        let range = p.block_row_range(br);
        for e in 0..v {
            let mut maxv = f32::NEG_INFINITY;
            for i in range.clone() {
                maxv = maxv.max(x.values()[i * v + e].to_f32());
            }
            if maxv == f32::NEG_INFINITY {
                continue; // Empty row: all outputs stay zero.
            }
            let mut denom = 0.0f32;
            for i in range.clone() {
                denom += (x.values()[i * v + e].to_f32() - maxv).exp();
            }
            for i in range.clone() {
                let ev = (x.values()[i * v + e].to_f32() - maxv).exp();
                values[i * v + e] = T::from_f32(ev / denom);
            }
        }
    }
    VectorSparse::new(p.clone(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn gemm_identity() {
        let i3 =
            DenseMatrix::<f32>::from_fn(
                3,
                3,
                Layout::RowMajor,
                |r, c| {
                    if r == c {
                        1.0
                    } else {
                        0.0
                    }
                },
            );
        let b = gen::random_dense::<f32>(3, 5, Layout::RowMajor, 1);
        assert_eq!(gemm(&i3, &b), b.to_layout(Layout::RowMajor));
    }

    #[test]
    fn spmm_vs_matches_dense_gemm() {
        let a = gen::random_vector_sparse::<f32>(16, 24, 4, 0.5, 2);
        let b = gen::random_dense::<f32>(24, 8, Layout::RowMajor, 3);
        let via_dense = gemm(&a.to_dense(Layout::RowMajor), &b);
        assert_eq!(spmm_vs(&a, &b), via_dense);
    }

    #[test]
    fn spmm_csr_matches_vs_lowering() {
        let a = gen::random_vector_sparse::<f32>(16, 24, 2, 0.7, 4);
        let b = gen::random_dense::<f32>(24, 8, Layout::RowMajor, 5);
        assert_eq!(spmm_csr(&a.to_csr(), &b), spmm_vs(&a, &b));
    }

    #[test]
    fn sddmm_matches_masked_gemm() {
        let a = gen::random_dense::<f32>(16, 12, Layout::RowMajor, 6);
        let b = gen::random_dense::<f32>(12, 20, Layout::ColMajor, 7);
        let mask = gen::random_pattern(16, 20, 4, 0.6, 8);
        let full = gemm(&a, &b);
        let got = sddmm(&a, &b, &mask);
        let got_dense = got.to_dense(Layout::RowMajor);
        for r in 0..16 {
            for c in 0..20 {
                if mask.contains(r, c) {
                    assert_eq!(got_dense.get(r, c), full.get(r, c), "({r},{c})");
                } else {
                    assert_eq!(got_dense.get(r, c), 0.0, "({r},{c})");
                }
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = gen::random_dense::<f32>(5, 9, Layout::RowMajor, 9);
        let s = softmax_dense(&x);
        for r in 0..5 {
            let sum: f32 = (0..9).map(|c| s.get(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sparse_softmax_rows_sum_to_one() {
        let x = gen::random_vector_sparse::<f32>(16, 32, 4, 0.75, 10);
        let s = softmax_vs(&x);
        let p = s.pattern();
        for br in 0..p.block_rows() {
            for e in 0..p.v() {
                let sum: f32 = p
                    .block_row_range(br)
                    .map(|i| s.values()[i * p.v() + e].to_f32())
                    .sum();
                assert!((sum - 1.0).abs() < 1e-5, "row {}", br * p.v() + e);
            }
        }
    }

    #[test]
    fn sparse_softmax_matches_masked_dense() {
        // With -inf masking, sparse softmax equals dense softmax computed on
        // a matrix whose masked-out entries are -inf.
        let x = gen::random_vector_sparse::<f32>(8, 16, 2, 0.5, 11);
        let p = x.pattern().clone();
        let mut dense =
            DenseMatrix::<f32>::from_fn(8, 16, Layout::RowMajor, |_, _| f32::NEG_INFINITY);
        let xd = x.to_dense(Layout::RowMajor);
        for r in 0..8 {
            for c in 0..16 {
                if p.contains(r, c) {
                    *dense.get_mut(r, c) = xd.get(r, c);
                }
            }
        }
        let sd = softmax_dense(&dense);
        let sv = softmax_vs(&x).to_dense(Layout::RowMajor);
        for r in 0..8 {
            for c in 0..16 {
                if p.contains(r, c) {
                    assert!((sd.get(r, c) - sv.get(r, c)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn half_precision_reference_consistency() {
        use vecsparse_fp16::f16;
        let a = gen::random_vector_sparse::<f16>(8, 16, 4, 0.5, 12);
        let b = gen::random_dense::<f16>(16, 8, Layout::RowMajor, 13);
        let c_half = spmm_vs(&a, &b);
        // Computing in f32 then rounding must agree (f32 accumulation).
        let c_single = spmm_vs(&a.cast::<f32>(), &b.cast::<f32>());
        for r in 0..8 {
            for j in 0..8 {
                assert_eq!(
                    c_half.get(r, j).to_f32(),
                    f16::from_f32(c_single.get(r, j)).to_f32()
                );
            }
        }
    }
}
