//! Matrix containers and reference operations for vecsparse.
//!
//! This crate provides every storage format that appears in the paper:
//!
//! * [`DenseMatrix`] — row- or column-major dense matrices over [`Scalar`]
//!   elements (`f32` for single precision, [`vecsparse_fp16::f16`] for half).
//! * [`Csr`] — classic compressed sparse row, used by the fine-grained
//!   baselines (Sputnik, cuSPARSE CSR SpMM).
//! * [`VectorSparse`] / [`SparsityPattern`] — the paper's
//!   **column-vector sparse encoding** (§4): CSR where every index addresses
//!   a nonzero V×1 column vector stored contiguously.
//! * [`BlockedEll`] — the Blocked-ELL format cuSPARSE's TCU SpMM consumes.
//!
//! plus structure generators ([`gen`]) and scalar **reference
//! implementations** (<code>reference</code>) of SpMM, SDDMM, and sparse softmax used
//! as ground truth by the kernel test-suites.

#![forbid(unsafe_code)]

mod blocked_ell;
mod csr;
mod cvse;
mod dense;
pub mod gen;
pub mod reference;
mod rvse;
mod scalar;
pub mod smtx;
pub mod square_block;

pub use blocked_ell::{BlockedEll, ELL_PAD};
pub use csr::Csr;
pub use cvse::{SparsityPattern, VectorSparse};
pub use dense::{DenseMatrix, Layout};
pub use rvse::RowVectorSparse;
pub use scalar::Scalar;
