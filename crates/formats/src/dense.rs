//! Dense matrix container with explicit storage layout.

use crate::Scalar;

/// Storage order of a [`DenseMatrix`].
///
/// Mainstream frameworks store tensors row-major; the paper therefore keeps
/// `B` and `C` row-major for SpMM, while the SDDMM RHS is column-major
/// (a transposed row-major matrix, as in self-attention's `QKᵀ`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Consecutive elements of a row are adjacent in memory.
    RowMajor,
    /// Consecutive elements of a column are adjacent in memory.
    ColMajor,
}

/// A dense `rows × cols` matrix over a [`Scalar`] element type.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize, layout: Layout) -> Self {
        DenseMatrix {
            rows,
            cols,
            layout,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Build from a closure evaluated at each `(row, col)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        layout: Layout,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Self {
        let mut m = DenseMatrix::zeros(rows, cols, layout);
        for r in 0..rows {
            for c in 0..cols {
                *m.get_mut(r, c) = f(r, c);
            }
        }
        m
    }

    /// Build from a row-major slice of `rows * cols` elements.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense data length mismatch");
        DenseMatrix {
            rows,
            cols,
            layout: Layout::RowMajor,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Linear index of `(row, col)` in [`Self::data`].
    #[inline]
    pub fn index_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        match self.layout {
            Layout::RowMajor => row * self.cols + col,
            Layout::ColMajor => col * self.rows + row,
        }
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        self.data[self.index_of(row, col)]
    }

    /// Mutable element at `(row, col)`.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        let idx = self.index_of(row, col);
        &mut self.data[idx]
    }

    /// The backing storage in layout order.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing storage in layout order.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Re-layout into the requested storage order (copying if it differs).
    pub fn to_layout(&self, layout: Layout) -> DenseMatrix<T> {
        if layout == self.layout {
            return self.clone();
        }
        DenseMatrix::from_fn(self.rows, self.cols, layout, |r, c| self.get(r, c))
    }

    /// Mathematical transpose (keeps the layout tag of `self`).
    pub fn transpose(&self) -> DenseMatrix<T> {
        DenseMatrix::from_fn(self.cols, self.rows, self.layout, |r, c| self.get(c, r))
    }

    /// Convert every element to another precision.
    pub fn cast<U: Scalar>(&self) -> DenseMatrix<U> {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            layout: self.layout,
            data: self.data.iter().map(|v| U::from_f32(v.to_f32())).collect(),
        }
    }

    /// Storage footprint in bytes (used by the peak-memory accounting).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * T::bytes()
    }

    /// Max absolute elementwise difference against another matrix, in f32.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix<T>) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut worst = 0.0f32;
        for r in 0..self.rows {
            for c in 0..self.cols {
                let d = (self.get(r, c).to_f32() - other.get(r, c).to_f32()).abs();
                worst = worst.max(d);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_row_major() {
        let m = DenseMatrix::<f32>::from_fn(2, 3, Layout::RowMajor, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn indexing_col_major() {
        let m = DenseMatrix::<f32>::from_fn(2, 3, Layout::ColMajor, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.data(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn relayout_preserves_values() {
        let m = DenseMatrix::<f32>::from_fn(3, 4, Layout::RowMajor, |r, c| (r * 4 + c) as f32);
        let cm = m.to_layout(Layout::ColMajor);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(m.get(r, c), cm.get(r, c));
            }
        }
    }

    #[test]
    fn transpose_swaps_shape() {
        let m = DenseMatrix::<f32>::from_fn(2, 3, Layout::RowMajor, |r, c| (r + c) as f32);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(2, 1), m.get(1, 2));
    }

    #[test]
    fn cast_to_half_and_back() {
        use vecsparse_fp16::f16;
        let m = DenseMatrix::<f32>::from_fn(2, 2, Layout::RowMajor, |r, c| (r + c) as f32 + 0.5);
        let h: DenseMatrix<f16> = m.cast();
        let back: DenseMatrix<f32> = h.cast();
        assert_eq!(m, back); // All values are exactly representable.
        assert_eq!(h.size_bytes(), m.size_bytes() / 2);
    }
}
