//! Compressed sparse row format (fine-grained sparsity).

use crate::{DenseMatrix, Layout, Scalar};

/// A CSR sparse matrix: the format consumed by the fine-grained baselines
/// (Sputnik with V = 1, cuSPARSE `cusparseSpMM` on CSR input).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes the nonzeros of row `r`.
    row_ptr: Vec<usize>,
    /// Column of each nonzero.
    col_idx: Vec<u32>,
    /// Value of each nonzero.
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Build from raw arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, non-monotone
    /// row pointers, or out-of-range column indices).
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "nnz mismatch");
        assert_eq!(col_idx.len(), values.len(), "values length");
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        assert!(
            col_idx.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Extract the nonzeros of a dense matrix (exact-zero test).
    pub fn from_dense(dense: &DenseMatrix<T>) -> Self {
        let mut row_ptr = Vec::with_capacity(dense.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..dense.rows() {
            for c in 0..dense.cols() {
                let v = dense.get(r, c);
                if v != T::ZERO {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            rows: dense.rows(),
            cols: dense.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materialise as a dense matrix.
    pub fn to_dense(&self, layout: Layout) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols, layout);
        for r in 0..self.rows {
            for i in self.row_range(r) {
                *out.get_mut(r, self.col_idx[i] as usize) = self.values[i];
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of zero entries.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The nonzero index range of row `r`.
    #[inline]
    pub fn row_range(&self, r: usize) -> core::ops::Range<usize> {
        self.row_ptr[r]..self.row_ptr[r + 1]
    }

    /// Row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable value array (structure is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Convert every value to another precision, keeping the structure.
    pub fn cast<U: Scalar>(&self) -> Csr<U> {
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self
                .values
                .iter()
                .map(|v| U::from_f32(v.to_f32()))
                .collect(),
        }
    }

    /// Storage footprint in bytes (values + indices + row pointers, with
    /// 4-byte indices as the kernels use).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * T::bytes() + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f32> {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 0 ]
        Csr::new(3, 3, vec![0, 2, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn roundtrip_dense() {
        let m = sample().to_dense(Layout::RowMajor);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        let back = Csr::from_dense(&m);
        assert_eq!(back, sample());
    }

    #[test]
    fn sparsity_and_nnz() {
        let c = sample();
        assert_eq!(c.nnz(), 3);
        assert!((c.sparsity() - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row_ptr must be monotone")]
    fn rejects_bad_row_ptr() {
        let _ = Csr::<f32>::new(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn rejects_bad_col_idx() {
        let _ = Csr::<f32>::new(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}
