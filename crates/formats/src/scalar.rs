//! Element trait abstracting over the two precisions the paper evaluates.

use core::fmt::Debug;
use vecsparse_fp16::f16;

/// A matrix element: either single precision (`f32`) or half precision
/// ([`f16`](vecsparse_fp16::f16)).
///
/// The trait carries just enough surface for the containers, generators and
/// reference implementations: lossless-ish conversion through `f32` (the
/// accumulation precision used by both the FPU and TCU datapaths) and the
/// operand width in bits, which the memory model uses to size transactions.
pub trait Scalar: Copy + Default + PartialEq + Debug + Send + Sync + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Storage width in bits (16 or 32).
    const BITS: u32;
    /// Short name used in reports ("half" / "single").
    const NAME: &'static str;

    /// Convert from the f32 accumulation domain (rounding if needed).
    fn from_f32(v: f32) -> Self;
    /// Widen to the f32 accumulation domain (exact).
    fn to_f32(self) -> f32;

    /// Storage width in bytes.
    #[inline]
    fn bytes() -> usize {
        (Self::BITS / 8) as usize
    }
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    const BITS: u32 = 32;
    const NAME: &'static str = "single";

    #[inline]
    fn from_f32(v: f32) -> f32 {
        v
    }

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
}

impl Scalar for f16 {
    const ZERO: f16 = f16::ZERO;
    const BITS: u32 = 16;
    const NAME: &'static str = "half";

    #[inline]
    fn from_f32(v: f32) -> f16 {
        f16::from_f32(v)
    }

    #[inline]
    fn to_f32(self) -> f32 {
        f16::to_f32(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(<f32 as Scalar>::bytes(), 4);
        assert_eq!(<f16 as Scalar>::bytes(), 2);
    }

    #[test]
    fn conversion_roundtrip() {
        assert_eq!(<f32 as Scalar>::from_f32(1.25).to_f32(), 1.25);
        assert_eq!(<f16 as Scalar>::from_f32(1.25).to_f32(), 1.25);
    }
}
