//! Server and tenant configuration builders.

use crate::error::ServeError;
use std::sync::Arc;
use vecsparse_gpu_sim::{Backend, GpuConfig, TimingMode};
use vecsparse_telemetry::TraceSink;

/// One tenant's contract with the server: identity, fair-share weight,
/// admission limit, and an optional latency SLO.
///
/// ```
/// use vecsparse_serve::TenantSpec;
/// let t = TenantSpec::new("interactive")
///     .weight(4)
///     .queue_depth(64)
///     .slo_p99_ms(50.0);
/// assert_eq!(t.name(), "interactive");
/// ```
#[derive(Clone, Debug)]
pub struct TenantSpec {
    pub(crate) name: String,
    pub(crate) weight: u32,
    pub(crate) queue_depth: Option<usize>,
    pub(crate) slo_p99_ms: Option<f64>,
}

impl TenantSpec {
    /// A tenant with weight 1, the server's default queue depth, and no
    /// SLO.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: 1,
            queue_depth: None,
            slo_p99_ms: None,
        }
    }

    /// Fair-share weight: a weight-`w` tenant may anchor up to `w` jobs
    /// per scheduler visit (must be ≥ 1; validated at `build`).
    pub fn weight(mut self, weight: u32) -> TenantSpec {
        self.weight = weight;
        self
    }

    /// Admission limit: submissions beyond this many queued jobs are
    /// rejected with [`ServeError::QueueFull`].
    pub fn queue_depth(mut self, depth: usize) -> TenantSpec {
        self.queue_depth = Some(depth);
        self
    }

    /// Target p99 latency in milliseconds, judged in the final
    /// [`ServeReport`](crate::ServeReport).
    pub fn slo_p99_ms(mut self, ms: f64) -> TenantSpec {
        self.slo_p99_ms = Some(ms);
        self
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Validated server configuration. Construct via [`ServeConfig::builder`].
#[derive(Clone)]
pub struct ServeConfig {
    pub(crate) workers: usize,
    pub(crate) shards: usize,
    pub(crate) max_batch: usize,
    pub(crate) default_queue_depth: usize,
    pub(crate) gpu: GpuConfig,
    pub(crate) timing: TimingMode,
    pub(crate) backend: Backend,
    pub(crate) memoization: bool,
    pub(crate) sink: Option<Arc<TraceSink>>,
    pub(crate) tenants: Vec<TenantSpec>,
}

impl ServeConfig {
    /// Start building a configuration. Defaults: 2 workers, 1 shard,
    /// max batch 8, queue depth 256 per tenant, default GPU, the
    /// [`Backend::Native`] fast path, no memoization, no telemetry, no
    /// tenants (at least one must be added before `build`).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// Worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Plan/memo cache shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Maximum jobs coalesced into one dispatched batch.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The registered tenants.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Scheduler timing mode the worker contexts simulate with.
    pub fn timing(&self) -> TimingMode {
        self.timing
    }

    /// Functional execution backend the worker contexts run with.
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

/// Builder for [`ServeConfig`] — the same consuming-chain style as
/// `Context::builder()`, one level up the stack.
///
/// ```
/// use vecsparse_serve::{ServeConfig, TenantSpec};
/// let cfg = ServeConfig::builder()
///     .workers(4)
///     .shards(2)
///     .max_batch(8)
///     .tenant(TenantSpec::new("a"))
///     .tenant(TenantSpec::new("b").weight(3))
///     .build();
/// assert_eq!(cfg.workers(), 4);
/// ```
#[derive(Default)]
pub struct ServeConfigBuilder {
    workers: Option<usize>,
    shards: Option<usize>,
    max_batch: Option<usize>,
    default_queue_depth: Option<usize>,
    gpu: Option<GpuConfig>,
    timing: TimingMode,
    backend: Option<Backend>,
    memoization: bool,
    sink: Option<Arc<TraceSink>>,
    tenants: Vec<TenantSpec>,
}

impl ServeConfigBuilder {
    /// Worker threads executing batches (default 2).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Number of plan/memo cache shards (default 1). Worker `w` serves
    /// shard `w % shards`, so `shards` must not exceed `workers`.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Maximum same-shape jobs coalesced into one dispatch (default 8).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = Some(n);
        self
    }

    /// Per-tenant admission limit when the tenant spec does not set its
    /// own (default 256).
    pub fn default_queue_depth(mut self, n: usize) -> Self {
        self.default_queue_depth = Some(n);
        self
    }

    /// Simulated device every worker context plans for (default: full
    /// V100 shape).
    pub fn gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Scheduler timing mode for every worker context (default
    /// [`TimingMode::Tick`]). [`TimingMode::Event`] serves bit-identical
    /// artifacts faster by jumping the simulated clock between issue
    /// events.
    pub fn timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }

    /// Functional execution backend for every worker context (default
    /// [`Backend::Native`]: serving runs are overwhelmingly functional,
    /// and the native CPU lowering produces bit-identical outputs without
    /// paying per-warp simulation — see DESIGN §2j). Pass
    /// [`Backend::Simulated`] to force honest warp-level simulation,
    /// e.g. for replay diffing.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Enable certified wave memoization on the worker contexts; each
    /// shard shares one wave-artifact cache.
    pub fn memoization(mut self) -> Self {
        self.memoization = true;
        self
    }

    /// Attach a telemetry sink: the server records one span per served
    /// request (`cat = "serve"`, tenant and batch size as args) plus
    /// queue-depth counters, and the worker contexts record their
    /// engine-level spans to the same sink.
    pub fn telemetry(mut self, sink: Arc<TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Register a tenant.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Validate and freeze the configuration.
    pub fn try_build(self) -> Result<ServeConfig, ServeError> {
        let workers = self.workers.unwrap_or(2);
        let shards = self.shards.unwrap_or(1);
        let max_batch = self.max_batch.unwrap_or(8);
        if workers == 0 {
            return Err(ServeError::InvalidConfig {
                what: "workers must be >= 1",
            });
        }
        if shards == 0 || shards > workers {
            return Err(ServeError::InvalidConfig {
                what: "shards must be in 1..=workers",
            });
        }
        if max_batch == 0 {
            return Err(ServeError::InvalidConfig {
                what: "max_batch must be >= 1",
            });
        }
        if self.tenants.is_empty() {
            return Err(ServeError::InvalidConfig {
                what: "at least one tenant must be registered",
            });
        }
        for t in &self.tenants {
            if t.weight == 0 {
                return Err(ServeError::InvalidConfig {
                    what: "tenant weight must be >= 1",
                });
            }
            if self.tenants.iter().filter(|o| o.name == t.name).count() > 1 {
                return Err(ServeError::InvalidConfig {
                    what: "tenant names must be unique",
                });
            }
        }
        Ok(ServeConfig {
            workers,
            shards,
            max_batch,
            default_queue_depth: self.default_queue_depth.unwrap_or(256),
            gpu: self.gpu.unwrap_or_default(),
            timing: self.timing,
            backend: self.backend.unwrap_or(Backend::Native),
            memoization: self.memoization,
            sink: self.sink,
            tenants: self.tenants,
        })
    }

    /// Infallible [`ServeConfigBuilder::try_build`].
    ///
    /// # Panics
    /// Panics with the [`ServeError`] message on an invalid
    /// configuration.
    pub fn build(self) -> ServeConfig {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_invariants() {
        let no_tenants = ServeConfig::builder().try_build();
        assert!(matches!(
            no_tenants,
            Err(ServeError::InvalidConfig { what }) if what.contains("tenant")
        ));
        let bad_shards = ServeConfig::builder()
            .workers(2)
            .shards(3)
            .tenant(TenantSpec::new("a"))
            .try_build();
        assert!(matches!(bad_shards, Err(ServeError::InvalidConfig { .. })));
        let dup = ServeConfig::builder()
            .tenant(TenantSpec::new("a"))
            .tenant(TenantSpec::new("a"))
            .try_build();
        assert!(matches!(dup, Err(ServeError::InvalidConfig { .. })));
        let zero_weight = ServeConfig::builder()
            .tenant(TenantSpec::new("a").weight(0))
            .try_build();
        assert!(matches!(zero_weight, Err(ServeError::InvalidConfig { .. })));
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::builder()
            .tenant(TenantSpec::new("only"))
            .build();
        assert_eq!(cfg.workers(), 2);
        assert_eq!(cfg.shards(), 1);
        assert_eq!(cfg.max_batch(), 8);
        assert_eq!(cfg.tenants().len(), 1);
        assert_eq!(cfg.backend(), Backend::Native, "serving defaults native");
    }
}
