//! Fleet-wide serving report: per-tenant SLO accounting plus the
//! absorbed engine/memo counters of every cache shard.

use vecsparse::engine::EngineStats;
use vecsparse_gpu_sim::MemoStats;

/// Nearest-rank percentile of an **ascending-sorted** latency sample,
/// in the sample's own unit (empty sample → 0).
pub(crate) fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One tenant's served-traffic accounting.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Configured fair-share weight.
    pub weight: u32,
    /// Jobs the tenant submitted (admitted + rejected).
    pub submitted: u64,
    /// Jobs served to completion.
    pub served: u64,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Median served latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile served latency, milliseconds.
    pub p99_ms: f64,
    /// Mean served latency, milliseconds.
    pub mean_ms: f64,
    /// Configured p99 SLO, if any.
    pub slo_p99_ms: Option<f64>,
    /// Sum of per-request latencies in microseconds — exactly the sum
    /// of the durations of this tenant's `"serve"` telemetry spans,
    /// which is what lets the tier-1 suite cross-check SLO accounting
    /// against the trace.
    pub total_latency_us: u64,
}

impl TenantReport {
    /// SLO verdict: `None` when no SLO is configured.
    pub fn slo_met(&self) -> Option<bool> {
        self.slo_p99_ms.map(|slo| self.p99_ms <= slo)
    }
}

/// Everything the server observed, snapshotted at shutdown by
/// [`Server::finish`](crate::Server::finish).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-tenant accounting, in registration order.
    pub tenants: Vec<TenantReport>,
    /// Engine counters absorbed across every cache shard's context.
    pub engine: EngineStats,
    /// Wave-memoizer counters absorbed across shards (None when
    /// memoization was disabled).
    pub memo: Option<MemoStats>,
    /// Batches dispatched.
    pub batches: u64,
    /// Jobs that rode along in a batch beyond its anchor job — the
    /// coalescing win.
    pub coalesced: u64,
    /// Deepest any shard's queue got.
    pub max_queue_depth: usize,
    /// Per-shard anchor-tenant history (tenant names in batch-selection
    /// order) — the fairness audit trail.
    pub dispatch_logs: Vec<Vec<String>>,
    /// Worker threads the server ran.
    pub workers: usize,
    /// Cache shards the server ran.
    pub shards: usize,
}

impl ServeReport {
    /// Jobs served across all tenants.
    pub fn served(&self) -> u64 {
        self.tenants.iter().map(|t| t.served).sum()
    }

    /// Fraction of `Auto` plan resolutions answered from the shard plan
    /// caches, 0..1.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.engine.cache_hits + self.engine.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.engine.cache_hits as f64 / total as f64
        }
    }

    /// Mean jobs per dispatched batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served() as f64 / self.batches as f64
        }
    }

    /// Longest gap, in dispatched batches, between two consecutive
    /// anchor selections of `tenant` on any shard — including the run-in
    /// before its first anchor. Small gaps mean the scheduler kept
    /// visiting the tenant; the fairness suite bounds this under skew.
    pub fn max_anchor_gap(&self, tenant: &str) -> usize {
        self.dispatch_logs
            .iter()
            .map(|log| {
                let mut max_gap = 0usize;
                let mut gap = 0usize;
                for anchor in log {
                    if anchor == tenant {
                        max_gap = max_gap.max(gap);
                        gap = 0;
                    } else {
                        gap += 1;
                    }
                }
                max_gap
            })
            .max()
            .unwrap_or(0)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== serve report");
        let _ = writeln!(
            out,
            "   workers {:>2}   shards {:>2}   batches {:>6}   mean batch {:>5.2}   coalesced {:>6}   max queue depth {:>5}",
            self.workers,
            self.shards,
            self.batches,
            self.mean_batch(),
            self.coalesced,
            self.max_queue_depth
        );
        let _ = writeln!(
            out,
            "   plan cache: {} hits / {} misses (hit ratio {:>5.1}%)   tuner profiles {}",
            self.engine.cache_hits,
            self.engine.cache_misses,
            100.0 * self.cache_hit_ratio(),
            self.engine.tuner_launches
        );
        if let Some(memo) = &self.memo {
            let _ = writeln!(
                out,
                "   wave memo: {} hit / {} miss (hit rate {:>5.1}%)",
                memo.wave_hits,
                memo.wave_misses,
                100.0 * memo.hit_rate()
            );
        }
        let _ = writeln!(
            out,
            "   {:<14} {:>3} {:>9} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8}",
            "tenant", "w", "submitted", "served", "rejected", "p50 ms", "p99 ms", "mean ms", "slo"
        );
        for t in &self.tenants {
            let slo = match t.slo_met() {
                Some(true) => "met",
                Some(false) => "MISSED",
                None => "-",
            };
            let _ = writeln!(
                out,
                "   {:<14} {:>3} {:>9} {:>7} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>8}",
                t.name,
                t.weight,
                t.submitted,
                t.served,
                t.rejected,
                t.p50_ms,
                t.p99_ms,
                t.mean_ms,
                slo
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 100);
        assert_eq!(percentile(&sorted, 10.0), 10);
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn anchor_gap_and_render() {
        let t = |name: &str| TenantReport {
            name: name.into(),
            weight: 1,
            submitted: 10,
            served: 10,
            rejected: 0,
            p50_ms: 1.0,
            p99_ms: 2.0,
            mean_ms: 1.1,
            slo_p99_ms: Some(1.5),
            total_latency_us: 11_000,
        };
        let report = ServeReport {
            tenants: vec![t("a"), t("b")],
            engine: EngineStats {
                tuner_launches: 2,
                cache_hits: 9,
                cache_misses: 1,
                plans_built: 10,
            },
            memo: None,
            batches: 5,
            coalesced: 15,
            max_queue_depth: 12,
            dispatch_logs: vec![vec![
                "a".into(),
                "a".into(),
                "b".into(),
                "a".into(),
                "a".into(),
            ]],
            workers: 2,
            shards: 1,
        };
        assert_eq!(report.served(), 20);
        assert_eq!(report.cache_hit_ratio(), 0.9);
        assert_eq!(report.mean_batch(), 4.0);
        assert_eq!(report.max_anchor_gap("b"), 2, "run-in of two a-batches");
        assert_eq!(report.max_anchor_gap("a"), 1);
        let r = report.render();
        assert!(r.contains("serve report"));
        assert!(r.contains("MISSED"), "p99 2.0 over slo 1.5");
    }
}
