//! Typed errors for the serving layer.

use std::fmt;
use vecsparse::engine::EngineError;

/// Everything that can go wrong between `Client::submit` and a served
/// result. Extends [`EngineError`]: any engine failure during dispatch
/// surfaces verbatim inside [`ServeError::Engine`], so callers keep the
/// engine's typed diagnostics through the serving layer.
///
/// Marked `#[non_exhaustive]` like `EngineError`: keep a wildcard arm.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The engine rejected or failed the job (malformed operands,
    /// dimension mismatches, internal invariants — see [`EngineError`]).
    Engine(EngineError),
    /// The submitting tenant is not registered in the [`ServeConfig`].
    ///
    /// [`ServeConfig`]: crate::ServeConfig
    UnknownTenant {
        /// The unregistered tenant name.
        tenant: String,
    },
    /// Admission control rejected the job: the tenant's queue is at its
    /// configured depth limit (backpressure — retry later).
    QueueFull {
        /// The tenant whose queue is full.
        tenant: String,
        /// Jobs currently queued for the tenant.
        depth: usize,
        /// The tenant's configured depth limit.
        limit: usize,
    },
    /// The server has shut down; no further submissions are accepted
    /// (jobs already queued at shutdown still drain and complete).
    Closed,
    /// A [`ServeConfig`] builder invariant was violated.
    ///
    /// [`ServeConfig`]: crate::ServeConfig
    InvalidConfig {
        /// Which invariant.
        what: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "engine error while serving: {e}"),
            ServeError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant: {tenant:?} is not registered")
            }
            ServeError::QueueFull {
                tenant,
                depth,
                limit,
            } => write!(
                f,
                "admission rejected: tenant {tenant:?} queue full ({depth}/{limit})"
            ),
            ServeError::Closed => write!(f, "server closed: submissions are no longer accepted"),
            ServeError::InvalidConfig { what } => write!(f, "invalid serve config: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = ServeError::QueueFull {
            tenant: "bulk".into(),
            depth: 64,
            limit: 64,
        };
        assert!(e.to_string().contains("bulk"));
        assert!(e.to_string().contains("64/64"));
        let e: ServeError = EngineError::EmptyBatch.into();
        assert!(e.to_string().contains("empty batch"));
        // The engine error is reachable through the std error chain.
        let src = std::error::Error::source(&e).expect("source");
        assert!(src.to_string().contains("empty batch"));
    }
}
