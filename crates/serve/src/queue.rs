//! The sharded admission queue and its weighted-round-robin batcher.
//!
//! One [`ShardQueue`] per cache shard. Inside a shard every tenant has
//! its own FIFO; batch selection walks the tenants in round-robin
//! order, so each tenant with queued work anchors at least one batch
//! per rotation — the starvation-freedom invariant the tier-1 fairness
//! test pins down. A weight-`w` tenant may anchor up to `w` jobs per
//! visit, and remaining batch capacity is filled with *same-key* jobs
//! from the other tenants ("free riders": coalescing across tenants is
//! free capacity, so it never charges the anchor rotation).

use crate::error::ServeError;
use crate::job::{CoalesceKey, JobRequest, JobSlot};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// A queued job with everything its eventual completion needs.
pub(crate) struct Pending {
    pub req: JobRequest,
    pub slot: Arc<JobSlot>,
    pub tenant: usize,
    pub enqueued_us: u64,
}

/// A dispatchable batch: jobs sharing one [`CoalesceKey`], anchored by
/// the tenant round-robin selected for fairness.
pub(crate) struct Batch {
    pub jobs: Vec<Pending>,
    pub anchor: usize,
}

struct ShardState {
    queues: Vec<VecDeque<Pending>>,
    cursor: usize,
    depth: usize,
    closed: bool,
    /// Anchor tenant of every batch handed out, in selection order —
    /// the fairness audit trail surfaced in the report.
    dispatch_log: Vec<usize>,
    max_depth: usize,
}

/// One shard's admission queue (see module docs).
pub(crate) struct ShardQueue {
    state: Mutex<ShardState>,
    cv: Condvar,
    weights: Vec<u32>,
    limits: Vec<usize>,
    max_batch: usize,
}

impl ShardQueue {
    pub(crate) fn new(weights: Vec<u32>, limits: Vec<usize>, max_batch: usize) -> ShardQueue {
        let tenants = weights.len();
        ShardQueue {
            state: Mutex::new(ShardState {
                queues: (0..tenants).map(|_| VecDeque::new()).collect(),
                cursor: 0,
                depth: 0,
                closed: false,
                dispatch_log: Vec::new(),
                max_depth: 0,
            }),
            cv: Condvar::new(),
            weights,
            limits,
            max_batch,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admit a job, or reject it with backpressure. `tenant_name` is
    /// only cloned into the error on rejection.
    pub(crate) fn push(&self, job: Pending, tenant_name: &str) -> Result<(), ServeError> {
        let tenant = job.tenant;
        let mut s = self.lock();
        if s.closed {
            return Err(ServeError::Closed);
        }
        let depth = s.queues[tenant].len();
        if depth >= self.limits[tenant] {
            return Err(ServeError::QueueFull {
                tenant: tenant_name.to_string(),
                depth,
                limit: self.limits[tenant],
            });
        }
        s.queues[tenant].push_back(job);
        s.depth += 1;
        s.max_depth = s.max_depth.max(s.depth);
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Current total depth (all tenants).
    pub(crate) fn depth(&self) -> usize {
        self.lock().depth
    }

    /// Deepest the shard ever got.
    pub(crate) fn max_depth(&self) -> usize {
        self.lock().max_depth
    }

    /// Anchor-tenant history.
    pub(crate) fn dispatch_log(&self) -> Vec<usize> {
        self.lock().dispatch_log.clone()
    }

    /// Stop admitting; queued jobs still drain through `next_batch`.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Block for the next batch; `None` once closed *and* drained —
    /// the worker's exit signal.
    pub(crate) fn next_batch(&self) -> Option<Batch> {
        let mut s = self.lock();
        loop {
            if s.depth == 0 {
                if s.closed {
                    return None;
                }
                s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            let tenants = s.queues.len();
            // Round-robin: the first tenant with queued work at or after
            // the cursor anchors this batch; the cursor then moves past
            // it, so every backlogged tenant anchors once per rotation.
            let anchor = (0..tenants)
                .map(|step| (s.cursor + step) % tenants)
                .find(|&t| !s.queues[t].is_empty())
                .expect("depth > 0 implies a nonempty tenant queue");
            s.cursor = (anchor + 1) % tenants;

            let head = s.queues[anchor].pop_front().expect("nonempty");
            let key = head.req.coalesce_key();
            let mut jobs = vec![head];
            // Anchor share: up to `weight` jobs total from the anchor's
            // own queue, batchability permitting.
            let share = (self.weights[anchor] as usize).min(self.max_batch);
            Self::extract(&mut s.queues[anchor], key, share - 1, &mut jobs);
            // Free riders: fill remaining capacity with same-key jobs
            // from the other tenants, in rotation order after the anchor.
            for step in 1..tenants {
                if jobs.len() >= self.max_batch {
                    break;
                }
                let t = (anchor + step) % tenants;
                let room = self.max_batch - jobs.len();
                Self::extract(&mut s.queues[t], key, room, &mut jobs);
            }
            s.depth -= jobs.len();
            s.dispatch_log.push(anchor);
            return Some(Batch { jobs, anchor });
        }
    }

    /// Move up to `room` jobs matching `key` from `queue` into `jobs`,
    /// preserving FIFO order among the matches.
    fn extract(
        queue: &mut VecDeque<Pending>,
        key: CoalesceKey,
        room: usize,
        jobs: &mut Vec<Pending>,
    ) {
        if room == 0 || queue.is_empty() {
            return;
        }
        let mut taken = 0;
        let mut i = 0;
        while i < queue.len() && taken < room {
            if queue[i].req.coalesce_key() == key {
                // Removal preserves the relative order of what remains.
                jobs.push(queue.remove(i).expect("index in range"));
                taken += 1;
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse::SpmmAlgo;
    use vecsparse_formats::{gen, Layout, VectorSparse};
    use vecsparse_fp16::f16;

    fn job(a: &Arc<VectorSparse<f16>>, tenant: usize, seed: u64) -> Pending {
        Pending {
            req: JobRequest::Spmm {
                a: Arc::clone(a),
                b: gen::random_dense::<f16>(32, 16, Layout::RowMajor, seed),
                algo: SpmmAlgo::Octet,
            },
            slot: Arc::new(JobSlot::default()),
            tenant,
            enqueued_us: 0,
        }
    }

    #[test]
    fn round_robin_anchors_every_backlogged_tenant() {
        let a = Arc::new(gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1));
        // Coalescing off (max_batch 1) to observe pure rotation.
        let q = ShardQueue::new(vec![1, 1], vec![100, 100], 1);
        for i in 0..4 {
            q.push(job(&a, 0, i), "heavy").unwrap();
        }
        q.push(job(&a, 1, 10), "light").unwrap();
        q.push(job(&a, 1, 11), "light").unwrap();
        let anchors: Vec<usize> = (0..6).map(|_| q.next_batch().unwrap().anchor).collect();
        assert_eq!(anchors, vec![0, 1, 0, 1, 0, 0]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn coalescing_fills_capacity_across_tenants() {
        let a = Arc::new(gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1));
        let q = ShardQueue::new(vec![2, 1], vec![100, 100], 8);
        for i in 0..3 {
            q.push(job(&a, 0, i), "x").unwrap();
        }
        q.push(job(&a, 1, 10), "y").unwrap();
        let batch = q.next_batch().unwrap();
        // Anchor takes its weight-2 share from its own queue, then
        // tenant 1's same-key job rides along as free capacity.
        assert_eq!(batch.anchor, 0);
        assert_eq!(batch.jobs.len(), 3, "weight share 2 + 1 free rider");
        assert_eq!(q.depth(), 1, "anchor's third job waits its next turn");
    }

    #[test]
    fn admission_rejects_at_limit_and_close_stops_intake() {
        let a = Arc::new(gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1));
        let q = ShardQueue::new(vec![1], vec![2], 4);
        q.push(job(&a, 0, 0), "t").unwrap();
        q.push(job(&a, 0, 1), "t").unwrap();
        let rejected = q.push(job(&a, 0, 2), "t");
        assert!(matches!(
            rejected,
            Err(ServeError::QueueFull {
                depth: 2,
                limit: 2,
                ..
            })
        ));
        q.close();
        assert!(matches!(
            q.push(job(&a, 0, 3), "t"),
            Err(ServeError::Closed)
        ));
        // Queued work still drains, then the queue reports exhaustion.
        assert!(q.next_batch().is_some());
        assert!(q.next_batch().is_some());
        assert!(q.next_batch().is_none());
    }
}
