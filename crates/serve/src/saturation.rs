//! Deterministic open-loop saturation model: offered load vs latency.
//!
//! Wall-clock measurement of a saturation sweep is noisy and
//! machine-dependent; the acceptance criterion here is a *monotone*
//! offered-load-vs-p99 curve with a measurable knee. So the sweep is a
//! virtual-time queueing model instead: Poisson arrivals served FCFS by
//! `k` servers whose service times come from the cycle-accurate
//! simulator (the timing oracle), not from host timers.
//!
//! Monotonicity is by construction, not luck: one set of unit-rate
//! exponential inter-arrival draws is shared by every offered-load
//! point and merely *scaled* by `1/λ`, and the service-time sequence is
//! assigned by request index. Raising λ therefore only moves every
//! arrival earlier on the same sample path, which can only lengthen
//! FCFS waits — the classic coupling argument — so p99 never decreases
//! as offered load grows, and the knee is where the wait term starts to
//! dominate the flat service-time floor.

use crate::stats::percentile;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One measured point of the saturation curve.
#[derive(Clone, Copy, Debug)]
pub struct SaturationPoint {
    /// Offered load, requests per second.
    pub offered_rps: f64,
    /// Requests simulated at this load.
    pub served: usize,
    /// Median latency (queue wait + service), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Busy fraction of the server pool over the makespan, 0..1.
    pub utilization: f64,
}

/// Convert a simulated kernel cycle count to milliseconds of service
/// time at a device clock of `ghz` GHz (the simulator reports cycles;
/// the queueing model needs time).
pub fn service_time_ms(cycles: f64, ghz: f64) -> f64 {
    cycles / (ghz * 1e6)
}

/// Simulate the open-loop sweep: for every offered load in
/// `offered_rps`, push `requests` Poisson arrivals through a `servers`-
/// wide FCFS pool whose service times cycle through `service_ms` by
/// request index. Deterministic in `seed`; see the module docs for why
/// the resulting p99 column is monotone in offered load.
///
/// # Panics
/// Panics if `service_ms` is empty, `servers` is 0, or `requests` is 0.
pub fn saturation_curve(
    service_ms: &[f64],
    offered_rps: &[f64],
    requests: usize,
    servers: usize,
    seed: u64,
) -> Vec<SaturationPoint> {
    assert!(!service_ms.is_empty(), "need at least one service time");
    assert!(servers > 0, "need at least one server");
    assert!(requests > 0, "need at least one request");
    // One shared unit-rate exponential sample path (inverse-CDF draws).
    let mut rng = StdRng::seed_from_u64(seed);
    let unit_gaps: Vec<f64> = (0..requests)
        .map(|_| {
            let u: f64 = rng.gen::<f64>();
            -(1.0 - u).ln()
        })
        .collect();
    offered_rps
        .iter()
        .map(|&rps| {
            let mean_gap_ms = 1000.0 / rps;
            let mut free = vec![0.0f64; servers];
            let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
            let mut arrival = 0.0f64;
            let mut busy_ms = 0.0f64;
            let mut makespan = 0.0f64;
            for (i, gap) in unit_gaps.iter().enumerate() {
                arrival += gap * mean_gap_ms;
                let svc = service_ms[i % service_ms.len()];
                // Greedy FCFS: the earliest-free server takes the job.
                let j = free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .expect("servers > 0");
                let start = arrival.max(free[j]);
                let finish = start + svc;
                free[j] = finish;
                busy_ms += svc;
                makespan = makespan.max(finish);
                latencies_us.push(((finish - arrival) * 1000.0).round() as u64);
            }
            latencies_us.sort_unstable();
            let mean_us = latencies_us.iter().sum::<u64>() as f64 / latencies_us.len() as f64;
            SaturationPoint {
                offered_rps: rps,
                served: requests,
                p50_ms: percentile(&latencies_us, 50.0) as f64 / 1000.0,
                p99_ms: percentile(&latencies_us, 99.0) as f64 / 1000.0,
                mean_ms: mean_us / 1000.0,
                utilization: (busy_ms / (servers as f64 * makespan)).min(1.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads() -> Vec<f64> {
        // 4 servers at mean 1.25 ms service saturate near 3200 rps;
        // sweep from 1/8th of capacity to 2x over it.
        (1..=16).map(|i| 400.0 * i as f64).collect()
    }

    #[test]
    fn p99_is_monotone_in_offered_load() {
        let svc = [1.0, 2.0, 0.5, 1.5];
        let curve = saturation_curve(&svc, &loads(), 400, 4, 7);
        for pair in curve.windows(2) {
            assert!(
                pair[1].p99_ms >= pair[0].p99_ms,
                "p99 regressed: {} rps -> {} ms, {} rps -> {} ms",
                pair[0].offered_rps,
                pair[0].p99_ms,
                pair[1].offered_rps,
                pair[1].p99_ms
            );
        }
    }

    #[test]
    fn curve_has_a_measurable_knee() {
        let svc = [1.0, 2.0, 0.5, 1.5];
        let curve = saturation_curve(&svc, &loads(), 400, 4, 7);
        // Under light load latency sits on the service-time floor; the
        // tail of the sweep runs at 2x the pool's capacity, where the
        // wait term must have grown well clear of that floor.
        let floor = curve.first().unwrap().p99_ms;
        let tail = curve.last().unwrap().p99_ms;
        assert!(
            tail >= 2.0 * floor,
            "no knee: floor {floor} ms, tail {tail} ms"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let svc = [0.8, 1.2];
        let a = saturation_curve(&svc, &[100.0, 400.0], 200, 2, 3);
        let b = saturation_curve(&svc, &[100.0, 400.0], 200, 2, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.p99_ms, y.p99_ms);
            assert_eq!(x.mean_ms, y.mean_ms);
        }
        let c = saturation_curve(&svc, &[100.0, 400.0], 200, 2, 4);
        assert!(a.iter().zip(&c).any(|(x, y)| x.mean_ms != y.mean_ms));
    }

    #[test]
    fn utilization_approaches_one_past_saturation() {
        let svc = [1.0];
        let curve = saturation_curve(&svc, &[100.0, 10_000.0], 500, 2, 1);
        assert!(curve[0].utilization < 0.2);
        assert!(curve[1].utilization > 0.9);
    }

    #[test]
    fn cycles_convert_at_the_nominal_clock() {
        // 1.53e6 cycles at 1.53 GHz is exactly one millisecond.
        assert!((service_time_ms(1.53e6, 1.53) - 1.0).abs() < 1e-12);
    }
}
