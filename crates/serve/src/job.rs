//! Job descriptions, results, and the future-style completion handle.

use crate::error::ServeError;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use vecsparse::{SddmmAlgo, SpmmAlgo};
use vecsparse_formats::{DenseMatrix, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::sig;

/// One unit of work a tenant submits. The structural operand (the
/// sparse matrix / the mask) is `Arc`-shared — the model-weights
/// pattern: many requests against one resident operand — and operand
/// identity is what makes two jobs batchable into one plan.
#[derive(Clone)]
pub enum JobRequest {
    /// `C = A · B` with `A` column-vector sparse.
    Spmm {
        /// The resident sparse operand.
        a: Arc<VectorSparse<f16>>,
        /// The per-request dense RHS.
        b: DenseMatrix<f16>,
        /// Algorithm selector (`Auto` routes through the shard's
        /// memoized tuner).
        algo: SpmmAlgo,
    },
    /// `C = (A · B) ∘ mask`.
    Sddmm {
        /// The resident output mask.
        mask: Arc<SparsityPattern>,
        /// The per-request dense A (row-major).
        a: DenseMatrix<f16>,
        /// The per-request dense B (column-major).
        b: DenseMatrix<f16>,
        /// Algorithm selector.
        algo: SddmmAlgo,
    },
}

/// Batching key: two jobs coalesce into one dispatched batch iff they
/// can share one engine plan — same structural operand (by `Arc`
/// identity; queued jobs keep it alive, so pointers are stable), same
/// free dimension, same algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CoalesceKey {
    op: u8,
    operand: usize,
    dim: usize,
    algo: &'static str,
}

impl JobRequest {
    pub(crate) fn coalesce_key(&self) -> CoalesceKey {
        match self {
            JobRequest::Spmm { a, b, algo } => CoalesceKey {
                op: 0,
                operand: Arc::as_ptr(a) as usize,
                dim: b.cols(),
                algo: algo.label(),
            },
            JobRequest::Sddmm { mask, a, algo, .. } => CoalesceKey {
                op: 1,
                operand: Arc::as_ptr(mask) as usize,
                dim: a.cols(),
                algo: algo.label(),
            },
        }
    }

    /// Cache shard this job routes to: a hash of the *shape class*
    /// (operation, structural dimensions, V, sparsity bucket, free
    /// dimension), so repeated shapes land on the same shard's plan
    /// cache and wave memo regardless of which tenant sent them.
    pub(crate) fn shard_of(&self, shards: usize) -> usize {
        let (op, rows, cols, v, bucket, dim) = match self {
            JobRequest::Spmm { a, b, .. } => (
                0u32,
                a.rows(),
                a.cols(),
                a.v(),
                sig::sparsity_bucket(a.pattern().sparsity()),
                b.cols(),
            ),
            JobRequest::Sddmm { mask, a, .. } => (
                1u32,
                mask.rows(),
                mask.cols(),
                mask.v(),
                sig::sparsity_bucket(mask.sparsity()),
                a.cols(),
            ),
        };
        let h = sig::fnv1a_u32s(
            sig::FNV_OFFSET,
            [op, rows as u32, cols as u32, v as u32, bucket, dim as u32],
        );
        (h % shards as u64) as usize
    }
}

/// A served result.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// SpMM product.
    Spmm(DenseMatrix<f16>),
    /// SDDMM sampled product.
    Sddmm(VectorSparse<f16>),
}

impl JobOutput {
    /// The SpMM result, if this was an SpMM job.
    pub fn into_spmm(self) -> Option<DenseMatrix<f16>> {
        match self {
            JobOutput::Spmm(m) => Some(m),
            JobOutput::Sddmm(_) => None,
        }
    }

    /// The SDDMM result, if this was an SDDMM job.
    pub fn into_sddmm(self) -> Option<VectorSparse<f16>> {
        match self {
            JobOutput::Sddmm(m) => Some(m),
            JobOutput::Spmm(_) => None,
        }
    }
}

/// Completion slot shared between a [`JobHandle`] and the worker that
/// eventually fulfills it: a `Mutex<Option<Result>>` plus a `Condvar`
/// (the crate's no-tokio stand-in for a oneshot future).
#[derive(Default)]
pub(crate) struct JobSlot {
    state: Mutex<Option<Result<JobOutput, ServeError>>>,
    cv: Condvar,
}

impl JobSlot {
    pub(crate) fn fulfill(&self, result: Result<JobOutput, ServeError>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = Some(result);
        self.cv.notify_all();
    }
}

/// Future-style handle to a submitted job. Obtain via
/// [`Client::submit`](crate::Client::submit); redeem with
/// [`JobHandle::wait`] (blocking) or poll with [`JobHandle::try_take`].
pub struct JobHandle {
    pub(crate) slot: Arc<JobSlot>,
    pub(crate) id: u64,
    pub(crate) tenant: String,
}

impl JobHandle {
    /// Server-assigned job id (unique per server, submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant this job was submitted under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Non-blocking poll: the result if the job has completed, `None`
    /// while it is still queued or executing. Takes the result — a
    /// second call after `Some` returns `None`.
    pub fn try_take(&self) -> Option<Result<JobOutput, ServeError>> {
        self.slot
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Block until the job completes and return its result.
    pub fn wait(self) -> Result<JobOutput, ServeError> {
        let mut state = self
            .slot
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self
                .slot
                .cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, Layout};

    #[test]
    fn coalesce_key_is_operand_identity() {
        let a = Arc::new(gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1));
        let b1 = gen::random_dense::<f16>(32, 16, Layout::RowMajor, 2);
        let b2 = gen::random_dense::<f16>(32, 16, Layout::RowMajor, 3);
        let j1 = JobRequest::Spmm {
            a: Arc::clone(&a),
            b: b1.clone(),
            algo: SpmmAlgo::Auto,
        };
        let j2 = JobRequest::Spmm {
            a: Arc::clone(&a),
            b: b2,
            algo: SpmmAlgo::Auto,
        };
        assert_eq!(j1.coalesce_key(), j2.coalesce_key());
        // A structurally identical but distinct operand does not coalesce
        // (its plan would restage), and neither does another algorithm.
        let a2 = Arc::new(gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1));
        let j3 = JobRequest::Spmm {
            a: a2,
            b: b1.clone(),
            algo: SpmmAlgo::Auto,
        };
        assert_ne!(j1.coalesce_key(), j3.coalesce_key());
        let j4 = JobRequest::Spmm {
            a,
            b: b1,
            algo: SpmmAlgo::Octet,
        };
        assert_ne!(j1.coalesce_key(), j4.coalesce_key());
    }

    #[test]
    fn shard_routing_is_by_shape_class() {
        let a = Arc::new(gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1));
        let a_same_class = Arc::new(gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 9));
        let b = gen::random_dense::<f16>(32, 16, Layout::RowMajor, 2);
        let j1 = JobRequest::Spmm {
            a,
            b: b.clone(),
            algo: SpmmAlgo::Auto,
        };
        let j2 = JobRequest::Spmm {
            a: a_same_class,
            b,
            algo: SpmmAlgo::Auto,
        };
        for shards in [1, 2, 3, 7] {
            assert_eq!(j1.shard_of(shards), j2.shard_of(shards));
            assert!(j1.shard_of(shards) < shards);
        }
    }

    #[test]
    fn handle_polls_and_waits() {
        let slot = Arc::new(JobSlot::default());
        let handle = JobHandle {
            slot: Arc::clone(&slot),
            id: 7,
            tenant: "t".into(),
        };
        assert!(handle.try_take().is_none());
        slot.fulfill(Err(ServeError::Closed));
        assert!(matches!(handle.wait(), Err(ServeError::Closed)));
    }
}
