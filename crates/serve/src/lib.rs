//! # vecsparse-serve
//!
//! Async multi-tenant serving layer over the vecsparse engine: the
//! ROADMAP's "production-scale service" front-end, turning the paper's
//! kernels from a library call into measured serving capacity.
//!
//! * **Submission API** — [`ServeConfig`]/[`TenantSpec`] builders
//!   configure a [`Server`]; per-tenant [`Client`]s submit
//!   [`JobRequest`]s and get future-style [`JobHandle`]s back
//!   (`std`-only: a `Mutex` + `Condvar` oneshot, no async runtime).
//! * **Batching** — same-shape requests (same resident operand, free
//!   dimension, and algorithm) coalesce across tenants into one engine
//!   plan and one `run_batch` dispatch, riding the engine's `PlanState`
//!   fan-out and thread-pool shim.
//! * **Sharding** — requests route to a cache shard by shape class;
//!   each shard owns one engine `Context` (plan cache) and one shared
//!   `WaveMemo`, and worker `w` serves shard `w % shards`.
//! * **Fairness & admission** — weighted round-robin anchoring with
//!   per-tenant queue-depth limits ([`ServeError::QueueFull`] is
//!   backpressure); every backlogged tenant anchors a batch each
//!   rotation, so no tenant starves.
//! * **SLOs & telemetry** — per-tenant p50/p99/mean latency, queue
//!   depth, cache and memo hit rates in the final [`ServeReport`]; with
//!   a [`TraceSink`](vecsparse_telemetry::TraceSink) attached, every
//!   served request records a `"serve"` span whose duration is exactly
//!   the latency the report accounts.
//! * **Saturation** — [`saturation_curve`] turns simulated kernel
//!   cycle counts into a deterministic offered-load-vs-p99 curve
//!   (monotone by construction; see the module docs).
//!
//! ```
//! use std::sync::Arc;
//! use vecsparse::SpmmAlgo;
//! use vecsparse_formats::{gen, Layout};
//! use vecsparse_fp16::f16;
//! use vecsparse_gpu_sim::GpuConfig;
//! use vecsparse_serve::{JobRequest, ServeConfig, Server, TenantSpec};
//!
//! let server = Server::start(
//!     ServeConfig::builder()
//!         .workers(2)
//!         .max_batch(4)
//!         .gpu(GpuConfig::small())
//!         .tenant(TenantSpec::new("interactive").weight(4).slo_p99_ms(250.0))
//!         .tenant(TenantSpec::new("bulk"))
//!         .build(),
//! );
//! let weights = Arc::new(gen::random_vector_sparse::<f16>(32, 64, 4, 0.8, 1));
//! let client = server.client("interactive").unwrap();
//! let handles: Vec<_> = (0..4u64)
//!     .map(|i| {
//!         client
//!             .submit(JobRequest::Spmm {
//!                 a: Arc::clone(&weights),
//!                 b: gen::random_dense::<f16>(64, 32, Layout::RowMajor, 2 + i),
//!                 algo: SpmmAlgo::Auto,
//!             })
//!             .unwrap()
//!     })
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.wait().unwrap().into_spmm().unwrap().rows(), 32);
//! }
//! let report = server.finish();
//! assert_eq!(report.served(), 4);
//! assert!(report.tenants[0].slo_met().unwrap());
//! ```

#![forbid(unsafe_code)]

mod config;
mod error;
mod job;
mod queue;
mod saturation;
mod server;
mod stats;

pub use config::{ServeConfig, ServeConfigBuilder, TenantSpec};
pub use error::ServeError;
pub use job::{JobHandle, JobOutput, JobRequest};
pub use saturation::{saturation_curve, service_time_ms, SaturationPoint};
pub use server::{Client, Server};
pub use stats::{ServeReport, TenantReport};
pub use vecsparse_gpu_sim::Backend;
