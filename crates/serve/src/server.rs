//! The server: pooled worker threads over sharded engine contexts.
//!
//! Topology: requests route to a cache shard by shape class
//! ([`JobRequest::shard_of`]); each shard owns one [`ShardQueue`], one
//! shared engine [`Context`] (its plan cache *is* the shard) and one
//! shared [`WaveMemo`]; worker `w` of `W` serves shard `w % S`. A
//! dispatched batch becomes a single engine plan plus a
//! `run_batch` call, so the engine's existing `PlanState` fan-out (the
//! rayon thread-pool shim) parallelizes inside the batch while the
//! worker pool parallelizes across shards.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::job::{JobHandle, JobOutput, JobRequest, JobSlot};
use crate::queue::{Batch, Pending, ShardQueue};
use crate::stats::{percentile, ServeReport, TenantReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;
use vecsparse::engine::Context;
use vecsparse_gpu_sim::WaveMemo;
use vecsparse_telemetry::{TraceSink, Track};

/// Per-tenant mutable accounting, guarded by one stats mutex.
#[derive(Default)]
struct TenantStats {
    submitted: u64,
    served: u64,
    rejected: u64,
    latencies_us: Vec<u64>,
}

struct StatsInner {
    tenants: Vec<TenantStats>,
    batches: u64,
    coalesced: u64,
}

/// State shared by the server, its clients, and its workers.
struct Shared {
    config: ServeConfig,
    tenant_index: HashMap<String, usize>, // lint: hash-ok — keyed lookup only, never iterated
    queues: Vec<Arc<ShardQueue>>,
    contexts: Vec<Arc<Context>>,
    stats: Mutex<StatsInner>,
    sink: Arc<TraceSink>,
    /// Telemetry pid of the serve timeline (tid `s + 1` is shard `s`).
    serve_pid: u32,
    epoch: Instant,
    next_id: AtomicU64,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn stats_lock(&self) -> std::sync::MutexGuard<'_, StatsInner> {
        self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running multi-tenant serving instance. Start with
/// [`Server::start`], submit through per-tenant [`Client`]s, and redeem
/// the final [`ServeReport`] with [`Server::finish`].
///
/// ```
/// use std::sync::Arc;
/// use vecsparse_serve::{JobRequest, ServeConfig, Server, TenantSpec};
/// use vecsparse::SpmmAlgo;
/// use vecsparse_formats::{gen, Layout};
/// use vecsparse_fp16::f16;
/// use vecsparse_gpu_sim::GpuConfig;
///
/// let server = Server::start(
///     ServeConfig::builder()
///         .workers(2)
///         .gpu(GpuConfig::small())
///         .tenant(TenantSpec::new("demo"))
///         .build(),
/// );
/// let client = server.client("demo").unwrap();
/// let a = Arc::new(gen::random_vector_sparse::<f16>(32, 64, 4, 0.8, 1));
/// let b = gen::random_dense::<f16>(64, 32, Layout::RowMajor, 2);
/// let handle = client
///     .submit(JobRequest::Spmm { a, b, algo: SpmmAlgo::Auto })
///     .unwrap();
/// let out = handle.wait().unwrap().into_spmm().unwrap();
/// assert_eq!(out.rows(), 32);
/// let report = server.finish();
/// assert_eq!(report.served(), 1);
/// ```
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// A tenant-bound submission handle (cheap to clone; one per simulated
/// tenant). Obtained from [`Server::client`].
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    tenant: usize,
}

impl Server {
    /// Spin up the worker pool described by `config`.
    pub fn start(config: ServeConfig) -> Server {
        let tenants = config.tenants.len();
        let weights: Vec<u32> = config.tenants.iter().map(|t| t.weight).collect();
        let limits: Vec<usize> = config
            .tenants
            .iter()
            .map(|t| t.queue_depth.unwrap_or(config.default_queue_depth))
            .collect();
        let tenant_index = config
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), i))
            .collect();

        let sink = config
            .sink
            .clone()
            .unwrap_or_else(|| Arc::new(TraceSink::disabled()));
        let serve_pid = if sink.is_enabled() {
            let pid = sink.next_pid();
            sink.name_process(pid, "serve");
            for s in 0..config.shards {
                let track = Track {
                    pid,
                    tid: s as u32 + 1,
                };
                sink.name_thread(track, format!("shard{s}"));
            }
            pid
        } else {
            0
        };

        let queues: Vec<Arc<ShardQueue>> = (0..config.shards)
            .map(|_| {
                Arc::new(ShardQueue::new(
                    weights.clone(),
                    limits.clone(),
                    config.max_batch,
                ))
            })
            .collect();
        let contexts: Vec<Arc<Context>> = (0..config.shards)
            .map(|_| {
                let mut b = Context::builder()
                    .gpu(config.gpu.clone())
                    .timing(config.timing)
                    .backend(config.backend)
                    .telemetry(Arc::clone(&sink));
                if config.memoization {
                    // One wave cache per shard, shared by every plan the
                    // shard's context builds (and by any future context
                    // of the same shard).
                    b = b.shared_memoization(Arc::new(WaveMemo::new()));
                }
                Arc::new(b.build())
            })
            .collect();

        let shared = Arc::new(Shared {
            tenant_index,
            queues,
            contexts,
            stats: Mutex::new(StatsInner {
                tenants: (0..tenants).map(|_| TenantStats::default()).collect(),
                batches: 0,
                coalesced: 0,
            }),
            sink,
            serve_pid,
            epoch: Instant::now(), // lint: hash-ok — host latency clock, never in simulated counters
            next_id: AtomicU64::new(0),
            config,
        });

        let workers = (0..shared.config.workers)
            .map(|w| {
                let shard = w % shared.config.shards;
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// A submission handle bound to a registered tenant.
    pub fn client(&self, tenant: &str) -> Result<Client, ServeError> {
        match self.shared.tenant_index.get(tenant) {
            Some(&idx) => Ok(Client {
                shared: Arc::clone(&self.shared),
                tenant: idx,
            }),
            None => Err(ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            }),
        }
    }

    /// Jobs currently queued across all shards.
    pub fn queue_depth(&self) -> usize {
        self.shared.queues.iter().map(|q| q.depth()).sum()
    }

    /// Stop admissions, drain every queued job, join the workers, and
    /// return the fleet report.
    pub fn finish(mut self) -> ServeReport {
        self.close_and_join();
        build_report(&self.shared)
    }

    fn close_and_join(&mut self) {
        for q in &self.shared.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl Client {
    /// Submit a job. Returns immediately with a [`JobHandle`], or an
    /// admission/shutdown error. The handle resolves when a worker
    /// completes the batch containing the job.
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, ServeError> {
        let shared = &self.shared;
        let tenant_name = &shared.config.tenants[self.tenant].name;
        shared.stats_lock().tenants[self.tenant].submitted += 1;
        let shard = req.shard_of(shared.config.shards);
        let slot = Arc::new(JobSlot::default());
        let pending = Pending {
            req,
            slot: Arc::clone(&slot),
            tenant: self.tenant,
            enqueued_us: shared.now_us(),
        };
        if let Err(e) = shared.queues[shard].push(pending, tenant_name) {
            shared.stats_lock().tenants[self.tenant].rejected += 1;
            return Err(e);
        }
        if shared.sink.is_enabled() {
            let track = Track {
                pid: shared.serve_pid,
                tid: shard as u32 + 1,
            };
            shared.sink.counter(
                track,
                "queue_depth",
                "serve",
                vec![("depth", (shared.queues[shard].depth()).into())],
            );
        }
        Ok(JobHandle {
            slot,
            id: shared.next_id.fetch_add(1, Ordering::Relaxed),
            tenant: tenant_name.clone(),
        })
    }

    /// This client's tenant name.
    pub fn tenant(&self) -> &str {
        &self.shared.config.tenants[self.tenant].name
    }
}

/// Execute one batch on the shard's context and fulfill every slot.
fn dispatch(shared: &Shared, shard: usize, batch: Batch) {
    let ctx = &shared.contexts[shard];
    let n_jobs = batch.jobs.len();
    let result: Result<Vec<JobOutput>, ServeError> = match &batch.jobs[0].req {
        JobRequest::Spmm { a, b, algo } => {
            let (a, algo) = (Arc::clone(a), *algo);
            let n = b.cols();
            ctx.try_plan_spmm(&a, n, algo)
                .map_err(ServeError::from)
                .and_then(|plan| {
                    let bs: Vec<_> = batch
                        .jobs
                        .iter()
                        .map(|p| match &p.req {
                            JobRequest::Spmm { b, .. } => b.clone(),
                            JobRequest::Sddmm { .. } => unreachable!("coalesce key fixes the op"),
                        })
                        .collect();
                    plan.try_run_batch(&bs)
                        .map(|outs| outs.into_iter().map(JobOutput::Spmm).collect())
                        .map_err(ServeError::from)
                })
        }
        JobRequest::Sddmm { mask, a, algo, .. } => {
            let (mask, algo) = (Arc::clone(mask), *algo);
            let k = a.cols();
            ctx.try_plan_sddmm(&mask, k, algo)
                .map_err(ServeError::from)
                .and_then(|plan| {
                    let (a_batch, b_batch): (Vec<_>, Vec<_>) = batch
                        .jobs
                        .iter()
                        .map(|p| match &p.req {
                            JobRequest::Sddmm { a, b, .. } => (a.clone(), b.clone()),
                            JobRequest::Spmm { .. } => unreachable!("coalesce key fixes the op"),
                        })
                        .unzip();
                    plan.try_run_batch(&a_batch, &b_batch)
                        .map(|outs| outs.into_iter().map(JobOutput::Sddmm).collect())
                        .map_err(ServeError::from)
                })
        }
    };

    let done_us = shared.now_us();
    let track = Track {
        pid: shared.serve_pid,
        tid: shard as u32 + 1,
    };
    if shared.sink.is_enabled() {
        shared.sink.instant_at(
            track,
            "batch",
            "serve",
            done_us,
            vec![
                (
                    "anchor",
                    shared.config.tenants[batch.anchor].name.as_str().into(),
                ),
                ("size", n_jobs.into()),
            ],
        );
    }
    let mut stats = shared.stats_lock();
    stats.batches += 1;
    stats.coalesced += (n_jobs - 1) as u64;
    match result {
        Ok(outputs) => {
            for (pending, out) in batch.jobs.into_iter().zip(outputs) {
                let latency_us = done_us.saturating_sub(pending.enqueued_us).max(1);
                let t = &mut stats.tenants[pending.tenant];
                t.served += 1;
                t.latencies_us.push(latency_us);
                if shared.sink.is_enabled() {
                    shared.sink.span_at(
                        track,
                        "request",
                        "serve",
                        pending.enqueued_us,
                        latency_us,
                        vec![
                            (
                                "tenant",
                                shared.config.tenants[pending.tenant].name.as_str().into(),
                            ),
                            ("batch", n_jobs.into()),
                        ],
                    );
                }
                pending.slot.fulfill(Ok(out));
            }
        }
        Err(e) => {
            // A failed batch fails every job in it with the same typed
            // error; the batch still counts as dispatched.
            for pending in batch.jobs {
                pending.slot.fulfill(Err(e.clone()));
            }
        }
    }
}

fn worker_loop(shared: &Shared, shard: usize) {
    while let Some(batch) = shared.queues[shard].next_batch() {
        dispatch(shared, shard, batch);
    }
}

fn build_report(shared: &Shared) -> ServeReport {
    let stats = shared.stats_lock();
    let tenants = shared
        .config
        .tenants
        .iter()
        .zip(&stats.tenants)
        .map(|(spec, t)| {
            let mut sorted = t.latencies_us.clone();
            sorted.sort_unstable();
            let total: u64 = sorted.iter().sum();
            let mean_ms = if sorted.is_empty() {
                0.0
            } else {
                total as f64 / sorted.len() as f64 / 1000.0
            };
            TenantReport {
                name: spec.name.clone(),
                weight: spec.weight,
                submitted: t.submitted,
                served: t.served,
                rejected: t.rejected,
                p50_ms: percentile(&sorted, 50.0) as f64 / 1000.0,
                p99_ms: percentile(&sorted, 99.0) as f64 / 1000.0,
                mean_ms,
                slo_p99_ms: spec.slo_p99_ms,
                total_latency_us: total,
            }
        })
        .collect();

    let mut engine = vecsparse::engine::EngineStats::default();
    let mut memo = None;
    for ctx in &shared.contexts {
        engine.absorb(&ctx.stats());
        if let Some(m) = ctx.memo_stats() {
            memo.get_or_insert_with(vecsparse_gpu_sim::MemoStats::default)
                .absorb(&m);
        }
    }
    let names: Vec<String> = shared
        .config
        .tenants
        .iter()
        .map(|t| t.name.clone())
        .collect();
    ServeReport {
        tenants,
        engine,
        memo,
        batches: stats.batches,
        coalesced: stats.coalesced,
        max_queue_depth: shared
            .queues
            .iter()
            .map(|q| q.max_depth())
            .max()
            .unwrap_or(0),
        dispatch_logs: shared
            .queues
            .iter()
            .map(|q| {
                q.dispatch_log()
                    .into_iter()
                    .map(|t| names[t].clone())
                    .collect()
            })
            .collect(),
        workers: shared.config.workers,
        shards: shared.config.shards,
    }
}
