//! # vecsparse-engine
//!
//! Facade crate for the [`vecsparse`] execution engine: the
//! cuSPARSE-style handle/plan workflow (`Context` → `SpmmPlan` /
//! `SddmmPlan`) with plan caching and kernel auto-tuning.
//!
//! The implementation lives in [`vecsparse::engine`] (it needs the
//! kernels); this crate re-exports it so engine users can depend on a
//! crate named for the API they consume:
//!
//! ```
//! use vecsparse_engine::Context;
//! use vecsparse_engine::SpmmAlgo;
//! use vecsparse_formats::{gen, Layout};
//! use vecsparse_fp16::f16;
//!
//! let ctx = Context::new();
//! let a = gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1);
//! let plan = ctx.plan_spmm(&a, 32, SpmmAlgo::Octet);
//! let b = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 2);
//! assert_eq!(plan.run(&b).rows(), 16);
//! ```

pub use vecsparse::engine::*;
pub use vecsparse::{SddmmAlgo, SpmmAlgo};
