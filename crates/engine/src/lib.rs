//! # vecsparse-engine
//!
//! Facade crate for the [`vecsparse`] execution engine: the
//! cuSPARSE-style handle/plan workflow (`Context` → `SpmmPlan` /
//! `SddmmPlan`) with plan caching, kernel auto-tuning, and opt-in
//! telemetry ([`TraceSink`] spans exported via [`perfetto`] /
//! [`telemetry_csv`]).
//!
//! The implementation lives in [`vecsparse::engine`] (it needs the
//! kernels); this crate re-exports the supported surface explicitly so
//! engine users can depend on a crate named for the API they consume —
//! and so additions to internal modules do not leak here by accident:
//!
//! ```
//! use vecsparse_engine::Context;
//! use vecsparse_engine::SpmmAlgo;
//! use vecsparse_formats::{gen, Layout};
//! use vecsparse_fp16::f16;
//!
//! let ctx = Context::builder().build();
//! let a = gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 1);
//! let plan = ctx.plan_spmm(&a, 32, SpmmAlgo::Octet);
//! let b = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 2);
//! assert_eq!(plan.run(&b).rows(), 16);
//! ```
//!
//! Fallible variants of every entry point exist as `try_*` methods
//! returning [`EngineError`]; the infallible methods are thin wrappers
//! that panic with the same message.

#![forbid(unsafe_code)]

// The handle/plan API.
pub use vecsparse::engine::{Context, ContextBuilder, SddmmDesc, SddmmPlan, SpmmDesc, SpmmPlan};
// Errors, metrics, and cache introspection.
pub use vecsparse::engine::{
    AlgoReport, BatchProfile, EngineError, EngineStats, OpKind, PlanKey, Report,
};
// The auto-tuner (usable standalone).
pub use vecsparse::engine::tuner;
// Algorithm selectors shared with the free-function API.
pub use vecsparse::{SddmmAlgo, SpmmAlgo};
// Telemetry: sinks and exporters, so engine users need no extra dep.
pub use vecsparse_telemetry::{
    csv as telemetry_csv, perfetto, ArgValue, EventKind, TraceEvent, TraceSink, Track,
};
