//! Deliberately broken (and one deliberately clean, one advisory-only)
//! miniature kernels, one per shard lint, so CI can pin each
//! [`ShardFailure`]/[`ShardLint`] to the exact kernel pattern that must
//! trigger it — and assert that `NotShardable` kernels can never obtain
//! a [`ShardPlan`](crate::ShardPlan).

use crate::cert::{analyze, launch_sharded, ShardFailure, ShardLint, ShardVerdict};
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, ElemWidth, KernelSpec, Launch, LaunchConfig, MemPool, Program, ShardLayout,
    Site, WVec, NO_LANES,
};

/// A parameterizable row writer: each CTA stores the element ranges it
/// is told to, with value `elem + 1` so merges are observable. Every
/// fixture is an instance with a different (layout, write set) pair.
struct RowWriterKernel {
    name: &'static str,
    out: BufferId,
    grid: usize,
    layout: ShardLayout,
    /// Per CTA: `(start element, count)` store ranges.
    writes: Vec<Vec<(u32, u32)>>,
    stg: Site,
    static_len: u32,
}

impl RowWriterKernel {
    fn stage(
        mem: &mut MemPool,
        name: &'static str,
        row_starts: Vec<u32>,
        cta_rows: Vec<(u32, u32)>,
        writes: Vec<Vec<(u32, u32)>>,
    ) -> Self {
        let rows = row_starts.len() - 1;
        let out = mem.alloc_zeroed(ElemWidth::B32, row_starts[rows] as usize);
        let mut p = Program::new();
        let stg = p.site("stg", 0);
        let grid = writes.len();
        RowWriterKernel {
            name,
            out,
            grid,
            layout: ShardLayout {
                out,
                rows,
                row_starts,
                cta_rows,
            },
            writes,
            stg,
            static_len: p.static_len(),
        }
    }
}

impl KernelSpec for RowWriterKernel {
    fn name(&self) -> String {
        self.name.into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.grid,
            warps_per_cta: 1,
            regs_per_thread: 32,
            smem_elems: 0,
            smem_elem_bytes: 4,
            static_instrs: self.static_len,
        }
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let cta_id = cta.cta_id;
        let mut w = cta.warp(0);
        for &(start, count) in &self.writes[cta_id] {
            let mut done = 0;
            while done < count {
                let chunk = (count - done).min(32);
                let mut offs = NO_LANES;
                let mut vals = WVec::zeros(1);
                for (l, off) in offs.iter_mut().enumerate().take(chunk as usize) {
                    let elem = start + done + l as u32;
                    *off = elem;
                    vals.set(l, 0, (elem + 1) as f32);
                }
                w.stg(self.stg, self.out, &offs, &vals, &[]);
                done += chunk;
            }
        }
    }

    fn shard_layout(&self) -> Option<ShardLayout> {
        Some(self.layout.clone())
    }
}

/// What a fixture's analysis (and plan construction) must produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expected {
    Shardable,
    WriteOverlap,
    OutOfSliceWrite,
    SectorFalseSharing,
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    Clean,
    Overlap,
    OutOfSlice,
    FalseSharing,
}

/// One shardprove fixture: a miniature kernel plus the verdict or lint
/// its analysis must produce.
pub struct ShardFixture {
    name: &'static str,
    kind: Kind,
    expected: Expected,
}

fn stage_fixture(mem: &mut MemPool, kind: Kind) -> RowWriterKernel {
    match kind {
        // Four 64-element rows (256-byte slices, every cut aligned);
        // CTA r writes exactly row r.
        Kind::Clean => RowWriterKernel::stage(
            mem,
            "fixture-clean-row-writer",
            vec![0, 64, 128, 192, 256],
            (0..4).map(|r| (r, r + 1)).collect(),
            (0..4u32).map(|r| vec![(r * 64, 64)]).collect(),
        ),
        // Two CTAs column-split the same declared row, but their write
        // ranges intersect on elements 16..32.
        Kind::Overlap => RowWriterKernel::stage(
            mem,
            "fixture-write-overlap",
            vec![0, 64],
            vec![(0, 1), (0, 1)],
            vec![vec![(0, 32)], vec![(16, 32)]],
        ),
        // CTA 0 owns row 0 (elements 0..64) but also writes element 64
        // — the first element of row 1. CTA 1 writes a disjoint part of
        // row 1, so only the containment obligation trips.
        Kind::OutOfSlice => RowWriterKernel::stage(
            mem,
            "fixture-out-of-slice-write",
            vec![0, 64, 128],
            vec![(0, 1), (1, 2)],
            vec![vec![(0, 32), (32, 32), (64, 1)], vec![(96, 32)]],
        ),
        // Four 10-element f32 rows: 40-byte slices, so every interior
        // row boundary (40, 80, 120 bytes) straddles a 32-byte sector.
        // Writes are disjoint and contained — the kernel is shardable,
        // but any 2-way plan must record the false-sharing lint.
        Kind::FalseSharing => RowWriterKernel::stage(
            mem,
            "fixture-sector-false-sharing",
            vec![0, 10, 20, 30, 40],
            (0..4).map(|r| (r, r + 1)).collect(),
            (0..4u32).map(|r| vec![(r * 10, 10)]).collect(),
        ),
    }
}

impl ShardFixture {
    /// Fixture name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Human-readable expected outcome.
    pub fn expected_verdict(&self) -> &'static str {
        match self.expected {
            Expected::Shardable => "shardable",
            Expected::WriteOverlap => "write-overlap",
            Expected::OutOfSliceWrite => "out-of-slice-write",
            Expected::SectorFalseSharing => "sector-false-sharing",
        }
    }

    /// Stage the fixture kernel into a fresh pool, analyze it, and
    /// check the verdict — including that `NotShardable` kernels are
    /// refused a plan and that certified plans merge bit-identically.
    pub fn verify(&self) -> Result<(), String> {
        let mut mem = MemPool::new();
        let kernel = stage_fixture(&mut mem, self.kind);
        let cert = analyze(&mem, &kernel);
        match (self.expected, &cert.verdict) {
            (Expected::Shardable, ShardVerdict::Shardable)
            | (Expected::SectorFalseSharing, ShardVerdict::Shardable) => {
                let plan = cert
                    .shard_plan(2)
                    .map_err(|e| format!("shardable fixture refused a plan: {e}"))?;
                let wants_lint = self.expected == Expected::SectorFalseSharing;
                let has_lint = plan
                    .lints()
                    .iter()
                    .any(|l| matches!(l, ShardLint::SectorFalseSharing { .. }));
                if wants_lint != has_lint {
                    return Err(format!(
                        "expected sector-false-sharing lint = {wants_lint}, lints: {:?}",
                        plan.lints()
                    ));
                }
                // The certified split must merge bit-identically.
                let mut reference = mem.clone();
                Launch::new(&mut reference, &kernel).run();
                let mut sharded = mem.clone();
                launch_sharded(&mut sharded, &kernel, &plan);
                if reference.contents(kernel.out) != sharded.contents(kernel.out) {
                    return Err("sharded merge diverged from unsharded reference".into());
                }
                Ok(())
            }
            (
                Expected::WriteOverlap,
                ShardVerdict::NotShardable(ShardFailure::WriteOverlap { .. }),
            )
            | (
                Expected::OutOfSliceWrite,
                ShardVerdict::NotShardable(ShardFailure::OutOfSliceWrite { .. }),
            ) => {
                if cert.shard_plan(2).is_ok() {
                    return Err(format!(
                        "not-shardable fixture {} was handed a shard plan",
                        self.name
                    ));
                }
                Ok(())
            }
            (_, verdict) => Err(format!(
                "expected {}, got {:?}",
                self.expected_verdict(),
                verdict
            )),
        }
    }
}

/// Every shardprove fixture: the clean control, one kernel per fatal
/// obligation, and the advisory false-sharing case.
pub fn all_fixtures() -> Vec<ShardFixture> {
    vec![
        ShardFixture {
            name: "clean-row-writer",
            kind: Kind::Clean,
            expected: Expected::Shardable,
        },
        ShardFixture {
            name: "write-overlap",
            kind: Kind::Overlap,
            expected: Expected::WriteOverlap,
        },
        ShardFixture {
            name: "out-of-slice-write",
            kind: Kind::OutOfSlice,
            expected: Expected::OutOfSliceWrite,
        },
        ShardFixture {
            name: "sector-false-sharing",
            kind: Kind::FalseSharing,
            expected: Expected::SectorFalseSharing,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::AccessKind;

    #[test]
    fn every_fixture_verifies() {
        for fx in all_fixtures() {
            fx.verify().unwrap_or_else(|e| panic!("{}: {e}", fx.name()));
        }
    }

    #[test]
    fn clean_fixture_certificate_is_affine_and_covering() {
        let mut mem = MemPool::new();
        let kernel = stage_fixture(&mut mem, Kind::Clean);
        let cert = analyze(&mem, &kernel);
        assert!(cert.is_shardable());
        // Four uniform CTAs compress into one affine write group.
        let writes: Vec<_> = cert
            .regions
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].groups.len(), 1);
        assert_eq!(writes[0].groups[0].delta, 256);
        // covers() agrees with the kernel's actual stores.
        let base = mem.addr(kernel.out, 0);
        assert!(cert.covers(1, base + 64 * 4, AccessKind::Write));
        assert!(!cert.covers(0, base + 64 * 4, AccessKind::Write));
        assert!(!cert.covers(1, base + 64 * 4, AccessKind::Read));
    }

    #[test]
    fn four_way_split_of_clean_fixture_is_exact() {
        let mut mem = MemPool::new();
        let kernel = stage_fixture(&mut mem, Kind::Clean);
        let cert = analyze(&mem, &kernel);
        let plan = cert.shard_plan(4).expect("4-way plan");
        assert_eq!(plan.shards().len(), 4);
        assert!(plan.lints().is_empty());
        let mut reference = mem.clone();
        Launch::new(&mut reference, &kernel).run();
        launch_sharded(&mut mem, &kernel, &plan);
        assert_eq!(reference.contents(kernel.out), mem.contents(kernel.out));
    }

    #[test]
    fn oversplit_grid_is_refused() {
        let mut mem = MemPool::new();
        let kernel = stage_fixture(&mut mem, Kind::Clean);
        let cert = analyze(&mem, &kernel);
        assert!(matches!(
            cert.shard_plan(5),
            Err(ShardFailure::UnsplittableGrid { wanted: 5, .. })
        ));
    }

    #[test]
    fn layoutless_kernel_is_not_shardable() {
        // A kernel that never implements shard_layout(): the default
        // None must yield NoLayout and no plan.
        struct Opaque;
        impl KernelSpec for Opaque {
            fn name(&self) -> String {
                "fixture-opaque".into()
            }
            fn launch_config(&self) -> LaunchConfig {
                LaunchConfig {
                    grid: 1,
                    warps_per_cta: 1,
                    regs_per_thread: 32,
                    smem_elems: 0,
                    smem_elem_bytes: 4,
                    static_instrs: 1,
                }
            }
            fn run_cta(&self, _cta: &mut CtaCtx<'_>) {}
        }
        let mem = MemPool::new();
        let cert = analyze(&mem, &Opaque);
        assert_eq!(
            cert.verdict,
            ShardVerdict::NotShardable(ShardFailure::NoLayout)
        );
        assert!(cert.shard_plan(2).is_err());
    }
}
