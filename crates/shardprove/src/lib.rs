//! # vecsparse-shardprove
//!
//! Static memory-footprint certificates for row-split sharding — the
//! analysis that ROADMAP's multi-GPU scale-out stands on, in the
//! waveprove tradition: unprovable kernels simply get no shard plan.
//!
//! [`analyze`] traces every CTA of a staged kernel in performance mode
//! (which waveprove independently certifies as value-independent, so a
//! footprint derived from one symbolic CTA generalizes over the
//! certified shape classes) and abstracts the per-lane access detail
//! into **strided-interval sets per memory region**: for each buffer
//! and access kind, the per-CTA byte footprint is compressed into
//! affine-in-CTA-index range expressions ([`AffineGroup`], viewable as
//! [`StridedInterval`]s). Over that domain it discharges three
//! obligations:
//!
//! 1. **Write/write disjointness** — no two CTAs write a common byte
//!    ([`ShardFailure::WriteOverlap`] otherwise). Shards may then be
//!    merged by copying each shard's slice with no write races.
//! 2. **Slice containment** — every CTA's writes land inside the output
//!    slice of the row blocks it declares via
//!    [`ShardLayout`](vecsparse_gpu_sim::ShardLayout)
//!    ([`ShardFailure::OutOfSliceWrite`] otherwise). Cutting the grid
//!    on row-block boundaries then cuts the write set exactly.
//! 3. **Read invariance** — no CTA reads a byte any CTA writes
//!    ([`ShardFailure::ReadWriteAlias`] otherwise), so the values every
//!    CTA observes are those of the staged pool regardless of how the
//!    grid is split across devices.
//!
//! A kernel passing all three receives a [`FootprintCertificate`] with
//! [`ShardVerdict::Shardable`], from which — and *only* from which —
//! a typed [`ShardPlan`] can be minted with
//! [`FootprintCertificate::shard_plan`]: the plan type has no public
//! constructor, so `NotShardable` kernels cannot obtain one at the type
//! level, mirroring waveprove's no-signature-no-memo design.
//! [`launch_sharded`] then runs a certified N-way row split as
//! independent launches on cloned device pools and merges the slices —
//! bit-identical to the unsharded reference by obligations 1–3.
//!
//! One advisory lint rides along: [`ShardLint::SectorFalseSharing`]
//! fires when a shard boundary falls inside a 32-byte L2 sector, so two
//! devices would ping-pong ownership of that sector's line. The plan is
//! still sound (merging is slice-exact), just slower on real hardware.
//!
//! [`fixtures::all_fixtures`] provides miniature kernels that *must*
//! trip each lint (plus a clean control), so CI can pin every verdict
//! to the exact failure that should trigger it.

#![forbid(unsafe_code)]

pub mod cert;
pub mod fixtures;

pub use cert::{
    analyze, launch_sharded, AccessKind, AffineGroup, FootprintCertificate, RegionFootprint, Shard,
    ShardFailure, ShardLint, ShardPlan, ShardVerdict, Span, StridedInterval,
};
pub use fixtures::{all_fixtures, ShardFixture};
