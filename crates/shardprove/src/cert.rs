//! The footprint-certification pass: strided-interval footprints per
//! memory region, three shard obligations, and the typed plan.

use vecsparse_gpu_sim::{
    sector_of_byte, BufferId, CtaCtx, KernelSpec, Launch, MemPool, Mode, ShardLayout, SECTOR_BYTES,
};

/// A contiguous byte range `[lo, hi)` of device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// First byte.
    pub lo: u64,
    /// One past the last byte.
    pub hi: u64,
}

impl Span {
    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// True when the span covers nothing.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// Read or write footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Global loads.
    Read,
    /// Global stores.
    Write,
}

/// A run of consecutive CTAs whose footprint in one region is a uniform
/// shift of its predecessor's: CTA `c` in `[cta_lo, cta_hi]` touches
/// `spans` shifted by `(c - cta_lo) * delta` bytes. This is the
/// "affine-in-CTA-index range expression" of the certificate — exact,
/// not an over-approximation: groups are grown greedily and an
/// irregular CTA simply starts a group of length one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffineGroup {
    /// First CTA of the run.
    pub cta_lo: usize,
    /// Last CTA of the run (inclusive).
    pub cta_hi: usize,
    /// Byte shift per successive CTA.
    pub delta: i64,
    /// Footprint of `cta_lo`, as merged maximal spans.
    pub spans: Vec<Span>,
}

impl AffineGroup {
    /// True when `byte` is in the footprint of `cta` under this group.
    fn covers(&self, cta: usize, byte: u64) -> bool {
        if cta < self.cta_lo || cta > self.cta_hi {
            return false;
        }
        let shift = (cta - self.cta_lo) as i64 * self.delta;
        self.spans.iter().any(|s| {
            let lo = s.lo as i64 + shift;
            let hi = s.hi as i64 + shift;
            (byte as i64) >= lo && (byte as i64) < hi
        })
    }

    /// The group viewed as strided intervals, one per span.
    pub fn intervals(&self) -> impl Iterator<Item = StridedInterval> + '_ {
        let count = (self.cta_hi - self.cta_lo + 1) as u32;
        let stride = self.delta;
        self.spans.iter().map(move |s| StridedInterval {
            base: s.lo,
            stride,
            count,
            len: s.len(),
        })
    }
}

/// One element of the abstract domain: `count` copies of a `len`-byte
/// range, the `i`-th based at `base + i·stride`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StridedInterval {
    /// Byte address of the first copy.
    pub base: u64,
    /// Byte distance between consecutive copies (may be negative).
    pub stride: i64,
    /// Number of copies (one per CTA of the owning group).
    pub count: u32,
    /// Bytes per copy.
    pub len: u64,
}

/// The certified footprint of one (buffer, access-kind) region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionFootprint {
    /// Allocation index of the buffer ([`BufferId::index`]).
    pub buf: usize,
    /// Reads or writes.
    pub kind: AccessKind,
    /// Affine compression of the per-CTA footprints, ordered by CTA.
    pub groups: Vec<AffineGroup>,
}

/// Why a kernel could not be certified shardable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardFailure {
    /// The kernel publishes no
    /// [`ShardLayout`](vecsparse_gpu_sim::ShardLayout).
    NoLayout,
    /// The published layout is structurally malformed.
    BadLayout(String),
    /// Performance-mode trace generation read operand values — the
    /// footprint depends on data and the one-trace-per-CTA abstraction
    /// is unsound (waveprove's obligation, re-checked here).
    ValueDependentTrace {
        /// CTA whose trace generation read values.
        cta_id: usize,
        /// Number of value reads observed.
        reads: u64,
    },
    /// Obligation 1 broken: two CTAs write a common byte.
    WriteOverlap {
        /// Lower-numbered CTA.
        cta_a: usize,
        /// Higher-numbered CTA.
        cta_b: usize,
        /// First overlapping byte address.
        byte: u64,
    },
    /// Obligation 2 broken: a CTA writes outside its declared row
    /// blocks' output slice.
    OutOfSliceWrite {
        /// Offending CTA.
        cta_id: usize,
        /// First out-of-slice byte address.
        byte: u64,
    },
    /// Obligation 3 broken: a CTA reads a byte some CTA writes, so the
    /// values it observes depend on how the grid is split.
    ReadWriteAlias {
        /// Reading CTA.
        cta_id: usize,
        /// First aliased byte address.
        byte: u64,
    },
    /// Not enough cut points to split the grid `wanted` ways (raised at
    /// plan time; the certificate itself remains shardable).
    UnsplittableGrid {
        /// Requested shard count.
        wanted: usize,
        /// Cut points actually available.
        cuts: usize,
    },
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFailure::NoLayout => {
                write!(f, "kernel publishes no shard layout")
            }
            ShardFailure::BadLayout(why) => write!(f, "malformed shard layout: {why}"),
            ShardFailure::ValueDependentTrace { cta_id, reads } => write!(
                f,
                "value-dependent trace: CTA {cta_id} read {reads} operand value(s) \
                 during footprint extraction"
            ),
            ShardFailure::WriteOverlap { cta_a, cta_b, byte } => write!(
                f,
                "write overlap: CTAs {cta_a} and {cta_b} both write byte {byte:#x}"
            ),
            ShardFailure::OutOfSliceWrite { cta_id, byte } => write!(
                f,
                "out-of-slice write: CTA {cta_id} writes byte {byte:#x} outside its \
                 declared row blocks"
            ),
            ShardFailure::ReadWriteAlias { cta_id, byte } => write!(
                f,
                "read/write alias: CTA {cta_id} reads byte {byte:#x} that the launch writes"
            ),
            ShardFailure::UnsplittableGrid { wanted, cuts } => write!(
                f,
                "unsplittable grid: {wanted}-way split requested but only {cuts} cut \
                 point(s) exist"
            ),
        }
    }
}

/// Advisory finding attached to a [`ShardPlan`]: the plan stays sound,
/// but real hardware would pay for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardLint {
    /// A shard boundary falls inside a 32-byte L2 sector, so two shards
    /// write the same sector and two devices would ping-pong its line.
    SectorFalseSharing {
        /// Row block whose slice start is the misaligned boundary.
        cut_row: u32,
        /// The boundary byte address.
        byte: u64,
    },
}

impl std::fmt::Display for ShardLint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardLint::SectorFalseSharing { cut_row, byte } => write!(
                f,
                "sector false sharing: shard boundary at row block {cut_row} \
                 (byte {byte:#x}) straddles a {SECTOR_BYTES}-byte L2 sector"
            ),
        }
    }
}

/// The outcome of footprint certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardVerdict {
    /// All three obligations held over every CTA: row-split sharding is
    /// sound and [`FootprintCertificate::shard_plan`] will mint plans.
    Shardable,
    /// An obligation failed; no [`ShardPlan`] can ever be constructed.
    NotShardable(ShardFailure),
}

/// A static memory-footprint certificate for one staged kernel.
#[derive(Clone, Debug)]
pub struct FootprintCertificate {
    /// Kernel name.
    pub kernel: String,
    /// Grid size at certification time.
    pub grid: usize,
    /// Per-region affine footprints (every CTA traced, none sampled).
    pub regions: Vec<RegionFootprint>,
    /// The kernel's declared layout (absent exactly for
    /// [`ShardFailure::NoLayout`]/[`ShardFailure::BadLayout`]).
    pub layout: Option<ShardLayout>,
    /// Byte address of output element 0.
    pub out_base: u64,
    /// Bytes per output element.
    pub out_elem_bytes: u64,
    /// CTAs traced (the full grid for a decided verdict).
    pub ctas_traced: usize,
    /// The verdict.
    pub verdict: ShardVerdict,
}

/// One shard of a certified row split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shard {
    /// CTAs this shard launches, ascending.
    pub ctas: Vec<usize>,
    /// Row blocks `[lo, hi)` the shard owns.
    pub rows: (u32, u32),
    /// Output elements `[lo, hi)` the shard's merge copies back.
    pub elems: (u32, u32),
}

/// A certified N-way row split. The only constructor is
/// [`FootprintCertificate::shard_plan`] — there is deliberately no way
/// to build one for a kernel whose verdict is
/// [`ShardVerdict::NotShardable`].
#[derive(Clone, Debug)]
pub struct ShardPlan {
    kernel: String,
    out: BufferId,
    shards: Vec<Shard>,
    lints: Vec<ShardLint>,
}

impl ShardPlan {
    /// Kernel the plan certifies.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The shards, in row order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Advisory lints recorded while choosing cut points.
    pub fn lints(&self) -> &[ShardLint] {
        &self.lints
    }
}

impl FootprintCertificate {
    /// True when every obligation held.
    pub fn is_shardable(&self) -> bool {
        matches!(self.verdict, ShardVerdict::Shardable)
    }

    /// True when `byte` lies in the certified footprint of `cta` for
    /// the given access kind — the soundness relation the tier-1
    /// proptest checks dynamic traces against.
    pub fn covers(&self, cta: usize, byte: u64, kind: AccessKind) -> bool {
        self.regions
            .iter()
            .filter(|r| r.kind == kind)
            .any(|r| r.groups.iter().any(|g| g.covers(cta, byte)))
    }

    /// One-line verdict for reports.
    pub fn summary(&self) -> String {
        match &self.verdict {
            ShardVerdict::Shardable => {
                let groups: usize = self.regions.iter().map(|r| r.groups.len()).sum();
                format!(
                    "shardable ({} CTAs, {} region(s) in {} affine group(s))",
                    self.ctas_traced,
                    self.regions.len(),
                    groups
                )
            }
            ShardVerdict::NotShardable(reason) => format!("NOT SHARDABLE: {reason}"),
        }
    }

    /// Multi-line rendering for `vsan shardprove`.
    pub fn render(&self) -> String {
        let mut out = format!("== shardprove {} (grid {})\n", self.kernel, self.grid);
        match &self.verdict {
            ShardVerdict::Shardable => {
                out.push_str(
                    "   verdict: SHARDABLE — write sets disjoint, slice-contained, \
                     reads launch-invariant\n",
                );
                for r in &self.regions {
                    let kind = match r.kind {
                        AccessKind::Read => "reads ",
                        AccessKind::Write => "writes",
                    };
                    let bytes: u64 = r
                        .groups
                        .first()
                        .map(|g| g.spans.iter().map(Span::len).sum())
                        .unwrap_or(0);
                    out.push_str(&format!(
                        "   buf {:>2} {kind}: {} affine group(s), {} byte(s)/CTA\n",
                        r.buf,
                        r.groups.len(),
                        bytes
                    ));
                }
            }
            ShardVerdict::NotShardable(reason) => {
                out.push_str(&format!(
                    "   verdict: NOT SHARDABLE — {reason}\n   \
                     (no shard plan can be constructed for this kernel)\n"
                ));
            }
        }
        out
    }

    /// Mint a certified `n`-way row-split plan.
    ///
    /// Cut points are row-block boundaries no CTA's declared range
    /// straddles, chosen nearest to an even element split; boundaries
    /// that are 32-byte sector-aligned are preferred within a 128-byte
    /// tolerance, and a forced unaligned cut records
    /// [`ShardLint::SectorFalseSharing`] on the plan.
    pub fn shard_plan(&self, n: usize) -> Result<ShardPlan, ShardFailure> {
        let layout = match (&self.verdict, &self.layout) {
            (ShardVerdict::NotShardable(reason), _) => return Err(reason.clone()),
            (ShardVerdict::Shardable, Some(layout)) => layout,
            // Shardable verdicts always carry the layout they were
            // checked against; treat absence as a malformed layout.
            (ShardVerdict::Shardable, None) => {
                return Err(ShardFailure::BadLayout("layout missing".to_string()))
            }
        };
        assert!(n >= 1, "shard count must be at least 1");
        let rows = layout.rows;
        // Rows strictly inside some CTA's range cannot be cut.
        let mut cuttable = vec![true; rows + 1];
        for &(lo, hi) in &layout.cta_rows {
            for r in lo.saturating_add(1)..hi {
                cuttable[r as usize] = false;
            }
        }
        let candidates: Vec<u32> = (1..rows as u32).filter(|&r| cuttable[r as usize]).collect();
        if candidates.len() + 1 < n {
            return Err(ShardFailure::UnsplittableGrid {
                wanted: n,
                cuts: candidates.len(),
            });
        }

        let total = layout.row_starts[rows] as u64;
        let byte_of =
            |r: u32| self.out_base + layout.row_starts[r as usize] as u64 * self.out_elem_bytes;
        let mut cuts: Vec<u32> = Vec::new();
        let mut lints: Vec<ShardLint> = Vec::new();
        for i in 1..n {
            let target = total * i as u64 / n as u64;
            let floor = cuts.last().copied().unwrap_or(0);
            let dist = |r: u32| {
                (layout.row_starts[r as usize] as i64 - target as i64).unsigned_abs()
                    * self.out_elem_bytes
            };
            let open: Vec<u32> = candidates.iter().copied().filter(|&r| r > floor).collect();
            let nearest = match open.iter().copied().min_by_key(|&r| dist(r)) {
                Some(r) => r,
                None => {
                    return Err(ShardFailure::UnsplittableGrid {
                        wanted: n,
                        cuts: candidates.len(),
                    })
                }
            };
            let aligned = open
                .iter()
                .copied()
                .filter(|&r| sector_aligned(byte_of(r)))
                .min_by_key(|&r| dist(r));
            let cut = match aligned {
                Some(a) if dist(a) <= dist(nearest) + 128 => a,
                _ => {
                    lints.push(ShardLint::SectorFalseSharing {
                        cut_row: nearest,
                        byte: byte_of(nearest),
                    });
                    nearest
                }
            };
            cuts.push(cut);
        }

        let mut bounds: Vec<u32> = Vec::with_capacity(n + 1);
        bounds.push(0);
        bounds.extend(&cuts);
        bounds.push(rows as u32);
        let mut shards: Vec<Shard> = bounds
            .windows(2)
            .map(|w| Shard {
                ctas: Vec::new(),
                rows: (w[0], w[1]),
                elems: (
                    layout.row_starts[w[0] as usize],
                    layout.row_starts[w[1] as usize],
                ),
            })
            .collect();
        for (cta, &(lo, _)) in layout.cta_rows.iter().enumerate() {
            // The anchor row decides the shard; containment of the full
            // range follows because cuts straddle no CTA.
            let idx = shards
                .iter()
                .position(|s| lo >= s.rows.0 && lo < s.rows.1)
                .unwrap_or(n - 1);
            shards[idx].ctas.push(cta);
        }
        Ok(ShardPlan {
            kernel: self.kernel.clone(),
            out: layout.out,
            shards,
            lints,
        })
    }
}

/// Per-CTA byte spans for one buffer, keyed by allocation index.
#[derive(Default)]
struct CtaFoot {
    /// `(buf index, buf id, span)` — merged later.
    reads: Vec<(usize, Span)>,
    writes: Vec<(usize, Span)>,
}

/// Sort and merge raw spans into maximal disjoint spans per buffer.
fn merge(mut raw: Vec<(usize, Span)>) -> Vec<(usize, Span)> {
    raw.sort_unstable();
    let mut out: Vec<(usize, Span)> = Vec::with_capacity(raw.len());
    for (buf, s) in raw {
        if s.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some((b, last)) if *b == buf && s.lo <= last.hi => last.hi = last.hi.max(s.hi),
            _ => out.push((buf, s)),
        }
    }
    out
}

/// Extract one CTA's footprint by running its performance-mode trace
/// with per-lane detail recording and mirroring the execution model's
/// clamping: loads cover `max(1, min(epl, len - off))` elements per
/// lane (an out-of-bounds load still issues one sector), stores cover
/// the elements functionally written (`off + e < len`).
fn cta_footprint<K: KernelSpec + ?Sized>(
    mem: &MemPool,
    kernel: &K,
    lc: &vecsparse_gpu_sim::LaunchConfig,
    cta_id: usize,
) -> CtaFoot {
    let mut cta = CtaCtx::new(
        cta_id,
        Mode::Performance,
        mem,
        lc.warps_per_cta,
        lc.smem_elems,
        lc.smem_elem_bytes,
    );
    cta.record_detail = true;
    kernel.run_cta(&mut cta);
    let (traces, _) = cta.finish();

    let mut foot = CtaFoot::default();
    for t in &traces {
        for m in &t.mem {
            if !m.global {
                continue;
            }
            let Some(d) = &m.detail else { continue };
            let Some(buf) = d.buf else { continue };
            let len = mem.len(buf) as u32;
            let epl = d.epl;
            for &off in d.offsets.iter().filter(|&&o| o != u32::MAX) {
                let span_elems = if m.store {
                    epl.min(len.saturating_sub(off))
                } else {
                    epl.min(len.saturating_sub(off)).max(1)
                };
                if span_elems == 0 {
                    continue;
                }
                let lo = mem.addr(buf, off as usize);
                let span = Span {
                    lo,
                    hi: lo + span_elems as u64 * d.elem_bytes,
                };
                if m.store {
                    foot.writes.push((buf.index(), span));
                } else {
                    foot.reads.push((buf.index(), span));
                }
            }
        }
    }
    foot.reads = merge(foot.reads);
    foot.writes = merge(foot.writes);
    foot
}

/// Greedily compress per-CTA span lists for one region into affine
/// groups. Exact: a CTA joins the open group only when its spans are a
/// uniform shift of its predecessor's by the group's delta.
fn affine_groups(per_cta: &[Vec<Span>]) -> Vec<AffineGroup> {
    let mut groups: Vec<AffineGroup> = Vec::new();
    let mut open: Option<(AffineGroup, Vec<Span>)> = None; // (group, last CTA's spans)
    for (cta, spans) in per_cta.iter().enumerate() {
        if spans.is_empty() {
            if let Some((g, _)) = open.take() {
                groups.push(g);
            }
            continue;
        }
        if let Some((g, prev)) = &mut open {
            if g.cta_hi + 1 == cta && prev.len() == spans.len() {
                let d = spans[0].lo as i64 - prev[0].lo as i64;
                let uniform = prev
                    .iter()
                    .zip(spans)
                    .all(|(p, s)| s.lo as i64 - p.lo as i64 == d && s.len() == p.len());
                // A size-one group adopts the first observed shift.
                let compatible = uniform && (g.cta_hi == g.cta_lo || d == g.delta);
                if compatible {
                    g.delta = d;
                    g.cta_hi = cta;
                    *prev = spans.clone();
                    continue;
                }
            }
            let (g, _) = open.take().expect("open group");
            groups.push(g);
        }
        open = Some((
            AffineGroup {
                cta_lo: cta,
                cta_hi: cta,
                delta: 0,
                spans: spans.clone(),
            },
            spans.clone(),
        ));
    }
    if let Some((g, _)) = open {
        groups.push(g);
    }
    groups
}

/// Certify a staged kernel's memory footprint for row-split sharding.
///
/// `mem` is the pool the kernel was staged into (functionally: split-K
/// and other profiling-only grid inflations do not apply); it is only
/// read. Every CTA's performance-mode trace is generated with per-lane
/// detail inside a value-read window, the per-region footprints are
/// compressed into affine-in-CTA-index groups, and the three shard
/// obligations are discharged in order. The first failure decides the
/// verdict; a clean pass yields [`ShardVerdict::Shardable`], from which
/// [`FootprintCertificate::shard_plan`] mints typed plans.
pub fn analyze<K: KernelSpec + ?Sized>(mem: &MemPool, kernel: &K) -> FootprintCertificate {
    let lc = kernel.launch_config();
    let mut cert = FootprintCertificate {
        kernel: kernel.name(),
        grid: lc.grid,
        regions: Vec::new(),
        layout: None,
        out_base: 0,
        out_elem_bytes: 0,
        ctas_traced: 0,
        verdict: ShardVerdict::Shardable,
    };
    let layout = match kernel.shard_layout() {
        Some(layout) => layout,
        None => {
            cert.verdict = ShardVerdict::NotShardable(ShardFailure::NoLayout);
            return cert;
        }
    };
    if let Err(why) = layout.validate(lc.grid) {
        cert.verdict = ShardVerdict::NotShardable(ShardFailure::BadLayout(why));
        return cert;
    }
    cert.out_base = mem.addr(layout.out, 0);
    cert.out_elem_bytes = mem.width(layout.out).bytes();

    // Trace every CTA sequentially so value reads attribute exactly.
    let mut feet: Vec<CtaFoot> = Vec::with_capacity(lc.grid);
    for cta_id in 0..lc.grid {
        let before = mem.value_reads();
        let foot = cta_footprint(mem, kernel, &lc, cta_id);
        let reads = mem.value_reads() - before;
        if reads > 0 {
            cert.verdict =
                ShardVerdict::NotShardable(ShardFailure::ValueDependentTrace { cta_id, reads });
            cert.layout = Some(layout);
            return cert;
        }
        feet.push(foot);
    }
    cert.ctas_traced = lc.grid;

    // Obligation 1 — write/write disjointness across CTAs.
    let mut all_writes: Vec<(u64, u64, usize)> = feet
        .iter()
        .enumerate()
        .flat_map(|(cta, f)| f.writes.iter().map(move |&(_, s)| (s.lo, s.hi, cta)))
        .collect();
    all_writes.sort_unstable();
    // Sweep with a running frontier. Per-CTA spans are merged, so two
    // spans of the *same* CTA never overlap; any span starting before
    // the frontier therefore collides with a different CTA.
    let mut frontier: Option<(u64, usize)> = None; // (hi, owning cta)
    for &(lo, hi, cta) in &all_writes {
        if let Some((f_hi, f_cta)) = frontier {
            if lo < f_hi {
                cert.verdict = ShardVerdict::NotShardable(ShardFailure::WriteOverlap {
                    cta_a: f_cta.min(cta),
                    cta_b: f_cta.max(cta),
                    byte: lo,
                });
                cert.layout = Some(layout);
                return cert;
            }
        }
        if frontier.is_none_or(|(f_hi, _)| hi > f_hi) {
            frontier = Some((hi, cta));
        }
    }

    // Obligation 2 — writes contained in the declared row blocks' slice.
    for (cta, foot) in feet.iter().enumerate() {
        let (lo_row, hi_row) = layout.cta_rows[cta];
        let slice_lo =
            cert.out_base + layout.row_starts[lo_row as usize] as u64 * cert.out_elem_bytes;
        let slice_hi =
            cert.out_base + layout.row_starts[hi_row as usize] as u64 * cert.out_elem_bytes;
        for &(_, s) in &foot.writes {
            if s.lo < slice_lo || s.hi > slice_hi {
                let byte = if s.lo < slice_lo { s.lo } else { slice_hi };
                cert.verdict =
                    ShardVerdict::NotShardable(ShardFailure::OutOfSliceWrite { cta_id: cta, byte });
                cert.layout = Some(layout);
                return cert;
            }
        }
    }

    // Obligation 3 — reads never alias the launch's write set.
    let write_union: Vec<Span> = {
        let u: Vec<(usize, Span)> = feet
            .iter()
            .flat_map(|f| f.writes.iter().copied())
            .map(|(_, s)| (0, s))
            .collect();
        merge(u).into_iter().map(|(_, s)| s).collect()
    };
    for (cta, foot) in feet.iter().enumerate() {
        for &(_, r) in &foot.reads {
            // write_union is sorted; find the first span ending past r.lo.
            let i = write_union.partition_point(|w| w.hi <= r.lo);
            if let Some(w) = write_union.get(i) {
                if w.lo < r.hi {
                    cert.verdict = ShardVerdict::NotShardable(ShardFailure::ReadWriteAlias {
                        cta_id: cta,
                        byte: w.lo.max(r.lo),
                    });
                    cert.layout = Some(layout);
                    return cert;
                }
            }
        }
    }

    // Affine compression per (buffer, kind) region.
    let mut buf_ids: Vec<usize> = feet
        .iter()
        .flat_map(|f| f.reads.iter().chain(&f.writes).map(|&(b, _)| b))
        .collect();
    buf_ids.sort_unstable();
    buf_ids.dedup();
    for buf in buf_ids {
        for kind in [AccessKind::Read, AccessKind::Write] {
            let per_cta: Vec<Vec<Span>> = feet
                .iter()
                .map(|f| {
                    let list = match kind {
                        AccessKind::Read => &f.reads,
                        AccessKind::Write => &f.writes,
                    };
                    list.iter()
                        .filter(|&&(b, _)| b == buf)
                        .map(|&(_, s)| s)
                        .collect()
                })
                .collect();
            let groups = affine_groups(&per_cta);
            if !groups.is_empty() {
                cert.regions.push(RegionFootprint { buf, kind, groups });
            }
        }
    }
    cert.layout = Some(layout);
    cert
}

/// Run a certified row split as independent launches and merge the
/// slices — the multi-GPU execution shape, demonstrated on host clones.
///
/// Each shard launches its CTA subset against a clone of the staged
/// pool (its private device) and the shard's output slice is copied
/// back. Bit-identity with the unsharded reference follows from the
/// plan's obligations: writes are disjoint (1) and slice-contained (2),
/// so the slice copies commute, and reads observe staged values only
/// (3), so every clone computes what the reference computes.
pub fn launch_sharded<K: KernelSpec + ?Sized>(mem: &mut MemPool, kernel: &K, plan: &ShardPlan) {
    assert_eq!(
        kernel.name(),
        plan.kernel,
        "plan certifies a different kernel"
    );
    let staged = mem.clone();
    for shard in &plan.shards {
        if shard.ctas.is_empty() {
            continue;
        }
        let mut device = staged.clone();
        Launch::new(&mut device, kernel)
            .ctas(shard.ctas.clone())
            .run();
        let out = plan.out;
        let slice = &device.contents(out)[shard.elems.0 as usize..shard.elems.1 as usize];
        let writes: Vec<(u32, f32)> = slice
            .iter()
            .enumerate()
            .map(|(i, &v)| (shard.elems.0 + i as u32, v))
            .collect();
        mem.apply_writes(out, &writes);
    }
}

/// True when `byte` begins a 32-byte sector: classified through the
/// shared gpu-sim helper so the lint and the cache model agree.
pub fn sector_aligned(byte: u64) -> bool {
    byte == sector_of_byte(byte) * SECTOR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_coalesces_touching_spans() {
        let spans = vec![
            (0, Span { lo: 64, hi: 96 }),
            (0, Span { lo: 0, hi: 32 }),
            (0, Span { lo: 32, hi: 64 }),
            (1, Span { lo: 96, hi: 128 }),
        ];
        let merged = merge(spans);
        assert_eq!(
            merged,
            vec![(0, Span { lo: 0, hi: 96 }), (1, Span { lo: 96, hi: 128 })]
        );
    }

    #[test]
    fn affine_groups_compress_uniform_shifts() {
        // CTAs 0..4 each touch 32 bytes, shifted by 32 per CTA; CTA 4
        // breaks the pattern.
        let per_cta: Vec<Vec<Span>> = (0..5u64)
            .map(|c| {
                let lo = if c < 4 { c * 32 } else { 1000 };
                vec![Span { lo, hi: lo + 32 }]
            })
            .collect();
        let groups = affine_groups(&per_cta);
        assert_eq!(groups.len(), 2);
        assert_eq!(
            (groups[0].cta_lo, groups[0].cta_hi, groups[0].delta),
            (0, 3, 32)
        );
        assert!(groups[0].covers(2, 64) && !groups[0].covers(2, 96));
        let ivs: Vec<StridedInterval> = groups[0].intervals().collect();
        assert_eq!(ivs[0].count, 4);
        assert_eq!(ivs[0].stride, 32);
    }

    #[test]
    fn sector_alignment_helper() {
        assert!(sector_aligned(0));
        assert!(sector_aligned(32));
        assert!(!sector_aligned(40));
    }
}
