//! # vecsparse-dlmc
//!
//! A synthetic stand-in for the Deep Learning Matrix Collection (DLMC)
//! subset the paper benchmarks on: the weight matrices of **ResNet-50
//! under magnitude pruning**. The real dataset ships `csrRowPtr` /
//! `csrColInd` files; the kernels under test are data-independent, so
//! what matters is the *shapes* (ResNet-50's 2D-reshaped convolution and
//! FC weights) and the *per-row nonzero structure* at each sparsity
//! level, which the generators in `vecsparse-formats` reproduce
//! (§7.1.1 / Fig. 16 of the paper).
//!
//! The module provides:
//!
//! * [`resnet50_shapes`] / [`transformer_shapes`] — DLMC layer shapes;
//! * [`Benchmark`] / [`suite`] — fully-constructed SpMM/SDDMM benchmark
//!   instances (sparse operand, Blocked-ELL twin, dense operands) at the
//!   paper's sparsity grid;
//! * [`SPARSITIES`] — the evaluation grid {0.5, 0.7, 0.8, 0.9, 0.95, 0.98}.

#![forbid(unsafe_code)]

use vecsparse_formats::{gen, BlockedEll, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;

/// The sparsity grid of the paper's evaluation (§7).
pub const SPARSITIES: [f64; 6] = [0.5, 0.7, 0.8, 0.9, 0.95, 0.98];

/// A sparse-matrix shape drawn from a pruned model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerShape {
    /// Human-readable layer name.
    pub name: &'static str,
    /// Rows of the weight matrix (output channels).
    pub rows: usize,
    /// Columns (input channels × kernel area, reshaped 2-D).
    pub cols: usize,
}

/// The ResNet-50 layer shapes present in the DLMC magnitude-pruning
/// subset (each bottleneck stage contributes its 1×1 reduce, 3×3, and
/// 1×1 expand weights; the list covers every distinct shape).
pub fn resnet50_shapes() -> Vec<LayerShape> {
    vec![
        LayerShape {
            name: "conv2_1x1_reduce",
            rows: 64,
            cols: 256,
        },
        LayerShape {
            name: "conv2_3x3",
            rows: 64,
            cols: 576,
        },
        LayerShape {
            name: "conv2_1x1_expand",
            rows: 256,
            cols: 64,
        },
        LayerShape {
            name: "conv3_1x1_reduce",
            rows: 128,
            cols: 512,
        },
        LayerShape {
            name: "conv3_3x3",
            rows: 128,
            cols: 1152,
        },
        LayerShape {
            name: "conv3_1x1_expand",
            rows: 512,
            cols: 128,
        },
        LayerShape {
            name: "conv4_1x1_reduce",
            rows: 256,
            cols: 1024,
        },
        LayerShape {
            name: "conv4_3x3",
            rows: 256,
            cols: 2304,
        },
        LayerShape {
            name: "conv4_1x1_expand",
            rows: 1024,
            cols: 256,
        },
        LayerShape {
            name: "conv5_1x1_reduce",
            rows: 512,
            cols: 2048,
        },
        LayerShape {
            name: "conv5_3x3",
            rows: 512,
            cols: 4608,
        },
        LayerShape {
            name: "conv5_1x1_expand",
            rows: 2048,
            cols: 512,
        },
        LayerShape {
            name: "fc1000",
            rows: 1000,
            cols: 2048,
        },
    ]
}

/// The transformer-pruning shapes of the DLMC collection: the projection
/// and FFN weight matrices of a base transformer (d_model 512, FFN 2048),
/// which the dataset prunes with the same magnitude criterion. Useful for
/// running the sweeps on attention-style shapes instead of convolutions.
pub fn transformer_shapes() -> Vec<LayerShape> {
    vec![
        LayerShape {
            name: "attn_q_proj",
            rows: 512,
            cols: 512,
        },
        LayerShape {
            name: "attn_k_proj",
            rows: 512,
            cols: 512,
        },
        LayerShape {
            name: "attn_v_proj",
            rows: 512,
            cols: 512,
        },
        LayerShape {
            name: "attn_out_proj",
            rows: 512,
            cols: 512,
        },
        LayerShape {
            name: "ffn_expand",
            rows: 2048,
            cols: 512,
        },
        LayerShape {
            name: "ffn_contract",
            rows: 512,
            cols: 2048,
        },
    ]
}

/// A compact representative subset for sweeps (keeps benchmark wall-clock
/// reasonable while spanning small and large layers).
pub fn representative_shapes() -> Vec<LayerShape> {
    resnet50_shapes()
        .into_iter()
        .filter(|s| {
            matches!(
                s.name,
                "conv2_3x3"
                    | "conv3_1x1_expand"
                    | "conv4_1x1_reduce"
                    | "conv4_3x3"
                    | "conv5_1x1_expand"
                    | "fc1000"
            )
        })
        .collect()
}

/// Round a dimension up to a multiple of `q` (kernels want V- and
/// 8-aligned shapes; DLMC matrices are mostly power-of-two already,
/// `fc1000` being the exception).
fn round_up(x: usize, q: usize) -> usize {
    x.div_ceil(q) * q
}

/// One benchmark instance: a pruned layer at a given grain and sparsity.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Source layer.
    pub shape: LayerShape,
    /// Column-vector grain V.
    pub v: usize,
    /// Target sparsity.
    pub sparsity: f64,
    /// The sparse matrix under column-vector sparse encoding (values are
    /// random per Fig. 16 — the structure comes from the per-row budget).
    pub matrix: VectorSparse<f16>,
}

impl Benchmark {
    /// Construct one benchmark (deterministic in its parameters).
    pub fn build(shape: LayerShape, v: usize, sparsity: f64) -> Benchmark {
        let rows = round_up(shape.rows, v.max(8));
        let cols = round_up(shape.cols, 8);
        let seed = seed_for(shape, v, sparsity);
        Benchmark {
            shape,
            v,
            sparsity,
            matrix: gen::random_vector_sparse::<f16>(rows, cols, v, sparsity, seed),
        }
    }

    /// The Blocked-ELL twin: same problem size and sparsity, block size V
    /// (the Fig. 16 construction for the cuSPARSE baseline).
    pub fn blocked_ell_twin(&self) -> BlockedEll<f16> {
        let block = self.v.max(2);
        let p = self.matrix.pattern();
        let rows = round_up(p.rows(), block);
        let cols = round_up(p.cols(), block);
        gen::random_blocked_ell::<f16>(
            rows,
            cols,
            block,
            self.sparsity,
            seed_for(self.shape, self.v, self.sparsity) ^ 0xE11,
        )
    }

    /// An SDDMM mask with this benchmark's structure.
    pub fn mask(&self) -> SparsityPattern {
        self.matrix.pattern().clone()
    }

    /// Rows after alignment.
    pub fn rows(&self) -> usize {
        self.matrix.rows()
    }

    /// Cols after alignment.
    pub fn cols(&self) -> usize {
        self.matrix.cols()
    }
}

fn seed_for(shape: LayerShape, v: usize, sparsity: f64) -> u64 {
    // Stable, collision-free-enough seeding so every (layer, V, S) cell
    // of the sweep is reproducible.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in shape.name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h ^= ((shape.rows as u64) << 32) | shape.cols as u64;
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= ((v as u64) << 8) | (sparsity * 100.0) as u64;
    h
}

/// The full benchmark suite: every representative layer × grain ×
/// sparsity combination.
pub fn suite(vs: &[usize], sparsities: &[f64]) -> Vec<Benchmark> {
    let mut out = Vec::new();
    for shape in representative_shapes() {
        for &v in vs {
            for &s in sparsities {
                out.push(Benchmark::build(shape, v, s));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_resnet50_like() {
        let shapes = resnet50_shapes();
        assert_eq!(shapes.len(), 13);
        assert!(shapes.iter().any(|s| s.name == "fc1000"));
        // 3x3 layers have 9x the reduce width.
        let c43 = shapes.iter().find(|s| s.name == "conv4_3x3").unwrap();
        assert_eq!(c43.cols, 256 * 9);
    }

    #[test]
    fn benchmark_hits_sparsity_and_alignment() {
        let shape = LayerShape {
            name: "fc1000",
            rows: 1000,
            cols: 2048,
        };
        let b = Benchmark::build(shape, 4, 0.9);
        assert_eq!(b.rows() % 8, 0);
        assert_eq!(b.cols() % 8, 0);
        let got = b.matrix.pattern().sparsity();
        assert!((got - 0.9).abs() < 0.01, "sparsity {got}");
    }

    #[test]
    fn benchmark_is_deterministic() {
        let shape = LayerShape {
            name: "conv2_3x3",
            rows: 64,
            cols: 576,
        };
        let a = Benchmark::build(shape, 8, 0.7);
        let b = Benchmark::build(shape, 8, 0.7);
        assert_eq!(a.matrix, b.matrix);
        let c = Benchmark::build(shape, 8, 0.8);
        assert_ne!(a.matrix.pattern(), c.matrix.pattern());
    }

    #[test]
    fn blocked_ell_twin_matches_problem() {
        let shape = LayerShape {
            name: "conv3_3x3",
            rows: 128,
            cols: 1152,
        };
        let b = Benchmark::build(shape, 4, 0.9);
        let ell = b.blocked_ell_twin();
        assert_eq!(ell.rows(), b.rows());
        assert_eq!(ell.cols(), b.cols());
        assert_eq!(ell.block(), 4);
        // Same sparsity regime: blocks per row = ceil(cols/4 * 0.1).
        let expected = (((b.cols() / 4) as f64) * 0.1).ceil() as usize;
        assert_eq!(ell.blocks_per_row(), expected);
    }

    #[test]
    fn transformer_shapes_are_square_or_ffn() {
        let shapes = transformer_shapes();
        assert_eq!(shapes.len(), 6);
        assert!(shapes.iter().filter(|s| s.rows == s.cols).count() >= 4);
        let b = Benchmark::build(shapes[4], 8, 0.9);
        assert_eq!(b.rows() % 8, 0);
        assert!((b.matrix.pattern().sparsity() - 0.9).abs() < 0.01);
    }

    #[test]
    fn suite_covers_grid() {
        let s = suite(&[2, 4], &[0.5, 0.9]);
        assert_eq!(s.len(), representative_shapes().len() * 4);
        assert!(s.iter().all(|b| matches!(b.v, 2 | 4)));
    }
}
