//! Deliberately broken (and one deliberately clean) miniature kernels,
//! one per proof obligation, so CI can pin each [`ProofFailure`] to the
//! exact kernel pattern that must trigger it — and assert that failing
//! kernels are never handed a memoization signature.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cert::{certify, CertifyOptions, ProofFailure, WaveVerdict};
use vecsparse_gpu_sim::sig::Fingerprint;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, ElemWidth, InstrKind, KernelSpec, LaunchConfig, MemPool, Program, Site, WVec,
    NO_LANES,
};

const LANES: usize = 32;

/// A clean streaming kernel: offsets are a pure function of the CTA id.
/// The positive control — certification must succeed.
struct StreamKernel {
    input: BufferId,
    output: BufferId,
    grid: usize,
    sites: (Site, Site, Site),
    static_len: u32,
}

impl StreamKernel {
    fn stage(mem: &mut MemPool, grid: usize) -> Self {
        let input = mem.alloc_ghost(ElemWidth::B32, grid * LANES);
        let output = mem.alloc_ghost(ElemWidth::B32, grid * LANES);
        let mut p = Program::new();
        let sites = (p.site("ldg", 0), p.site("fma", 0), p.site("stg", 0));
        StreamKernel {
            input,
            output,
            grid,
            sites,
            static_len: p.static_len(),
        }
    }
}

impl KernelSpec for StreamKernel {
    fn name(&self) -> String {
        "fixture-stream".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.grid,
            warps_per_cta: 1,
            regs_per_thread: 32,
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let cta_id = cta.cta_id;
        let mut w = cta.warp(0);
        let mut offs = NO_LANES;
        for (l, o) in offs.iter_mut().enumerate() {
            *o = (cta_id * LANES + l) as u32;
        }
        let v = w.ldg(self.sites.0, self.input, &offs, 1, &[]);
        let t = w.math(self.sites.1, InstrKind::Ffma, 1, &[v.tok()]);
        let mut out = WVec::zeros(1);
        out.set_tok(t);
        w.stg(self.sites.2, self.output, &offs, &out, &[t]);
    }
}

/// A gather whose load offsets come from operand *values*: classic
/// data-dependent addressing. Trace generation must read the pool, so
/// certification must fail with [`ProofFailure::ValueDependentTrace`].
struct DataGatherKernel {
    indices: BufferId,
    data: BufferId,
    output: BufferId,
    grid: usize,
    sites: (Site, Site),
    static_len: u32,
}

impl DataGatherKernel {
    fn stage(mem: &mut MemPool, grid: usize) -> Self {
        // The indirection table needs real values — that is the point.
        let idx: Vec<f32> = (0..grid * LANES).map(|i| ((i * 7) % 64) as f32).collect();
        let indices = mem.alloc_init(ElemWidth::B32, idx);
        let data = mem.alloc_ghost(ElemWidth::B32, 64);
        let output = mem.alloc_ghost(ElemWidth::B32, grid * LANES);
        let mut p = Program::new();
        let sites = (p.site("ldg", 0), p.site("stg", 0));
        DataGatherKernel {
            indices,
            data,
            output,
            grid,
            sites,
            static_len: p.static_len(),
        }
    }
}

impl KernelSpec for DataGatherKernel {
    fn name(&self) -> String {
        "fixture-data-gather".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.grid,
            warps_per_cta: 1,
            regs_per_thread: 32,
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let cta_id = cta.cta_id;
        let mut w = cta.warp(0);
        // Address computation reads the indirection table's *values* in
        // both modes — the host-side structural shortcut the shipped
        // kernels use (row pointers kept on the host) is deliberately
        // not taken here.
        let mut offs = NO_LANES;
        for (l, o) in offs.iter_mut().enumerate() {
            let j = w.mem().read(self.indices, cta_id * LANES + l);
            *o = j as u32;
        }
        let v = w.ldg(self.sites.0, self.data, &offs, 1, &[]);
        let mut store_offs = NO_LANES;
        for (l, o) in store_offs.iter_mut().enumerate() {
            *o = (cta_id * LANES + l) as u32;
        }
        let mut out = WVec::zeros(1);
        out.set_tok(v.tok());
        w.stg(self.sites.1, self.output, &store_offs, &out, &[v.tok()]);
    }
}

/// A kernel with hidden interior-mutable state: every `run_cta` call
/// shifts its addresses by a live counter, so two generations of the
/// same CTA differ. Certification must fail with
/// [`ProofFailure::NonReproducibleTrace`].
struct DriftingKernel {
    input: BufferId,
    output: BufferId,
    grid: usize,
    len: usize,
    calls: AtomicU64,
    sites: (Site, Site),
    static_len: u32,
}

impl DriftingKernel {
    fn stage(mem: &mut MemPool, grid: usize) -> Self {
        let len = grid * LANES * 2;
        let input = mem.alloc_ghost(ElemWidth::B32, len);
        let output = mem.alloc_ghost(ElemWidth::B32, len);
        let mut p = Program::new();
        let sites = (p.site("ldg", 0), p.site("stg", 0));
        DriftingKernel {
            input,
            output,
            grid,
            len,
            calls: AtomicU64::new(0),
            sites,
            static_len: p.static_len(),
        }
    }
}

impl KernelSpec for DriftingKernel {
    fn name(&self) -> String {
        "fixture-drifting".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.grid,
            warps_per_cta: 1,
            regs_per_thread: 32,
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let cta_id = cta.cta_id;
        // Hidden state: the address base drifts with every invocation.
        let drift = (self.calls.fetch_add(1, Ordering::Relaxed) as usize * LANES) % self.len;
        let mut w = cta.warp(0);
        let mut offs = NO_LANES;
        for (l, o) in offs.iter_mut().enumerate() {
            *o = ((cta_id * LANES + l + drift) % self.len) as u32;
        }
        let v = w.ldg(self.sites.0, self.input, &offs, 1, &[]);
        let mut out = WVec::zeros(1);
        out.set_tok(v.tok());
        w.stg(self.sites.1, self.output, &offs, &out, &[v.tok()]);
    }
}

/// What a fixture's certification must produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expected {
    Provable,
    ValueDependent,
    NonReproducible,
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    Stream,
    DataGather,
    Drifting,
}

/// One waveprove fixture: a miniature kernel plus the verdict its
/// certification must reach.
pub struct WaveFixture {
    name: &'static str,
    kind: Kind,
    expected: Expected,
}

impl WaveFixture {
    /// Fixture name for reports.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Human-readable expected outcome.
    pub fn expected_verdict(&self) -> &'static str {
        match self.expected {
            Expected::Provable => "provable",
            Expected::ValueDependent => "value-dependent-trace",
            Expected::NonReproducible => "non-reproducible-trace",
        }
    }

    /// Stage the fixture kernel into a fresh pool and certify it,
    /// checking the verdict (and that unprovable kernels receive no
    /// memoization signature).
    pub fn verify(&self) -> Result<(), String> {
        let mut mem = MemPool::new();
        let grid = 8;
        let kernel: Box<dyn KernelSpec> = match self.kind {
            Kind::Stream => Box::new(StreamKernel::stage(&mut mem, grid)),
            Kind::DataGather => Box::new(DataGatherKernel::stage(&mut mem, grid)),
            Kind::Drifting => Box::new(DriftingKernel::stage(&mut mem, grid)),
        };
        let cert = certify(&mem, kernel.as_ref(), &CertifyOptions::default());
        let sig = cert.launch_sig(Fingerprint::default());
        match (self.expected, &cert.verdict) {
            (Expected::Provable, WaveVerdict::Provable) => {
                if sig.is_none() {
                    return Err("provable fixture produced no launch signature".into());
                }
                Ok(())
            }
            (
                Expected::ValueDependent,
                WaveVerdict::NotProvable(ProofFailure::ValueDependentTrace { .. }),
            )
            | (
                Expected::NonReproducible,
                WaveVerdict::NotProvable(ProofFailure::NonReproducibleTrace { .. }),
            ) => {
                if sig.is_some() {
                    return Err(format!(
                        "unprovable fixture {} was handed a launch signature",
                        self.name
                    ));
                }
                Ok(())
            }
            (_, verdict) => Err(format!(
                "expected {}, got {:?}",
                self.expected_verdict(),
                verdict
            )),
        }
    }
}

/// Every waveprove fixture: the provable control plus one kernel per
/// proof failure.
pub fn all_fixtures() -> Vec<WaveFixture> {
    vec![
        WaveFixture {
            name: "stream-control",
            kind: Kind::Stream,
            expected: Expected::Provable,
        },
        WaveFixture {
            name: "data-dependent-gather",
            kind: Kind::DataGather,
            expected: Expected::ValueDependent,
        },
        WaveFixture {
            name: "drifting-addresses",
            kind: Kind::Drifting,
            expected: Expected::NonReproducible,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fixture_verifies() {
        for fx in all_fixtures() {
            fx.verify().unwrap_or_else(|e| panic!("{}: {e}", fx.name()));
        }
    }

    #[test]
    fn certification_is_deterministic() {
        let mut mem = MemPool::new();
        let k = StreamKernel::stage(&mut mem, 16);
        let a = certify(&mem, &k, &CertifyOptions::default());
        let b = certify(&mem, &k, &CertifyOptions::default());
        assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
        assert_eq!(a.program_hash, b.program_hash);
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn pool_layout_changes_the_fingerprint() {
        let mut m1 = MemPool::new();
        let k1 = StreamKernel::stage(&mut m1, 8);
        let mut m2 = MemPool::new();
        // A padding allocation shifts every later base address.
        m2.alloc_ghost(ElemWidth::B32, 1024);
        let k2 = StreamKernel::stage(&mut m2, 8);
        let c1 = certify(&m1, &k1, &CertifyOptions::default());
        let c2 = certify(&m2, &k2, &CertifyOptions::default());
        assert!(c1.is_provable() && c2.is_provable());
        assert_ne!(
            c1.trace_fingerprint, c2.trace_fingerprint,
            "sector streams moved, fingerprint must move with them"
        );
    }

    #[test]
    fn grid_size_splits_shape_classes() {
        let mut mem = MemPool::new();
        let k = StreamKernel::stage(&mut mem, 8);
        let cert = certify(&mem, &k, &CertifyOptions::default());
        assert!(cert.is_provable());
        // Every CTA issues the same instruction shape.
        assert_eq!(cert.cta_classes, 1);
        assert!(cert.ctas_checked >= 2);
        assert!(cert.instrs_checked > 0);
    }
}
