//! # vecsparse-waveprove
//!
//! Static wave-equivalence certificates for the performance simulator —
//! the analysis that turns wave memoization from a heuristic into a
//! certified transformation.
//!
//! The simulator's phase-split pipeline times every SM wave against cold
//! private caches, so a wave's timing artifacts are a pure function of
//! (machine config, L1 geometry, the wave's traces). What that leaves
//! open is whether the *traces* are a pure function of anything small.
//! [`certify`] closes the gap: it proves, per kernel, that every
//! timing-relevant input to the scheduler — the PC issue sequence, the
//! address/sector stream per memory site, bank-conflict degrees, the
//! TCU op mix — is fully determined by (program, operand structure,
//! pool layout, CTA id) and never by operand *values*. The proof
//! obligations, each checked over a sampled set of CTAs:
//!
//! 1. **Value independence** — performance-mode trace generation
//!    performs zero [`MemPool::read`](vecsparse_gpu_sim::MemPool::read)
//!    calls (counted by the pool itself). A kernel that reads a value to
//!    compute an address or a loop bound is data-dependent and gets
//!    [`ProofFailure::ValueDependentTrace`].
//! 2. **Reproducibility** — generating the trace twice yields
//!    bit-identical streams (hashed with the 128-bit dual-FNV
//!    [`Fingerprint`](vecsparse_gpu_sim::sig::Fingerprint)). Hidden
//!    state (RNG, wall clock, interior-mutable counters) surfaces as
//!    [`ProofFailure::NonReproducibleTrace`].
//! 3. **Def-use well-formedness** — every dependency token points at an
//!    earlier instruction in its warp's stream, so the scheduler's
//!    scoreboard walk is itself structurally determined.
//!
//! A passing kernel receives a [`WaveCertificate`] whose
//! [`launch_sig`](WaveCertificate::launch_sig) composes the program
//! hash, the sampled-trace fingerprint, and a caller-supplied operand
//! fingerprint into the [`LaunchSig`](vecsparse_gpu_sim::LaunchSig)
//! that keys the memoizer. Kernels that fail any obligation get
//! [`WaveVerdict::NotProvable`], produce no signature, and are simply
//! simulated the honest way — exemption, not error.
//!
//! The dynamic backstop lives in the memoizer itself: `VECSPARSE_AUDIT=n`
//! re-simulates every n-th memoized wave and asserts bit-identity,
//! mirroring `vecsparse-precision`'s shadow-vs-certificate gate.
//!
//! [`fixtures::all_fixtures`] provides miniature kernels that *must*
//! fail each obligation (plus a provable control), so CI can pin every
//! verdict to the exact failure that should trigger it.

#![forbid(unsafe_code)]

pub mod cert;
pub mod fixtures;

pub use cert::{certify, CertifyOptions, ProofFailure, WaveCertificate, WaveVerdict};
pub use fixtures::{all_fixtures, WaveFixture};
