//! The certification pass: proof obligations over sampled CTA traces.

use vecsparse_gpu_sim::sig::{fnv1a_u32s, Fingerprint, FingerprintHasher, FNV_OFFSET};
use vecsparse_gpu_sim::{CtaCtx, KernelSpec, LaunchSig, MemPool, Mode, Tok, WarpTrace};

/// Knobs for one certification run.
#[derive(Clone, Copy, Debug)]
pub struct CertifyOptions {
    /// How many CTAs of the grid to check (evenly spaced, always
    /// including the first and last — edge CTAs carry the tail
    /// predication, which is exactly where shape classes split).
    pub max_ctas: usize,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions { max_ctas: 4 }
    }
}

/// Why a kernel's wave equivalence could not be proven.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofFailure {
    /// Performance-mode trace generation read operand values from the
    /// pool — addresses or control flow depend on data.
    ValueDependentTrace {
        /// CTA whose generation read values.
        cta_id: usize,
        /// Number of value reads observed.
        reads: u64,
    },
    /// Two generations of the same CTA's trace differ — the kernel
    /// carries hidden state (RNG, clock, interior-mutable counters).
    NonReproducibleTrace {
        /// CTA whose generations diverged.
        cta_id: usize,
    },
    /// A dependency token points at the consuming instruction or later —
    /// the scoreboard walk is not structurally determined.
    DanglingDependency {
        /// CTA containing the broken token.
        cta_id: usize,
        /// Warp within the CTA.
        warp: usize,
        /// Dynamic instruction index of the consumer.
        index: usize,
    },
}

impl std::fmt::Display for ProofFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofFailure::ValueDependentTrace { cta_id, reads } => write!(
                f,
                "value-dependent trace: CTA {cta_id} read {reads} operand value(s) \
                 during performance-mode trace generation"
            ),
            ProofFailure::NonReproducibleTrace { cta_id } => write!(
                f,
                "non-reproducible trace: CTA {cta_id} generated two different \
                 instruction streams from identical inputs"
            ),
            ProofFailure::DanglingDependency {
                cta_id,
                warp,
                index,
            } => write!(
                f,
                "dangling dependency: CTA {cta_id} warp {warp} instruction {index} \
                 consumes a token at or after its own position"
            ),
        }
    }
}

/// The outcome of certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaveVerdict {
    /// Every obligation held over the sampled CTAs: wave timing is a
    /// pure function of the structural signature.
    Provable,
    /// An obligation failed; the kernel is exempt from memoization.
    NotProvable(ProofFailure),
}

/// A wave-equivalence certificate for one staged kernel.
#[derive(Clone, Debug)]
pub struct WaveCertificate {
    /// Kernel name.
    pub kernel: String,
    /// Grid size at certification time.
    pub grid: usize,
    /// Hash of the kernel's static program listing (or of its name and
    /// static size when it keeps no [`Program`](vecsparse_gpu_sim::Program)).
    pub program_hash: u64,
    /// Dual-FNV fingerprint over every checked CTA's full trace content:
    /// pcs, op kinds, dependency tokens, sector streams, conflict
    /// degrees, active lanes.
    pub trace_fingerprint: Fingerprint,
    /// CTAs checked.
    pub ctas_checked: usize,
    /// Total trace instructions checked.
    pub instrs_checked: u64,
    /// Distinct structural shape classes among checked CTAs (interior
    /// CTAs typically share one; tail CTAs form their own).
    pub cta_classes: usize,
    /// The verdict.
    pub verdict: WaveVerdict,
}

impl WaveCertificate {
    /// True when every obligation held.
    pub fn is_provable(&self) -> bool {
        matches!(self.verdict, WaveVerdict::Provable)
    }

    /// Compose the memoization signature: certificate identity (program
    /// hash + sampled-trace fingerprint) plus a caller-supplied operand
    /// fingerprint covering the *full* operand structure and pool layout
    /// (the certificate only sampled CTAs; the operand fingerprint must
    /// distinguish operands the sample cannot). `None` for unprovable
    /// kernels — they must never be memoized.
    pub fn launch_sig(&self, operand_fp: Fingerprint) -> Option<LaunchSig> {
        if !self.is_provable() {
            return None;
        }
        let mut h = FingerprintHasher::new();
        h.write_u64(self.program_hash);
        h.write_fingerprint(self.trace_fingerprint);
        h.write_fingerprint(operand_fp);
        Some(LaunchSig(h.finish()))
    }

    /// One-line verdict for reports.
    pub fn summary(&self) -> String {
        match &self.verdict {
            WaveVerdict::Provable => format!(
                "provable (sig over {} CTAs / {} instrs, {} class(es))",
                self.ctas_checked, self.instrs_checked, self.cta_classes
            ),
            WaveVerdict::NotProvable(reason) => format!("NOT PROVABLE: {reason}"),
        }
    }

    /// Multi-line rendering for `vsan waveprove`.
    pub fn render(&self) -> String {
        let mut out = format!("== waveprove {} (grid {})\n", self.kernel, self.grid);
        match &self.verdict {
            WaveVerdict::Provable => {
                out.push_str(&format!(
                    "   verdict: PROVABLE — timing inputs determined by structure\n   \
                     program {:016x}, traces {}, {} CTA(s) / {} instr(s), {} shape class(es)\n",
                    self.program_hash,
                    self.trace_fingerprint.render(),
                    self.ctas_checked,
                    self.instrs_checked,
                    self.cta_classes
                ));
            }
            WaveVerdict::NotProvable(reason) => {
                out.push_str(&format!(
                    "   verdict: NOT PROVABLE — {reason}\n   \
                     (kernel is exempt from memoization and always simulated)\n"
                ));
            }
        }
        out
    }
}

/// Evenly-spaced CTA sample including both edges (the sanitizer's
/// sampling discipline — edge CTAs carry the tail predication).
fn sample_ctas(grid: usize, max: usize) -> Vec<usize> {
    let max = max.max(1);
    if grid <= max {
        return (0..grid).collect();
    }
    let mut out: Vec<usize> = (0..max)
        .map(|i| i * (grid - 1) / (max - 1).max(1))
        .collect();
    out.dedup();
    out
}

fn tok_bits(t: Tok) -> u64 {
    t.index().map_or(u64::MAX, |i| i as u64)
}

/// Dual-FNV fingerprint over the full content of one CTA's traces:
/// everything the wave scheduler reads.
fn trace_fingerprint(traces: &[WarpTrace]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_u64(traces.len() as u64);
    for t in traces {
        h.write_u64(t.instrs.len() as u64);
        for i in &t.instrs {
            h.write_u32(i.pc);
            h.write_bytes(i.kind.mnemonic().as_bytes());
            for d in i.deps {
                h.write_u64(tok_bits(d));
            }
            h.write_u64(tok_bits(i.acc_dep));
            match t.mem_of(i) {
                Some(m) => {
                    h.write_u8(1);
                    h.write_u8(m.global as u8);
                    h.write_u8(m.store as u8);
                    h.write_u8(m.conflict);
                    h.write_u8(m.active_lanes);
                    h.write_u64(m.sectors.len() as u64);
                    for &s in &m.sectors {
                        h.write_u64(s);
                    }
                }
                None => h.write_u8(0),
            }
        }
    }
    h.finish()
}

/// Structural shape class of one CTA: pcs and op kinds only, addresses
/// excluded — interior CTAs of a regular kernel share one class, tail
/// CTAs split off their own.
fn shape_class(traces: &[WarpTrace]) -> u64 {
    let mut h = FNV_OFFSET;
    for t in traces {
        h = fnv1a_u32s(h, [t.instrs.len() as u32]);
        for i in &t.instrs {
            h = fnv1a_u32s(h, [i.pc]);
            h = fnv1a_u32s(h, i.kind.mnemonic().bytes().map(|b| b as u32));
        }
    }
    h
}

/// First dangling dependency in a CTA's traces, as (warp, instr index).
fn dangling_dep(traces: &[WarpTrace]) -> Option<(usize, usize)> {
    for (w, t) in traces.iter().enumerate() {
        for (idx, i) in t.instrs.iter().enumerate() {
            let bad = i
                .deps
                .iter()
                .chain(std::iter::once(&i.acc_dep))
                .any(|d| d.index().is_some_and(|di| di >= idx));
            if bad {
                return Some((w, idx));
            }
        }
    }
    None
}

/// Certify a staged kernel's wave equivalence.
///
/// `mem` is the pool the kernel was staged into; it is only read. Each
/// sampled CTA's performance-mode trace is generated twice — once inside
/// a value-read window, once for the reproducibility comparison — and
/// checked against the proof obligations in order. The first failure
/// decides the verdict; a clean pass over every sampled CTA yields
/// [`WaveVerdict::Provable`] and a trace fingerprint that feeds
/// [`WaveCertificate::launch_sig`].
pub fn certify<K: KernelSpec + ?Sized>(
    mem: &MemPool,
    kernel: &K,
    opts: &CertifyOptions,
) -> WaveCertificate {
    let lc = kernel.launch_config();
    let program_hash = kernel.program().map_or_else(
        || {
            // No listing kept: fall back to name + static size. Weaker
            // identity, but still collision-checked by the trace
            // fingerprint riding alongside it in the signature.
            let name = kernel.name();
            fnv1a_u32s(
                fnv1a_u32s(FNV_OFFSET, name.bytes().map(|b| b as u32)),
                [lc.static_instrs],
            )
        },
        |p| p.listing_hash(),
    );

    let gen_trace = |cta_id: usize| -> Vec<WarpTrace> {
        let mut cta = CtaCtx::new(
            cta_id,
            Mode::Performance,
            mem,
            lc.warps_per_cta,
            lc.smem_elems,
            lc.smem_elem_bytes,
        );
        kernel.run_cta(&mut cta);
        let (t, _) = cta.finish();
        t
    };

    let mut fp = FingerprintHasher::new();
    fp.write_u64(program_hash);
    let mut cert = WaveCertificate {
        kernel: kernel.name(),
        grid: lc.grid,
        program_hash,
        trace_fingerprint: Fingerprint::default(),
        ctas_checked: 0,
        instrs_checked: 0,
        cta_classes: 0,
        verdict: WaveVerdict::Provable,
    };
    let mut classes: Vec<u64> = Vec::new();

    for cta_id in sample_ctas(lc.grid, opts.max_ctas) {
        // Obligation 1 — value independence.
        let before = mem.value_reads();
        let first = gen_trace(cta_id);
        let reads = mem.value_reads() - before;
        if reads > 0 {
            cert.verdict =
                WaveVerdict::NotProvable(ProofFailure::ValueDependentTrace { cta_id, reads });
            return cert;
        }
        // Obligation 2 — reproducibility.
        let second = gen_trace(cta_id);
        let h1 = trace_fingerprint(&first);
        if h1 != trace_fingerprint(&second) {
            cert.verdict = WaveVerdict::NotProvable(ProofFailure::NonReproducibleTrace { cta_id });
            return cert;
        }
        // Obligation 3 — def-use well-formedness.
        if let Some((warp, index)) = dangling_dep(&first) {
            cert.verdict = WaveVerdict::NotProvable(ProofFailure::DanglingDependency {
                cta_id,
                warp,
                index,
            });
            return cert;
        }

        cert.instrs_checked += first.iter().map(|t| t.instrs.len() as u64).sum::<u64>();
        let class = shape_class(&first);
        if !classes.contains(&class) {
            classes.push(class);
        }
        fp.write_u64(cta_id as u64);
        fp.write_fingerprint(h1);
        cert.ctas_checked += 1;
    }

    cert.cta_classes = classes.len();
    cert.trace_fingerprint = fp.finish();
    cert
}
