//! Tier-1 precision gates.
//!
//! Two invariants hold for every kernel in the registry:
//!
//! 1. **Soundness** — the static analyzer's certificate dominates the
//!    error the fp64 shadow execution actually observes. A violation is
//!    a bug in the analyzer's transfer functions, not in the kernel.
//! 2. **Plausibility** — the certified relative error is in the regime
//!    the paper reports for reduced-precision tensor-core kernels
//!    (small multiples of the binary16 rounding unit), not a vacuous
//!    bound.
//!
//! Plus a perturbation-freedom gate: turning shadow execution on must
//! not change a single output bit or a single estimated cycle.

use vecsparse::registry::{self, KernelId, Shape, ALL_KERNELS};
use vecsparse::softmax::SparseSoftmax;
use vecsparse::spmm::OctetSpmm;
use vecsparse_formats::{gen, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, Launch, MemPool, Mode};
use vecsparse_precision::{analyze, check_soundness, shadow_run};

/// Kernels whose stores carry fp64 twins (the dynamic side observes
/// them); the rest are covered by the static side only.
fn is_twinned(id: KernelId) -> bool {
    matches!(
        id,
        KernelId::SpmmDense
            | KernelId::SpmmBlockedEll
            | KernelId::SpmmFpuSubwarp
            | KernelId::SpmmWmma
            | KernelId::SpmmOctet
            | KernelId::SddmmOctetReg
            | KernelId::SddmmOctetShfl
            | KernelId::SddmmOctetArch
            | KernelId::SoftmaxSparse
            | KernelId::SoftmaxDense
    )
}

#[test]
fn every_registry_kernel_certificate_is_sound_and_plausible() {
    let shape = Shape::default();
    for id in ALL_KERNELS {
        let model = registry::model_for(id, &shape);
        let (analysis, report) =
            registry::with_kernel_mut(id, &shape, Mode::Functional, |mem, kern| {
                let prog = kern.program().expect("registry kernels expose a Program");
                (analyze(id.label(), prog, &model), shadow_run(mem, kern))
            });

        // No real kernel trips a precision lint at the default shape.
        assert!(
            analysis.is_clean(),
            "{}: unexpected lints {:?}",
            id.label(),
            analysis.diags
        );

        let cert = &analysis.certificate;
        assert!(
            cert.abs_error_bound.is_finite() && cert.abs_error_bound > 0.0,
            "{}: degenerate bound {}",
            id.label(),
            cert.abs_error_bound
        );
        // Paper-plausible: binary16 datapaths certify relative error at
        // the scale of a few rounding units, far below 1%.
        assert!(
            cert.rel_error_bound < 1e-2,
            "{}: implausible rel bound {}",
            id.label(),
            cert.rel_error_bound
        );

        if let Err(e) = check_soundness(cert, &report) {
            panic!("{e}");
        }
        assert_eq!(
            report.has_observations(),
            is_twinned(id),
            "{}: twinning mismatch ({} samples)",
            id.label(),
            report.samples
        );
    }
}

#[test]
fn shadow_execution_is_perturbation_free() {
    let gpu = GpuConfig::small();
    let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.75, 7);
    let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 8);
    let x = gen::random_vector_sparse::<f16>(16, 64, 4, 0.5, 9);

    // SpMM: every output bit identical with shadow execution on vs off.
    let spmm_bits = |shadow: bool| -> Vec<u32> {
        let mut mem = MemPool::new();
        let kern = OctetSpmm::new(&mut mem, &a, &b, Mode::Functional);
        let launch = Launch::new(&mut mem, &kern).gpu(&gpu);
        if shadow { launch.shadow() } else { launch }.run();
        mem.contents(kern.output())
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };
    assert_eq!(spmm_bits(false), spmm_bits(true));

    // Softmax too (the f32 datapath with the trickiest rounding).
    let softmax_bits = |shadow: bool| -> Vec<u16> {
        let mut mem = MemPool::new();
        let kern = SparseSoftmax::new(&mut mem, &x, Mode::Functional);
        let launch = Launch::new(&mut mem, &kern).gpu(&gpu);
        if shadow { launch.shadow() } else { launch }.run();
        kern.result(&mem)
            .values()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };
    assert_eq!(softmax_bits(false), softmax_bits(true));

    // Performance estimates are bit-identical whether or not a shadow
    // run happened in the same pool first: the twins leave no residue
    // the performance model can see.
    let cycles = |shadow_first: bool| -> u64 {
        let mut mem = MemPool::new();
        if shadow_first {
            let warm = OctetSpmm::new(&mut mem, &a, &b, Mode::Functional);
            Launch::new(&mut mem, &warm).shadow().run();
        }
        let kern = OctetSpmm::new(&mut mem, &a, &b, Mode::Performance);
        let out = Launch::new(&mut mem, &kern).gpu(&gpu).performance().run();
        out.profile
            .expect("performance launch profiles")
            .cycles
            .to_bits()
    };
    assert_eq!(cycles(false), cycles(true));
}
