//! Integration tests for the engine's plan/cache/tuner workflow: cache
//! hit/miss accounting, bit-identity of planned execution against the
//! scalar references for every algorithm (including `Auto`), batch
//! semantics, and the cached-plan performance claim against the legacy
//! throwaway-context-per-element batch path.

use proptest::prelude::*;
use std::time::Instant;
use vecsparse::engine::Context;
use vecsparse::{SddmmAlgo, SpmmAlgo};
use vecsparse_formats::{gen, reference, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;

/// Strategy shared with `tests/properties.rs`: plausible small problems
/// with rows divisible by V.
fn vs_params() -> impl Strategy<Value = (usize, usize, usize, f64, u64)> {
    (
        1usize..4,
        1usize..4,
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        0.2f64..0.95,
        any::<u64>(),
    )
        .prop_map(|(brm, cm, v, s, seed)| (brm * 8.max(v), cm * 16, v, s, seed))
        .prop_map(|(rows, cols, v, s, seed)| (rows.div_ceil(v) * v, cols, v, s, seed))
}

#[test]
fn one_shot_auto_goes_through_the_plan_cache() {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.8, 9);
    let b = gen::random_dense::<f16>(64, 32, Layout::RowMajor, 10);
    let _ = ctx.spmm(&a, &b, SpmmAlgo::Auto);
    let first = ctx.stats();
    assert_eq!(first.cache_misses, 1);
    assert!(first.tuner_launches >= 2, "tuner profiled candidates");
    // Same descriptor again: answered from the cache, no new launches.
    let _ = ctx.spmm(&a, &b, SpmmAlgo::Auto);
    let second = ctx.stats();
    assert_eq!(second.cache_hits, 1);
    assert_eq!(second.tuner_launches, first.tuner_launches);
    // A different sparsity bucket is a different problem: re-tune.
    let a2 = gen::random_vector_sparse::<f16>(32, 64, 4, 0.4, 9);
    let _ = ctx.spmm(&a2, &b, SpmmAlgo::Auto);
    assert_eq!(ctx.stats().cache_misses, 2);
}

#[test]
fn sddmm_auto_caches_per_descriptor_too() {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let mask = gen::random_pattern(32, 48, 4, 0.7, 11);
    let a = gen::random_dense::<f16>(32, 32, Layout::RowMajor, 12);
    let b = gen::random_dense::<f16>(32, 48, Layout::ColMajor, 13);
    let got = ctx.sddmm(&a, &b, &mask, SddmmAlgo::Auto);
    assert_eq!(ctx.stats().cache_misses, 1);
    let again = ctx.sddmm(&a, &b, &mask, SddmmAlgo::Auto);
    assert_eq!(ctx.stats().cache_hits, 1);
    assert_eq!(got.values(), again.values());
    let want = reference::sddmm(&a, &b, &mask);
    assert_eq!(got.values(), want.values());
}

#[test]
fn spmm_batch_matches_sequential_runs() {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.8, 20);
    let batch: Vec<_> = (0..6u64)
        .map(|i| gen::random_dense::<f16>(64, 40, Layout::RowMajor, 21 + i))
        .collect();
    let plan = ctx.plan_spmm(&a, 40, SpmmAlgo::Octet);
    let batched = plan.run_batch(&batch);
    assert_eq!(batched.len(), batch.len());
    for (b, got) in batch.iter().zip(&batched) {
        assert_eq!(got.max_abs_diff(&plan.run(b)), 0.0);
        assert_eq!(got.max_abs_diff(&reference::spmm_vs(&a, b)), 0.0);
    }
}

#[test]
fn sddmm_batch_matches_sequential_runs() {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let mask = gen::random_pattern(32, 48, 4, 0.6, 30);
    let a_batch: Vec<_> = (0..4u64)
        .map(|i| gen::random_dense::<f16>(32, 32, Layout::RowMajor, 31 + i))
        .collect();
    let b_batch: Vec<_> = (0..4u64)
        .map(|i| gen::random_dense::<f16>(32, 48, Layout::ColMajor, 41 + i))
        .collect();
    let plan = ctx.plan_sddmm(&mask, 32, SddmmAlgo::OctetReg);
    let batched = plan.run_batch(&a_batch, &b_batch);
    for ((a, b), got) in a_batch.iter().zip(&b_batch).zip(&batched) {
        assert_eq!(got.values(), plan.run(a, b).values());
        assert_eq!(got.values(), reference::sddmm(a, b, &mask).values());
    }
}

/// The ISSUE's headline perf claim: re-executing a cached plan over a
/// 16-element batch launches the tuner zero times and beats the legacy
/// batch path (the removed `batch::spmm_batch`, inlined here: a fresh
/// throwaway context per element, re-planning, re-encoding and
/// re-tuning each time) by at least 2x host wall time.
#[test]
fn cached_plan_batch_beats_legacy_batch() {
    let a = gen::random_vector_sparse::<f16>(64, 128, 4, 0.9, 50);
    let batch: Vec<_> = (0..16u64)
        .map(|i| gen::random_dense::<f16>(128, 64, Layout::RowMajor, 51 + i))
        .collect();

    let ctx = Context::builder().build();
    let plan = ctx.plan_spmm(&a, 64, SpmmAlgo::Auto);
    let warm = plan.run_batch(&batch); // first run: already staged + tuned
    let launches_before = ctx.stats().tuner_launches;

    let t0 = Instant::now();
    let cached = plan.run_batch(&batch);
    let cached_time = t0.elapsed();
    assert_eq!(
        ctx.stats().tuner_launches,
        launches_before,
        "second batch run must not tune"
    );

    let t1 = Instant::now();
    let legacy: Vec<_> = batch
        .iter()
        .map(|b| {
            Context::builder()
                .build()
                .plan_spmm(&a, b.cols(), SpmmAlgo::Auto)
                .run(b)
        })
        .collect();
    let legacy_time = t1.elapsed();

    for ((w, c), l) in warm.iter().zip(&cached).zip(&legacy) {
        assert_eq!(w.max_abs_diff(c), 0.0);
        assert_eq!(w.max_abs_diff(l), 0.0);
    }
    assert!(
        legacy_time >= cached_time * 2,
        "deprecated batch path ({legacy_time:?}) should be at least 2x slower \
         than cached-plan re-execution ({cached_time:?})"
    );
}

/// Acceptance criterion: `SpmmAlgo::Auto` never profiles worse than the
/// worst fixed algorithm on (scaled-down) Fig. 17 sweep shapes.
#[test]
fn auto_never_profiles_worse_than_worst_fixed() {
    let ctx = Context::builder().gpu(GpuConfig::small()).build();
    let shapes: &[(usize, usize, usize, f64)] = &[
        (64, 128, 2, 0.7),
        (64, 128, 4, 0.9),
        (64, 128, 8, 0.9),
        (128, 64, 4, 0.5),
        (64, 64, 4, 0.98),
    ];
    for &(m, k, v, s) in shapes {
        let a = gen::random_vector_sparse::<f16>(m, k, v, s, 60);
        let b = gen::random_dense::<f16>(k, 64, Layout::RowMajor, 61);
        let auto = ctx.profile_spmm(&a, &b, SpmmAlgo::Auto);
        let worst = [
            SpmmAlgo::Octet,
            SpmmAlgo::Wmma,
            SpmmAlgo::FpuSubwarp,
            SpmmAlgo::Dense,
        ]
        .into_iter()
        .map(|algo| ctx.profile_spmm(&a, &b, algo).cycles)
        .fold(0.0f64, f64::max);
        assert!(
            auto.cycles <= worst,
            "shape ({m},{k},V={v},s={s}): auto {} cycles vs worst fixed {worst}",
            auto.cycles
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A plan's `run` is bit-identical to the scalar reference for every
    /// numerically exact SpMM algorithm, including `Auto` (BlockedEll is
    /// a structural surrogate, not an exact kernel — see DESIGN.md).
    #[test]
    fn spmm_plan_matches_reference_for_every_algo((rows, cols, v, s, seed) in vs_params()) {
        let ctx = Context::builder().gpu(GpuConfig::small()).build();
        let a = gen::random_vector_sparse::<f16>(rows, cols, v, s, seed);
        let b = gen::random_dense::<f16>(cols, 48, Layout::RowMajor, seed ^ 1);
        let want = reference::spmm_vs(&a, &b);
        for algo in [
            SpmmAlgo::Octet,
            SpmmAlgo::Wmma,
            SpmmAlgo::FpuSubwarp,
            SpmmAlgo::Dense,
            SpmmAlgo::Auto,
        ] {
            let plan = ctx.plan_spmm(&a, 48, algo);
            prop_assert_eq!(plan.run(&b).max_abs_diff(&want), 0.0, "{:?}", algo);
        }
    }

    /// Same bit-identity for every SDDMM algorithm, including `Auto`.
    #[test]
    fn sddmm_plan_matches_reference_for_every_algo((rows, cols, v, s, seed) in vs_params()) {
        let ctx = Context::builder().gpu(GpuConfig::small()).build();
        let mask = gen::random_pattern(rows, cols, v, s, seed);
        let a = gen::random_dense::<f16>(rows, 32, Layout::RowMajor, seed ^ 2);
        let b = gen::random_dense::<f16>(32, cols, Layout::ColMajor, seed ^ 3);
        let want = reference::sddmm(&a, &b, &mask);
        for algo in [
            SddmmAlgo::OctetReg,
            SddmmAlgo::OctetShfl,
            SddmmAlgo::OctetArch,
            SddmmAlgo::FpuSubwarp,
            SddmmAlgo::Wmma,
            SddmmAlgo::Auto,
        ] {
            let plan = ctx.plan_sddmm(&mask, 32, algo);
            let got = plan.run(&a, &b);
            prop_assert_eq!(got.values(), want.values(), "{:?}", algo);
        }
    }
}
