//! Tile layer of the kernel composer: the octet fragment wiring shared
//! by the SpMM and SDDMM mma kernels.
//!
//! The simulator's `mma.m8n8k4` model expects operands in the canonical
//! Volta fragment convention — lane `(o, g, t)` of octet `o`, thread
//! group `g`, thread `t` holds a fixed slice of the `8×4`/`4×8` tile.
//! The kernels load operands in *coalescing-friendly* lane layouts
//! instead (guidelines IV & V), so each mma is preceded by a marshal
//! step mapping the loaded layout onto the fragment convention —
//! standing in for the operand-bus wiring the paper's mapping is
//! designed around. Those marshals used to be duplicated per kernel;
//! this module is the single copy, parameterised by the stage-layer
//! geometry ([`crate::compose::TilingScheme`]) where the kernels differ.

use vecsparse_gpu_sim::{Tok, WVec};

/// Lane of thread `t` in group `g` (0 = low, 1 = high) of octet `o` —
/// the Volta HMMA lane mapping every fragment convention builds on.
#[inline]
pub fn octet_lane(o: usize, g: usize, t: usize) -> usize {
    g * 16 + 4 * o + t
}

/// Marshal the SpMM B fragment loaded by `ldg_b` (lane `8j + c` holds
/// the 8 halves `B[col_j][n0 + 8c .. 8c+8]`) into one of the two mma
/// Mat_a fragments: `a_sel = 0` covers transposed-output rows 0–31,
/// `a_sel = 1` covers rows 32–63.
pub fn marshal_spmm_mat_a(loaded: &WVec, a_sel: usize) -> WVec {
    if loaded.is_ghost() {
        return WVec::ghost(4, loaded.tok());
    }
    let mut a = WVec::zeros(4);
    for o in 0..4 {
        for g in 0..2 {
            for t in 0..4 {
                let n_local = 32 * a_sel + 8 * o + 4 * g + t;
                for j in 0..4 {
                    let v = loaded.get(8 * j + n_local / 8, n_local % 8);
                    a.set(octet_lane(o, g, t), j, v);
                }
            }
        }
    }
    a.set_tok(loaded.tok());
    a
}

/// Marshal the SpMM A-vector fragment (vectors `4·step ..` of the
/// stride's shared-memory stage, where the staged load holds vector `s`
/// in lane `s`, elements `0..V`) into the mma Mat_b fragment: lane `c`
/// of each group holds output column `4g + c`'s four k-values.
/// `stage_k` bounds the staged window (the stage layer's
/// [`crate::compose::TilingScheme::stage_k`]).
pub fn marshal_spmm_mat_b(
    staged: &WVec,
    step: usize,
    v_len: usize,
    stage_k: usize,
    tok: Tok,
) -> WVec {
    if staged.is_ghost() {
        return WVec::ghost(4, tok);
    }
    let mut b = WVec::zeros(4);
    for o in 0..4 {
        for g in 0..2 {
            for c in 0..4 {
                let col = 4 * g + c;
                if col >= v_len {
                    continue;
                }
                for k in 0..4 {
                    let vec_idx = step * 4 + k;
                    if vec_idx < stage_k {
                        b.set(octet_lane(o, g, c), k, staged.get(vec_idx, col));
                    }
                }
            }
        }
    }
    b.set_tok(tok);
    b
}

/// Marshal one SDDMM operand fragment for octet k-slice `m` at stride
/// base `k0`. The two SDDMM operands use the *same* loaded layout — a
/// `limit × tile_k` half-matrix flattened across two 8-element register
/// vectors (lane `l` of part `li` holds halves `256·li + 8l ..+8`) —
/// and differ only in `limit` (columns of the gathered-B fragment,
/// `V` rows of the A fragment) and the global k bound `k_max`. Lane
/// `(o, g, x)` receives position `4g + x`'s four k-values; with
/// `switch` the groups are pre-swapped so the SWITCH HMMA's in-TCU
/// operand mux restores them.
#[allow(clippy::too_many_arguments)] // Fragment geometry is clearer flat.
pub fn marshal_sddmm_frag(
    loaded: &[WVec; 2],
    limit: usize,
    tile_k: usize,
    k0: usize,
    m: usize,
    k_max: usize,
    switch: bool,
    tok: Tok,
) -> WVec {
    if loaded[0].is_ghost() {
        return WVec::ghost(4, tok);
    }
    let mut f = WVec::zeros(4);
    for o in 0..4 {
        for g in 0..2 {
            for x in 0..4 {
                let pos = 4 * g + x;
                if pos >= limit {
                    continue;
                }
                for kk in 0..4 {
                    let k = 16 * o + 4 * m + kk;
                    if k0 + k >= k_max {
                        continue;
                    }
                    let flat = pos * tile_k + k;
                    let (li, rest) = (flat / 256, flat % 256);
                    let v = loaded[li].get(rest / 8, rest % 8);
                    let lane = if switch {
                        octet_lane(o, 1 - g, x)
                    } else {
                        octet_lane(o, g, x)
                    };
                    f.set(lane, kk, v);
                }
            }
        }
    }
    f.set_tok(tok);
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the Volta lane mapping: 4 threads per octet per group, groups
    /// 16 lanes apart, octets 4 lanes apart.
    #[test]
    fn octet_lane_layout_is_pinned() {
        assert_eq!(octet_lane(0, 0, 0), 0);
        assert_eq!(octet_lane(0, 0, 3), 3);
        assert_eq!(octet_lane(1, 0, 0), 4);
        assert_eq!(octet_lane(3, 0, 3), 15);
        assert_eq!(octet_lane(0, 1, 0), 16);
        assert_eq!(octet_lane(3, 1, 3), 31);
        let all: Vec<usize> = (0..2)
            .flat_map(|g| (0..4).flat_map(move |o| (0..4).map(move |t| octet_lane(o, g, t))))
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "bijective over warp");
    }

    /// The SpMM Mat_a marshal puts `B[col_j][n_local]` (loaded lane
    /// `8j + n_local/8`, element `n_local%8`) at fragment lane
    /// `(o, g, t)` with `n_local = 32·a_sel + 8o + 4g + t`, element `j`.
    #[test]
    fn spmm_mat_a_marshal_is_pinned() {
        let mut loaded = WVec::zeros(8);
        // Encode (j, flat-half index) so every slot is distinguishable.
        for l in 0..32 {
            for e in 0..8 {
                loaded.set(l, e, (l * 8 + e) as f32);
            }
        }
        let a = marshal_spmm_mat_a(&loaded, 1);
        // Octet 2, high group, thread 3 → n_local = 32 + 16 + 4 + 3 = 55.
        // k-value j sits in loaded lane 8j + 6, element 7.
        for j in 0..4 {
            assert_eq!(a.get(octet_lane(2, 1, 3), j), ((8 * j + 6) * 8 + 7) as f32);
        }
    }

    /// The SpMM Mat_b marshal reads staged vector `4·step + k`, element
    /// `col`, bounded by `stage_k`; out-of-window slots stay 0.0.
    #[test]
    fn spmm_mat_b_marshal_respects_stage_window() {
        let mut staged = WVec::zeros(8);
        for l in 0..32 {
            for e in 0..8 {
                staged.set(l, e, (100 * l + e) as f32);
            }
        }
        let b = marshal_spmm_mat_b(&staged, 3, 8, 16, Tok::NONE);
        // step 3, k=0..4 → vec_idx 12..16, all inside stage_k = 16.
        for g in 0..2 {
            for c in 0..4 {
                let col = 4 * g + c;
                for k in 0..4 {
                    assert_eq!(b.get(octet_lane(0, g, c), k), (100 * (12 + k) + col) as f32);
                }
            }
        }
        // step 4 would read vec_idx 16.. — outside the 16-vector stage.
        let out = marshal_spmm_mat_b(&staged, 4, 8, 16, Tok::NONE);
        for lane in 0..32 {
            for k in 0..4 {
                assert_eq!(out.get(lane, k), 0.0);
            }
        }
    }

    /// The unified SDDMM marshal reproduces both legacy wirings: flat
    /// position `pos·tile_k + (16o + 4m + kk)` split across the two
    /// loaded register vectors, group-swapped under `switch`.
    #[test]
    fn sddmm_frag_marshal_is_pinned() {
        let mut lo = WVec::zeros(8);
        let mut hi = WVec::zeros(8);
        for l in 0..32 {
            for e in 0..8 {
                lo.set(l, e, (l * 8 + e) as f32);
                hi.set(l, e, (256 + l * 8 + e) as f32);
            }
        }
        let loaded = [lo, hi];
        let f = marshal_sddmm_frag(&loaded, 8, 64, 0, 2, 64, false, Tok::NONE);
        // pos = 5 (g=1, x=1), octet 3, m=2, kk=1 → k = 57, flat = 377.
        assert_eq!(f.get(octet_lane(3, 1, 1), 1), 377.0);
        // Same slot with switch: value lands on the low-group lane.
        let fs = marshal_sddmm_frag(&loaded, 8, 64, 0, 2, 64, true, Tok::NONE);
        assert_eq!(fs.get(octet_lane(3, 0, 1), 1), 377.0);
        // k_max clips the trailing k-slice: k0 = 32 with k_max 64 keeps
        // only octets 0 and 1 (k = 16o + .. < 32).
        let clipped = marshal_sddmm_frag(&loaded, 8, 64, 32, 0, 64, false, Tok::NONE);
        assert_eq!(clipped.get(octet_lane(2, 0, 0), 0), 0.0);
        assert_ne!(clipped.get(octet_lane(1, 0, 0), 0), 0.0);
    }
}
