//! Shared kernel plumbing: uploading matrices into simulator memory and
//! building warp lane-offset patterns.

use vecsparse_formats::{BlockedEll, Csr, DenseMatrix, Scalar, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{BufferId, ElemWidth, MemPool, Mode, WARP_SIZE};

/// Lane offset array with all lanes inactive.
pub const NO_LANES: [u32; WARP_SIZE] = [u32::MAX; WARP_SIZE];

/// Width for a [`Scalar`] element type.
pub fn width_of<T: Scalar>() -> ElemWidth {
    match T::BITS {
        16 => ElemWidth::B16,
        32 => ElemWidth::B32,
        _ => unreachable!("scalars are 16 or 32 bits"),
    }
}

/// Upload a dense matrix into device memory in its storage-layout order.
/// In [`Mode::Performance`] only addresses are allocated.
pub fn upload_dense<T: Scalar>(mem: &mut MemPool, m: &DenseMatrix<T>, mode: Mode) -> BufferId {
    match mode {
        Mode::Functional => mem.alloc_init(
            width_of::<T>(),
            m.data().iter().map(|v| v.to_f32()).collect(),
        ),
        Mode::Performance => mem.alloc_ghost(width_of::<T>(), m.data().len()),
    }
}

/// Device-side layout of a vector-sparse matrix: the three arrays of the
/// column-vector sparse encoding.
#[derive(Clone, Copy, Debug)]
pub struct VsBuffers {
    /// Packed vector values (`nnz_vectors * v` scalars).
    pub values: BufferId,
    /// Block-row pointers (32-bit).
    pub row_ptr: BufferId,
    /// Column indices, one per nonzero vector (32-bit).
    pub col_idx: BufferId,
}

/// Upload a vector-sparse matrix.
pub fn upload_vs<T: Scalar>(mem: &mut MemPool, a: &VectorSparse<T>, mode: Mode) -> VsBuffers {
    let p = a.pattern();
    match mode {
        Mode::Functional => VsBuffers {
            values: mem.alloc_init(
                width_of::<T>(),
                a.values().iter().map(|v| v.to_f32()).collect(),
            ),
            row_ptr: mem.alloc_ghost(ElemWidth::B32, p.row_ptr().len()),
            col_idx: mem.alloc_ghost(ElemWidth::B32, p.col_idx().len()),
        },
        Mode::Performance => VsBuffers {
            values: mem.alloc_ghost(width_of::<T>(), a.values().len()),
            row_ptr: mem.alloc_ghost(ElemWidth::B32, p.row_ptr().len()),
            col_idx: mem.alloc_ghost(ElemWidth::B32, p.col_idx().len()),
        },
    }
}

/// Upload only a sparsity pattern (SDDMM mask): indices are address-only in
/// both modes since kernels read the structure host-side.
pub fn upload_pattern(mem: &mut MemPool, p: &SparsityPattern, mode: Mode) -> VsBuffers {
    let _ = mode;
    VsBuffers {
        values: mem.alloc_ghost(ElemWidth::B16, 0),
        row_ptr: mem.alloc_ghost(ElemWidth::B32, p.row_ptr().len()),
        col_idx: mem.alloc_ghost(ElemWidth::B32, p.col_idx().len()),
    }
}

/// Upload a CSR matrix.
#[derive(Clone, Copy, Debug)]
pub struct CsrBuffers {
    pub values: BufferId,
    pub row_ptr: BufferId,
    pub col_idx: BufferId,
}

/// Upload a CSR matrix (fine-grained kernels).
pub fn upload_csr<T: Scalar>(mem: &mut MemPool, a: &Csr<T>, mode: Mode) -> CsrBuffers {
    match mode {
        Mode::Functional => CsrBuffers {
            values: mem.alloc_init(
                width_of::<T>(),
                a.values().iter().map(|v| v.to_f32()).collect(),
            ),
            row_ptr: mem.alloc_ghost(ElemWidth::B32, a.row_ptr().len()),
            col_idx: mem.alloc_ghost(ElemWidth::B32, a.col_idx().len()),
        },
        Mode::Performance => CsrBuffers {
            values: mem.alloc_ghost(width_of::<T>(), a.values().len()),
            row_ptr: mem.alloc_ghost(ElemWidth::B32, a.row_ptr().len()),
            col_idx: mem.alloc_ghost(ElemWidth::B32, a.col_idx().len()),
        },
    }
}

/// Upload a Blocked-ELL matrix: values plus the block-column index slab.
#[derive(Clone, Copy, Debug)]
pub struct EllBuffers {
    pub values: BufferId,
    pub block_col_idx: BufferId,
}

/// Upload a Blocked-ELL matrix.
pub fn upload_ell<T: Scalar>(mem: &mut MemPool, a: &BlockedEll<T>, mode: Mode) -> EllBuffers {
    match mode {
        Mode::Functional => EllBuffers {
            values: mem.alloc_init(
                width_of::<T>(),
                a.values().iter().map(|v| v.to_f32()).collect(),
            ),
            block_col_idx: mem.alloc_ghost(ElemWidth::B32, a.block_col_idx().len()),
        },
        Mode::Performance => EllBuffers {
            values: mem.alloc_ghost(width_of::<T>(), a.values().len()),
            block_col_idx: mem.alloc_ghost(ElemWidth::B32, a.block_col_idx().len()),
        },
    }
}

/// Read back a row-major dense output buffer into a matrix.
pub fn download_dense<T: Scalar>(
    mem: &MemPool,
    buf: BufferId,
    rows: usize,
    cols: usize,
) -> DenseMatrix<T> {
    let data = mem.contents(buf);
    DenseMatrix::from_row_major(rows, cols, data.iter().map(|&v| T::from_f32(v)).collect())
}

/// Read back a vector-sparse value buffer into a matrix with `pattern`.
pub fn download_vs(mem: &MemPool, buf: BufferId, pattern: &SparsityPattern) -> VectorSparse<f16> {
    let data = mem.contents(buf);
    VectorSparse::new(
        pattern.clone(),
        data.iter().map(|&v| f16::from_f32(v)).collect(),
    )
}

/// Build lane offsets where lane `l` starts at `f(l)`; `None` deactivates
/// the lane.
pub fn lanes(f: impl Fn(usize) -> Option<usize>) -> [u32; WARP_SIZE] {
    let mut out = NO_LANES;
    for (l, o) in out.iter_mut().enumerate() {
        if let Some(idx) = f(l) {
            *o = idx as u32;
        }
    }
    out
}

/// Store one output-row segment `[n0, n0 + tn)` of `row` into a row-major
/// buffer of pitch `n`, splitting into the widest vector stores that do
/// not cross the row end (real kernels predicate their residue stores the
/// same way). `vals[c]` is the value for column `n0 + c`; pass an empty
/// slice in performance mode (ghost stores carrying `dep`). `shadows[c]`,
/// when non-empty, attaches an fp64 shadow twin to each stored value
/// (precision shadow execution); pass an empty slice otherwise.
#[allow(clippy::too_many_arguments)]
pub fn store_row_segment(
    w: &mut vecsparse_gpu_sim::WarpCtx<'_, '_>,
    site: vecsparse_gpu_sim::Site,
    buf: BufferId,
    row: usize,
    n: usize,
    n0: usize,
    tn: usize,
    vals: &[f32],
    shadows: &[f64],
    max_epl: usize,
    dep: vecsparse_gpu_sim::Tok,
) {
    use vecsparse_gpu_sim::{Tok, WVec};
    let functional = !vals.is_empty();
    let mut c = 0usize;
    while c < tn {
        // Widest epl whose full 32-lane span stays inside the segment,
        // falling back to scalar stores for the tail.
        let remaining = tn - c;
        let epl = if remaining >= 32 * max_epl {
            max_epl
        } else {
            1
        };
        let span = (32 * epl).min(remaining);
        let active = span.div_ceil(epl);
        let base = c;
        let offs = lanes(|l| {
            let cc = base + l * epl;
            if l < active && cc < tn {
                Some(row * n + n0 + cc)
            } else {
                None
            }
        });
        let v = if functional {
            let mut v = WVec::zeros(epl);
            for l in 0..active {
                for e in 0..epl {
                    let cc = base + l * epl + e;
                    if cc < tn {
                        v.set(l, e, vals[cc]);
                        if !shadows.is_empty() {
                            v.set_shadow(l, e, shadows[cc]);
                        }
                    }
                }
            }
            v
        } else {
            WVec::ghost(epl, dep)
        };
        let deps = if dep == Tok::NONE { vec![] } else { vec![dep] };
        w.stg(site, buf, &offs, &v, &deps);
        c += span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, Layout};

    #[test]
    fn upload_roundtrip_dense() {
        let m = gen::random_dense::<f16>(8, 8, Layout::RowMajor, 1);
        let mut pool = MemPool::new();
        let buf = upload_dense(&mut pool, &m, Mode::Functional);
        let back: DenseMatrix<f16> = download_dense(&pool, buf, 8, 8);
        assert_eq!(m, back);
    }

    #[test]
    fn ghost_upload_has_addresses_only() {
        let m = gen::random_dense::<f16>(8, 8, Layout::RowMajor, 1);
        let mut pool = MemPool::new();
        let buf = upload_dense(&mut pool, &m, Mode::Performance);
        assert_eq!(pool.len(buf), 64);
        assert!(pool.contents(buf).is_empty());
    }

    #[test]
    fn lane_builder() {
        let offs = lanes(|l| if l < 4 { Some(l * 10) } else { None });
        assert_eq!(offs[0], 0);
        assert_eq!(offs[3], 30);
        assert_eq!(offs[4], u32::MAX);
    }
}
