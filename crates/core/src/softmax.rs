//! Softmax kernels: dense row-wise softmax and the custom softmax over the
//! column-vector sparse encoding (§7.4 — the attention pipeline's middle
//! stage, where sparsity shrinks both the data and the exponential count).

use crate::util::{lanes, upload_vs, width_of, VsBuffers};
use vecsparse_formats::VectorSparse;
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig,
    MemPool, Mode, NativeCtx, Program, Site, Tok, WVec,
};

/// Sparse softmax over a vector-sparse matrix: each *scalar row's* stored
/// entries are softmax-normalised (absent entries are `-inf`, masked
/// attention semantics). One CTA (warp) per block row.
pub struct SparseSoftmax<'m> {
    x: &'m VectorSparse<f16>,
    bufs: VsBuffers,
    out_buf: BufferId,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_rowptr: Site,
    ldg: Site,
    maxred: Site,
    exp: Site,
    sumred: Site,
    div: Site,
    stg: Site,
}

impl<'m> SparseSoftmax<'m> {
    /// Stage the input.
    pub fn new(mem: &mut MemPool, x: &'m VectorSparse<f16>, mode: Mode) -> Self {
        let bufs = upload_vs(mem, x, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f16>(), x.values().len()),
            Mode::Performance => mem.alloc_ghost(width_of::<f16>(), x.values().len()),
        };
        let mut p = Program::new();
        let sites = Sites {
            ld_rowptr: p.site("ld_rowptr", 0),
            ldg: p.site("ldg", 0),
            maxred: p.site("maxred", 0),
            exp: p.site("exp", 0),
            sumred: p.site("sumred", 0),
            div: p.site("div", 0),
            stg: p.site("stg", 0),
        };
        let static_len = p.static_len() + 50;
        SparseSoftmax {
            x,
            bufs,
            out_buf,
            sites,
            prog: p,
            static_len,
        }
    }

    /// Download the functional result (same pattern as the input).
    pub fn result(&self, mem: &MemPool) -> VectorSparse<f16> {
        crate::util::download_vs(mem, self.out_buf, self.x.pattern())
    }
}

impl KernelSpec for SparseSoftmax<'_> {
    fn name(&self) -> String {
        format!("softmax-vs(V={})", self.x.v())
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.x.pattern().block_rows().max(1),
            warps_per_cta: 1,
            regs_per_thread: 40,
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        let p = self.x.pattern();
        if p.block_rows() == 0 {
            return None;
        }
        let v = p.v();
        Some(vecsparse_gpu_sim::ShardLayout {
            out: self.out_buf,
            rows: p.block_rows(),
            row_starts: p.row_ptr().iter().map(|&i| (i * v) as u32).collect(),
            cta_rows: (0..p.block_rows() as u32).map(|r| (r, r + 1)).collect(),
        })
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let p = self.x.pattern();
        let v = p.v();
        let br = cta.cta_id;
        let range = p.block_row_range(br);
        let functional = cta.mode == Mode::Functional;
        let shadow = functional && cta.shadow_exec;
        let s = &self.sites;
        let mut w = cta.warp(0);

        let rp = lanes(|l| if l < 2 { Some(br + l) } else { None });
        let rp_tok = w.ldg(s.ld_rowptr, self.bufs.row_ptr, &rp, 1, &[]).tok();

        // Walk the row's values in 32-lane × V chunks: load, exp, reduce.
        let nvec = range.len();
        let epl = v.min(8);
        let mut red_tok = Tok::NONE;
        let mut maxv = vec![f32::NEG_INFINITY; v];
        let mut denom = vec![0.0f32; v];
        // fp64 twin of the denominator (the max itself is an exact
        // comparison, so it needs no twin).
        let mut denom64 = vec![0.0f64; v];
        for chunk in 0..nvec.div_ceil(32) {
            let offs = lanes(|l| {
                let i = chunk * 32 + l;
                if i < nvec {
                    Some((range.start + i) * v)
                } else {
                    None
                }
            });
            let vals = w.ldg(s.ldg, self.bufs.values, &offs, epl, &[rp_tok]);
            // Max reduction (5 shuffle steps) then exp (MUFU on the FP32
            // pipe) then sum reduction.
            let t = w.shfl(s.maxred, &vals, |l| l ^ 1, &[]).tok();
            let e = w.math(s.exp, InstrKind::Ffma, (epl as u32).max(1), &[t]);
            red_tok = w.shfl(s.sumred, &WVec::ghost(1, e), |l| l ^ 1, &[e]).tok();

            if functional {
                for i in (chunk * 32)..((chunk * 32 + 32).min(nvec)) {
                    for e in 0..v {
                        let x = w.mem().read(self.bufs.values, (range.start + i) * v + e);
                        maxv[e] = maxv[e].max(x);
                    }
                }
            }
        }
        if functional {
            for i in range.clone() {
                for e in 0..v {
                    let x = w.mem().read(self.bufs.values, i * v + e);
                    denom[e] += (x - maxv[e]).exp();
                    if shadow {
                        denom64[e] += (f64::from(x) - f64::from(maxv[e])).exp();
                    }
                }
            }
        }
        // Normalise and store.
        for chunk in 0..nvec.div_ceil(32) {
            let offs = lanes(|l| {
                let i = chunk * 32 + l;
                if i < nvec {
                    Some((range.start + i) * v)
                } else {
                    None
                }
            });
            let d = w.math(s.div, InstrKind::Ffma, (epl as u32).max(1), &[red_tok]);
            let mut vals = WVec::zeros(epl);
            if functional {
                for l in 0..32 {
                    let i = chunk * 32 + l;
                    if i >= nvec {
                        continue;
                    }
                    for e in 0..v.min(epl) {
                        let x = w.mem().read(self.bufs.values, (range.start + i) * v + e);
                        let y = (x - maxv[e]).exp() / denom[e];
                        vals.set(l, e, f16::from_f32(y).to_f32());
                        if shadow {
                            let y64 = (f64::from(x) - f64::from(maxv[e])).exp() / denom64[e];
                            vals.set_shadow(l, e, y64);
                        }
                    }
                }
            } else {
                vals = WVec::ghost(epl, d);
            }
            w.stg(s.stg, self.out_buf, &offs, &vals, &[d]);
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // Two-pass row softmax per scalar row: exact max, ascending-i
        // denominator, one f16 round per stored element — the simulated
        // functional path verbatim.
        let p = self.x.pattern();
        let v = p.v();
        let vals = ctx.contents(self.bufs.values);
        let mut writes = Vec::with_capacity(vals.len());
        for br in 0..p.block_rows() {
            let range = p.block_row_range(br);
            for e in 0..v {
                let mut maxv = f32::NEG_INFINITY;
                for i in range.clone() {
                    maxv = maxv.max(vals[i * v + e]);
                }
                let mut denom = 0.0f32;
                for i in range.clone() {
                    denom += (vals[i * v + e] - maxv).exp();
                }
                for i in range.clone() {
                    let y = (vals[i * v + e] - maxv).exp() / denom;
                    writes.push(((i * v + e) as u32, f16::from_f32(y).to_f32()));
                }
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional sparse softmax through the kernel.
pub fn softmax_vs(gpu: &GpuConfig, x: &VectorSparse<f16>) -> VectorSparse<f16> {
    let mut mem = MemPool::new();
    let kernel = SparseSoftmax::new(&mut mem, x, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the sparse softmax kernel.
pub fn profile_softmax_vs(gpu: &GpuConfig, x: &VectorSparse<f16>) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = SparseSoftmax::new(&mut mem, x, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

/// A dense row-wise softmax kernel (the baseline's middle stage): one warp
/// per row over an `l × l` score matrix.
pub struct DenseSoftmax {
    rows: usize,
    cols: usize,
    in_buf: BufferId,
    out_buf: BufferId,
    sites: [Site; 4],
    prog: Program,
    static_len: u32,
}

impl DenseSoftmax {
    /// Allocate for an existing score buffer.
    pub fn new(mem: &mut MemPool, rows: usize, cols: usize, mode: Mode) -> Self {
        let width = width_of::<f16>();
        let (in_buf, out_buf) = match mode {
            Mode::Functional => (
                mem.alloc_zeroed(width, rows * cols),
                mem.alloc_zeroed(width, rows * cols),
            ),
            Mode::Performance => (
                mem.alloc_ghost(width, rows * cols),
                mem.alloc_ghost(width, rows * cols),
            ),
        };
        let mut p = Program::new();
        let sites = [
            p.site("ldg", 0),
            p.site("exp", 0),
            p.site("red", 0),
            p.site("stg", 0),
        ];
        DenseSoftmax {
            rows,
            cols,
            in_buf,
            out_buf,
            sites,
            static_len: p.static_len() + 40,
            prog: p,
        }
    }

    /// Input buffer (fill before a functional launch).
    pub fn input(&self) -> BufferId {
        self.in_buf
    }

    /// Output buffer.
    pub fn output(&self) -> BufferId {
        self.out_buf
    }
}

impl KernelSpec for DenseSoftmax {
    fn name(&self) -> String {
        "softmax-dense".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.rows,
            warps_per_cta: 1,
            regs_per_thread: 32,
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        Some(vecsparse_gpu_sim::ShardLayout {
            out: self.out_buf,
            rows: self.rows,
            row_starts: (0..=self.rows).map(|r| (r * self.cols) as u32).collect(),
            cta_rows: (0..self.rows as u32).map(|r| (r, r + 1)).collect(),
        })
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let row = cta.cta_id;
        let n = self.cols;
        let functional = cta.mode == Mode::Functional;
        let shadow = functional && cta.shadow_exec;
        let [ldg, exp, red, stg] = self.sites;
        let mut w = cta.warp(0);

        let mut maxv = f32::NEG_INFINITY;
        let mut denom = 0.0f32;
        let mut denom64 = 0.0f64;
        if functional {
            for c in 0..n {
                maxv = maxv.max(w.mem().read(self.in_buf, row * n + c));
            }
            for c in 0..n {
                let x = w.mem().read(self.in_buf, row * n + c);
                denom += (x - maxv).exp();
                if shadow {
                    denom64 += (f64::from(x) - f64::from(maxv)).exp();
                }
            }
        }
        let mut red_tok = Tok::NONE;
        for chunk in 0..n.div_ceil(256) {
            let offs = lanes(|l| {
                let c = chunk * 256 + l * 8;
                if c < n {
                    Some(row * n + c)
                } else {
                    None
                }
            });
            let vals = w.ldg(ldg, self.in_buf, &offs, 8, &[]);
            let e = w.math(exp, InstrKind::Ffma, 8, &[vals.tok(), red_tok]);
            red_tok = w.shfl(red, &WVec::ghost(1, e), |l| l ^ 1, &[e]).tok();
        }
        for chunk in 0..n.div_ceil(256) {
            let offs = lanes(|l| {
                let c = chunk * 256 + l * 8;
                if c < n {
                    Some(row * n + c)
                } else {
                    None
                }
            });
            let d = w.math(exp, InstrKind::Ffma, 8, &[red_tok]);
            let mut vals = WVec::zeros(8);
            if functional {
                for l in 0..32 {
                    for e in 0..8 {
                        let c = chunk * 256 + l * 8 + e;
                        if c < n {
                            let x = w.mem().read(self.in_buf, row * n + c);
                            vals.set(l, e, f16::from_f32((x - maxv).exp() / denom).to_f32());
                            if shadow {
                                let y64 = (f64::from(x) - f64::from(maxv)).exp() / denom64;
                                vals.set_shadow(l, e, y64);
                            }
                        }
                    }
                }
            } else {
                vals = WVec::ghost(8, d);
            }
            w.stg(stg, self.out_buf, &offs, &vals, &[d]);
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        let n = self.cols;
        let x = ctx.contents(self.in_buf);
        let mut writes = Vec::with_capacity(self.rows * n);
        for row in 0..self.rows {
            let mut maxv = f32::NEG_INFINITY;
            for c in 0..n {
                maxv = maxv.max(x[row * n + c]);
            }
            let mut denom = 0.0f32;
            for c in 0..n {
                denom += (x[row * n + c] - maxv).exp();
            }
            for c in 0..n {
                let y = (x[row * n + c] - maxv).exp() / denom;
                writes.push(((row * n + c) as u32, f16::from_f32(y).to_f32()));
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    #[test]
    fn sparse_softmax_matches_reference() {
        let gpu = GpuConfig::small();
        let x = gen::random_vector_sparse::<f16>(32, 64, 4, 0.75, 1);
        let got = softmax_vs(&gpu, &x);
        let want = reference::softmax_vs(&x);
        for (g, w) in got.values().iter().zip(want.values()) {
            assert!((g.to_f32() - w.to_f32()).abs() < 2e-3, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn sparse_softmax_rows_sum_to_one() {
        let gpu = GpuConfig::small();
        let x = gen::random_vector_sparse::<f16>(16, 128, 8, 0.9, 2);
        let s = softmax_vs(&gpu, &x);
        let p = s.pattern();
        for br in 0..p.block_rows() {
            for e in 0..p.v() {
                let sum: f32 = p
                    .block_row_range(br)
                    .map(|i| s.values()[i * p.v() + e].to_f32())
                    .sum();
                assert!((sum - 1.0).abs() < 0.02, "row {} sum {sum}", br * p.v() + e);
            }
        }
    }

    #[test]
    fn sparse_profile_scales_with_density() {
        let gpu = GpuConfig::small();
        let dense_ish = gen::random_vector_sparse::<f16>(512, 512, 8, 0.5, 3);
        let sparse = gen::random_vector_sparse::<f16>(512, 512, 8, 0.95, 4);
        let pd = profile_softmax_vs(&gpu, &dense_ish);
        let ps = profile_softmax_vs(&gpu, &sparse);
        assert!(ps.cycles < pd.cycles);
    }
}
