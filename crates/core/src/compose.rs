//! Componentized tiling architecture: the shared scheme vocabulary of the
//! three-layer kernel composer (DESIGN §2j).
//!
//! Every registry kernel is one point in a tiling-configuration space.
//! This module names that space:
//!
//! * **global layer** — grid geometry and operand staging order, chosen
//!   by [`LoadStrategy`]: either batch every stride's loads before a
//!   fence and the mma batch (`SyncFullOrdered`, the paper's §5.4 ILP
//!   trick) or cycle load→compute per step (`SyncBufferCyclic`).
//! * **stage layer** — shared-memory tiling: `tile_k` / `tile_n` /
//!   sub-warp width, plus the [`WriteOutStrategy`] governing how much
//!   shared memory the staging phase holds at once.
//! * **tile layer** — the inner step ([`TileComponent`]): an
//!   `mma.m8n8k4` octet, a classic wmma fragment, an FPU FMA chain, a
//!   scalar loop, or the softmax row composition. The component fixes
//!   the kernel's arithmetic model, which is why
//!   [`model_from_scheme`] can derive the precision analyzer's
//!   [`KernelModel`] from the scheme alone.
//!
//! The 14 registry entries are named default schemes ([`scheme_for`], a
//! `const` table — kernel files derive their tile constants from it at
//! compile time), and the `SpmmAlgo::Auto` tuner sweeps non-default
//! schemes for the octet SpMM through
//! [`crate::spmm::compose::octet_schemes`].

use crate::registry::KernelId;
use vecsparse_precision::KernelModel;

/// Global-layer operand staging order within one shared-memory stride.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LoadStrategy {
    /// Batch all of a stride's loads, fence once, then batch the
    /// compute steps (maximal memory-level parallelism; §5.4).
    #[default]
    SyncFullOrdered,
    /// Cycle load → compute per step, reusing the same registers — the
    /// compiler-style double-buffer schedule the §5.4 ablation models.
    SyncBufferCyclic,
}

impl LoadStrategy {
    /// Stable lowercase label fragment.
    pub fn label(self) -> &'static str {
        match self {
            LoadStrategy::SyncFullOrdered => "ordered",
            LoadStrategy::SyncBufferCyclic => "cyclic",
        }
    }
}

/// Stage-layer shared-memory write-out discipline (after
/// `cubecl-matmul`'s `WriteOutStrategy`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WriteOutStrategy {
    /// The full stride's staged operands are resident in shared memory
    /// at once (`tile_k × v` elements) — one staging phase per stride.
    #[default]
    LargeSmem,
    /// Half-sized shared staging, reused twice per stride: trades an
    /// extra staging phase for occupancy headroom.
    ReuseSmem,
}

impl WriteOutStrategy {
    /// Stable lowercase label fragment.
    pub fn label(self) -> &'static str {
        match self {
            WriteOutStrategy::LargeSmem => "large",
            WriteOutStrategy::ReuseSmem => "reuse",
        }
    }
}

/// Tile-layer inner step: which functional unit reduces a `k`-slice into
/// the accumulator, and with what rounding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TileComponent {
    /// `mma.m8n8k4` on octet operand buffers (exact f16×f16 products,
    /// f32 accumulation).
    MmaOctet,
    /// Classic 16×16×16 wmma fragment mapping (same arithmetic model).
    MmaWmma,
    /// FPU paired HMUL2/FADD: products round to binary16 before the f32
    /// accumulate.
    Fpu,
    /// Scalar FMA loop with f32 accumulation (the cuSPARSE surrogates).
    Scalar,
    /// Row composition `exp(x − max) / Σ exp` (no reduction over `k`).
    Softmax,
}

impl TileComponent {
    /// Stable lowercase label fragment.
    pub fn label(self) -> &'static str {
        match self {
            TileComponent::MmaOctet => "mma-octet",
            TileComponent::MmaWmma => "mma-wmma",
            TileComponent::Fpu => "fpu",
            TileComponent::Scalar => "scalar",
            TileComponent::Softmax => "softmax",
        }
    }
}

/// A point in the tiling-configuration space: everything the three-layer
/// composer needs to compile a kernel's `Program` and launch geometry.
///
/// Schemes are plain data — `Copy`, hashable, and cheap to enumerate —
/// so the Auto tuner can sweep them and the plan cache can memoize the
/// winning point alongside the winning algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TilingScheme {
    /// Nonzero vectors (or scalars) reduced per shared-memory stride.
    pub tile_k: usize,
    /// Output tile width in columns.
    pub tile_n: usize,
    /// Threads cooperating on one output row segment.
    pub sub_warp: usize,
    /// Global-layer staging order.
    pub load: LoadStrategy,
    /// Stage-layer shared-memory discipline.
    pub write_out: WriteOutStrategy,
    /// Tile-layer inner step.
    pub tile: TileComponent,
    /// Output element width in bits (16 for the f16 kernels, 32 for the
    /// fp32 cuSPARSE SDDMM surrogate).
    pub out_bits: u32,
}

impl TilingScheme {
    /// Compact scheme label, e.g. `k32n64-large-ordered`, as recorded in
    /// sweep JSON rows and the plan cache.
    pub fn label(&self) -> String {
        format!(
            "k{}n{}-{}-{}",
            self.tile_k,
            self.tile_n,
            self.write_out.label(),
            self.load.label()
        )
    }

    /// The staging chunk the stage layer holds in shared memory at once:
    /// the full `tile_k` under [`WriteOutStrategy::LargeSmem`], half of
    /// it under [`WriteOutStrategy::ReuseSmem`].
    pub const fn stage_k(&self) -> usize {
        match self.write_out {
            WriteOutStrategy::LargeSmem => self.tile_k,
            WriteOutStrategy::ReuseSmem => self.tile_k / 2,
        }
    }
}

/// The named default scheme of a registry kernel — the exact
/// configuration point the paper's hand-written listing sits at. Kernel
/// files derive their tile constants from this table (`const`-evaluated),
/// so a scheme change here *is* a kernel change.
pub const fn scheme_for(id: KernelId) -> TilingScheme {
    // Shorthand: every default uses the ordered/large staging the paper
    // ships; only the octet SpMM currently exposes the other points.
    const fn s(tile_k: usize, tile_n: usize, sub_warp: usize, tile: TileComponent) -> TilingScheme {
        TilingScheme {
            tile_k,
            tile_n,
            sub_warp,
            load: LoadStrategy::SyncFullOrdered,
            write_out: WriteOutStrategy::LargeSmem,
            tile,
            out_bits: 16,
        }
    }
    match id {
        KernelId::SpmmOctet => s(32, 64, 4, TileComponent::MmaOctet),
        KernelId::SpmmWmma => s(16, 64, 32, TileComponent::MmaWmma),
        KernelId::SpmmFpuSubwarp => s(32, 64, 8, TileComponent::Fpu),
        KernelId::SpmmBlockedEll => s(16, 128, 32, TileComponent::MmaWmma),
        KernelId::SpmmCsrScalar => s(1, 32, 1, TileComponent::Scalar),
        KernelId::SpmmDense => s(32, 128, 32, TileComponent::Scalar),
        KernelId::SddmmOctetReg | KernelId::SddmmOctetShfl | KernelId::SddmmOctetArch => {
            s(64, 32, 8, TileComponent::MmaOctet)
        }
        KernelId::SddmmWmma => s(64, 32, 32, TileComponent::MmaWmma),
        KernelId::SddmmFpuSubwarp => s(64, 16, 8, TileComponent::Fpu),
        KernelId::SddmmCsr => TilingScheme {
            out_bits: 32,
            ..s(1, 1, 1, TileComponent::Scalar)
        },
        KernelId::SoftmaxSparse => s(1, 64, 4, TileComponent::Softmax),
        KernelId::SoftmaxDense => s(1, 64, 32, TileComponent::Softmax),
    }
}

/// Derive the precision analyzer's numerical model from a scheme: the
/// tile component fixes the arithmetic (exact-product f32 reduction for
/// the mma and scalar components, binary16-rounded products for the FPU
/// chain, the row composition for softmax) and `out_bits` the store
/// width. `k` is the reduction depth, `n` the softmax row length.
pub fn model_from_scheme(scheme: &TilingScheme, k: usize, n: usize) -> KernelModel {
    let base = match scheme.tile {
        TileComponent::MmaOctet | TileComponent::MmaWmma | TileComponent::Scalar => {
            KernelModel::tcu_reduction(k)
        }
        TileComponent::Fpu => KernelModel::fpu_reduction(k),
        TileComponent::Softmax => KernelModel::softmax(n),
    };
    KernelModel {
        out_elem_bytes: u64::from(scheme.out_bits / 8),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ALL_KERNELS;

    #[test]
    fn default_schemes_pin_the_paper_constants() {
        let o = scheme_for(KernelId::SpmmOctet);
        assert_eq!((o.tile_k, o.tile_n, o.sub_warp), (32, 64, 4));
        assert_eq!(o.stage_k(), 32);
        let so = scheme_for(KernelId::SddmmOctetReg);
        assert_eq!((so.tile_k, so.tile_n, so.sub_warp), (64, 32, 8));
        assert_eq!(scheme_for(KernelId::SddmmCsr).out_bits, 32);
        for id in ALL_KERNELS {
            let s = scheme_for(id);
            assert_eq!(s.load, LoadStrategy::SyncFullOrdered, "{id:?}");
            assert_eq!(s.write_out, WriteOutStrategy::LargeSmem, "{id:?}");
        }
    }

    #[test]
    fn scheme_labels_are_compact_and_distinct_per_point() {
        let d = scheme_for(KernelId::SpmmOctet);
        assert_eq!(d.label(), "k32n64-large-ordered");
        let cyclic = TilingScheme {
            load: LoadStrategy::SyncBufferCyclic,
            ..d
        };
        let reuse = TilingScheme {
            write_out: WriteOutStrategy::ReuseSmem,
            ..d
        };
        assert_ne!(d.label(), cyclic.label());
        assert_ne!(d.label(), reuse.label());
        assert_eq!(reuse.stage_k(), 16);
    }

    #[test]
    fn model_from_scheme_matches_registry_models() {
        use crate::registry::{model_for, Shape};
        let shape = Shape::default();
        for id in ALL_KERNELS {
            let from_scheme = model_from_scheme(&scheme_for(id), shape.k, shape.n);
            let from_registry = model_for(id, &shape);
            assert_eq!(from_scheme, from_registry, "{id:?}");
        }
    }
}
