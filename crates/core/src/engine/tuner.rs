//! Auto-tuner: resolve `Auto` to a concrete kernel by measuring.
//!
//! The tuner runs in two stages:
//!
//! 1. **Analytic pre-filter** ([`spmm_candidates`] / [`sddmm_candidates`]):
//!    drop kernels that cannot win for the descriptor, so the expensive
//!    profiling stage only touches plausible choices.
//!    * `BlockedEll` is never a candidate: the benchmark construction
//!      re-encodes the input to a sparsity-matched *surrogate*, so its
//!      output is not numerically equivalent to the other kernels.
//!    * `Dense` is only a candidate when density `1 - sparsity` is at
//!      least [`DENSE_DENSITY_FLOOR`]: below that the densified GEMM
//!      moves too many zeros to ever beat a sparse kernel, and it is the
//!      most expensive candidate to profile.
//!    * `Wmma` (SpMM and SDDMM) is only a candidate at `V == 8`, where
//!      the classic wmma fragment mapping is not padding-bound; at
//!      smaller V octet tiling strictly dominates it (paper Fig. 13).
//!    * `SddmmAlgo::OctetArch` is never a candidate: it models the
//!      proposed SWITCH-HMMA architecture, not the stock device the
//!      engine plans for.
//! 2. **Measurement**: profile each surviving candidate on the simulated
//!    GPU in `Mode::Performance` (sampled CTA traces — cheap relative to
//!    functional execution) and pick the fewest cycles. Candidates are
//!    ordered octet-first, and ties keep the earlier candidate.
//!
//! Since the kernels became [`TilingScheme`] compilers, the octet SpMM
//! candidate is not a single profiling point: it expands into the bounded
//! [`octet_schemes`] sweep (default scheme first), and the winning scheme
//! travels with the winning algorithm into the plan — see
//! [`spmm_sweep_points`].
//!
//! The winner is memoized in the owning [`super::Context`]'s plan cache
//! under the descriptor's [`super::PlanKey`], so a descriptor is tuned at
//! most once per context.

use super::Counters;
use crate::api::{SddmmAlgo, SpmmAlgo};
use crate::compose::TilingScheme;
use crate::sddmm::{profile_sddmm_fpu, profile_sddmm_octet, profile_sddmm_wmma, OctetVariant};
use crate::spmm::compose::octet_schemes;
use crate::spmm::{
    profile_dense_gemm, profile_spmm_fpu, profile_spmm_octet_scheme, profile_spmm_wmma,
};
use rayon::prelude::*;
use vecsparse_formats::{DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;

/// Minimum density (`1 - sparsity`) at which the dense-GEMM surrogate is
/// worth profiling at all.
pub const DENSE_DENSITY_FLOOR: f64 = 0.4;

/// Candidate SpMM kernels for a problem with the given V and sparsity.
pub fn spmm_candidates(v: usize, sparsity: f64) -> Vec<SpmmAlgo> {
    let mut c = vec![SpmmAlgo::Octet];
    if v == 8 {
        c.push(SpmmAlgo::Wmma);
    }
    c.push(SpmmAlgo::FpuSubwarp);
    if 1.0 - sparsity >= DENSE_DENSITY_FLOOR {
        c.push(SpmmAlgo::Dense);
    }
    c
}

/// Candidate SDDMM kernels for a problem with the given V.
pub fn sddmm_candidates(v: usize) -> Vec<SddmmAlgo> {
    let mut c = vec![SddmmAlgo::OctetReg, SddmmAlgo::OctetShfl];
    if v == 8 {
        c.push(SddmmAlgo::Wmma);
    }
    c.push(SddmmAlgo::FpuSubwarp);
    c
}

/// Expand the algorithm candidates into concrete profiling points. The
/// octet kernel is a [`TilingScheme`] compiler, so its single algorithm
/// slot expands into the bounded [`octet_schemes`] sweep — the paper's
/// default scheme first, so the strict-`<` reduction can never pick a
/// variant that does not beat it outright.
pub fn spmm_sweep_points(v: usize, sparsity: f64) -> Vec<(SpmmAlgo, Option<TilingScheme>)> {
    spmm_candidates(v, sparsity)
        .into_iter()
        .flat_map(|algo| match algo {
            SpmmAlgo::Octet => octet_schemes()
                .into_iter()
                .map(|s| (SpmmAlgo::Octet, Some(s)))
                .collect(),
            other => vec![(other, None)],
        })
        .collect()
}

pub(crate) fn tune_spmm(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    n: usize,
    counters: &Counters,
) -> (SpmmAlgo, Option<TilingScheme>) {
    let b = DenseMatrix::<f16>::zeros(a.cols(), n, Layout::RowMajor);
    let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
                                        // Profile candidates in parallel (each builds its own MemPool), then
                                        // reduce sequentially in candidate order: strict `<` keeps the
                                        // earlier candidate on ties, exactly like the old sequential loop.
    let profiled: Vec<(SpmmAlgo, Option<TilingScheme>, f64)> =
        spmm_sweep_points(a.v(), a.pattern().sparsity())
            .into_par_iter()
            .map(|(algo, scheme)| {
                counters.count_tuner_launch();
                let profile = match (algo, scheme) {
                    (SpmmAlgo::Octet, Some(s)) => profile_spmm_octet_scheme(gpu, a, &b, s),
                    (SpmmAlgo::Wmma, _) => profile_spmm_wmma(gpu, a, &b),
                    (SpmmAlgo::FpuSubwarp, _) => profile_spmm_fpu(gpu, a, &b),
                    (SpmmAlgo::Dense, _) => {
                        let dense = a.to_dense(Layout::RowMajor);
                        profile_dense_gemm(gpu, &dense, &b)
                    }
                    _ => unreachable!("never a tuner candidate"),
                };
                (algo, scheme, profile.cycles)
            })
            .collect();
    counters.add_wall(t0.elapsed());
    let mut best: Option<(SpmmAlgo, Option<TilingScheme>, f64)> = None;
    for (algo, scheme, cycles) in profiled {
        if best.is_none() || cycles < best.unwrap().2 {
            best = Some((algo, scheme, cycles));
        }
    }
    let (algo, scheme, _) = best.expect("candidate set is never empty");
    (algo, scheme)
}

pub(crate) fn tune_sddmm(
    gpu: &GpuConfig,
    mask: &SparsityPattern,
    k: usize,
    counters: &Counters,
) -> SddmmAlgo {
    let a = DenseMatrix::<f16>::zeros(mask.rows(), k, Layout::RowMajor);
    let b = DenseMatrix::<f16>::zeros(k, mask.cols(), Layout::ColMajor);
    let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
    let profiled: Vec<(SddmmAlgo, f64)> = sddmm_candidates(mask.v())
        .into_par_iter()
        .map(|algo| {
            counters.count_tuner_launch();
            let profile = match algo {
                SddmmAlgo::OctetReg => profile_sddmm_octet(gpu, &a, &b, mask, OctetVariant::Reg),
                SddmmAlgo::OctetShfl => profile_sddmm_octet(gpu, &a, &b, mask, OctetVariant::Shfl),
                SddmmAlgo::FpuSubwarp => profile_sddmm_fpu(gpu, &a, &b, mask),
                SddmmAlgo::Wmma => profile_sddmm_wmma(gpu, &a, &b, mask),
                SddmmAlgo::OctetArch | SddmmAlgo::Auto => {
                    unreachable!("never a tuner candidate")
                }
            };
            (algo, profile.cycles)
        })
        .collect();
    counters.add_wall(t0.elapsed());
    let mut best: Option<(SddmmAlgo, f64)> = None;
    for (algo, cycles) in profiled {
        if best.is_none() || cycles < best.unwrap().1 {
            best = Some((algo, cycles));
        }
    }
    best.expect("candidate set is never empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_excludes_inexact_and_unbuildable() {
        for v in [1, 2, 4, 8] {
            for s in [0.0, 0.5, 0.95] {
                let c = spmm_candidates(v, s);
                assert!(!c.contains(&SpmmAlgo::BlockedEll));
                assert!(!c.contains(&SpmmAlgo::Auto));
                assert!(c.contains(&SpmmAlgo::Octet));
                assert_eq!(c.contains(&SpmmAlgo::Wmma), v == 8);
                assert_eq!(c.contains(&SpmmAlgo::Dense), 1.0 - s >= DENSE_DENSITY_FLOOR);
            }
            let d = sddmm_candidates(v);
            assert!(!d.contains(&SddmmAlgo::OctetArch));
            assert!(!d.contains(&SddmmAlgo::Auto));
            assert_eq!(d.contains(&SddmmAlgo::Wmma), v == 8);
        }
    }

    #[test]
    fn sweep_expands_octet_into_scheme_points() {
        let points = spmm_sweep_points(4, 0.9);
        let octet: Vec<_> = points
            .iter()
            .filter(|(a, _)| *a == SpmmAlgo::Octet)
            .collect();
        assert!(octet.len() >= 4, "default + >= 3 variants");
        assert_eq!(
            points[0],
            (SpmmAlgo::Octet, Some(crate::spmm::compose::DEFAULT_SCHEME)),
            "default scheme profiles first so ties keep it"
        );
        assert!(octet.iter().all(|(_, s)| s.is_some()));
        // Non-octet candidates carry no scheme.
        assert!(points
            .iter()
            .filter(|(a, _)| *a != SpmmAlgo::Octet)
            .all(|(_, s)| s.is_none()));
    }

    #[test]
    fn scheme_sweep_never_regresses_vs_fixed_kernel_tuning() {
        use vecsparse_formats::gen;
        let gpu = GpuConfig::small();
        let counters = Counters::default();
        for (v, sparsity, seed) in [(4, 0.85, 11), (8, 0.7, 12), (2, 0.5, 13)] {
            let a = gen::random_vector_sparse::<f16>(32, 64, v, sparsity, seed);
            let b = DenseMatrix::<f16>::zeros(64, 64, Layout::RowMajor);
            let (algo, scheme) = tune_spmm(&gpu, &a, 64, &counters);
            // The swept winner must be at least as fast as every
            // fixed-kernel candidate the old tuner could have returned.
            let winner_cycles = match (algo, scheme) {
                (SpmmAlgo::Octet, Some(s)) => profile_spmm_octet_scheme(&gpu, &a, &b, s).cycles,
                (SpmmAlgo::Wmma, _) => profile_spmm_wmma(&gpu, &a, &b).cycles,
                (SpmmAlgo::FpuSubwarp, _) => profile_spmm_fpu(&gpu, &a, &b).cycles,
                (SpmmAlgo::Dense, _) => {
                    let dense = a.to_dense(Layout::RowMajor);
                    profile_dense_gemm(&gpu, &dense, &b).cycles
                }
                _ => unreachable!(),
            };
            let default_octet =
                profile_spmm_octet_scheme(&gpu, &a, &b, crate::spmm::compose::DEFAULT_SCHEME);
            assert!(
                winner_cycles <= default_octet.cycles,
                "v={v}: sweep winner {winner_cycles} worse than default octet {}",
                default_octet.cycles
            );
        }
    }
}
