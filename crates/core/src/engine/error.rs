//! Typed errors for the engine's fallible (`try_*`) API surface.

use std::fmt;

/// Everything that can go wrong when building or executing a plan with
/// malformed inputs. Returned by the `try_*` variants on
/// [`super::Context`], [`super::SpmmPlan`] and [`super::SddmmPlan`]; the
/// infallible methods panic with the same message.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// breaking release, so always keep a wildcard arm when matching.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A dimension that must be positive was zero.
    EmptyDimension {
        /// Which dimension (e.g. `"n (RHS columns)"`).
        what: &'static str,
    },
    /// An operand dimension disagrees with the plan's descriptor.
    DimensionMismatch {
        /// Which dimension (e.g. `"RHS rows"`).
        what: &'static str,
        /// The size the plan was built for.
        expected: usize,
        /// The size the operand has.
        got: usize,
    },
    /// An operand's memory layout disagrees with what the kernel needs.
    LayoutMismatch {
        /// Which operand (e.g. `"RHS"`).
        what: &'static str,
        /// The required layout.
        expected: &'static str,
        /// The layout the operand has.
        got: &'static str,
    },
    /// A batch call received no elements.
    EmptyBatch,
    /// Paired batches have different lengths.
    BatchLengthMismatch {
        /// Length of the A-side batch.
        a: usize,
        /// Length of the B-side batch.
        b: usize,
    },
    /// The structural operand's column-vector length V is not one the
    /// kernels implement (supported: 1, 2, 4, 8).
    UnsupportedV {
        /// The offending V.
        v: usize,
    },
    /// The requested algorithm cannot execute this descriptor.
    UnsupportedAlgo {
        /// The algorithm's label (e.g. `"spmm-wmma"`).
        algo: &'static str,
        /// Why it is unsupported here.
        why: &'static str,
    },
    /// A staged device buffer the dispatch needed was absent — an
    /// engine-internal invariant violation, not a caller error.
    UnstagedBuffer {
        /// Which buffer (e.g. `"blocked-ell twin"`).
        what: &'static str,
    },
    /// An internal contract broke (e.g. a performance launch returned no
    /// profile). Not reachable from malformed caller inputs.
    Internal {
        /// What broke.
        what: &'static str,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyDimension { what } => {
                write!(f, "empty dimension: {what} must be > 0")
            }
            EngineError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch: {what} must be {expected}, got {got}"
            ),
            EngineError::LayoutMismatch {
                what,
                expected,
                got,
            } => write!(f, "layout mismatch: {what} must be {expected}, got {got}"),
            EngineError::EmptyBatch => write!(f, "empty batch"),
            EngineError::BatchLengthMismatch { a, b } => {
                write!(f, "batch length mismatch: {a} A operands vs {b} B operands")
            }
            EngineError::UnsupportedV { v } => {
                write!(f, "unsupported vector length V={v} (supported: 1, 2, 4, 8)")
            }
            EngineError::UnsupportedAlgo { algo, why } => {
                write!(f, "algorithm {algo} cannot run this problem: {why}")
            }
            EngineError::UnstagedBuffer { what } => {
                write!(f, "internal error: staged buffer missing: {what}")
            }
            EngineError::Internal { what } => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = EngineError::DimensionMismatch {
            what: "RHS rows",
            expected: 64,
            got: 32,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: RHS rows must be 64, got 32"
        );
        let e = EngineError::UnsupportedV { v: 3 };
        assert!(e.to_string().contains("V=3"));
        // It is a real std error.
        let _: &dyn std::error::Error = &e;
    }
}
