//! The vecsparse execution engine: a cuSPARSE-style handle / plan API.
//!
//! The paper's kernels are meant to be launched the way `cusparseSpMM` is:
//! create a handle, describe the problem once, then execute it many times.
//! The original free functions in [`crate::api`] re-encode the sparse
//! operand, re-stage memory, and re-select the algorithm on *every* call.
//! This module introduces the stateful workflow:
//!
//! * [`Context`] — the handle. Owns the simulated device, the auto-tuner,
//!   and a **plan cache** keyed by problem shape and sparsity, so a
//!   tuning decision made once is reused by every later plan with the
//!   same descriptor.
//! * [`SpmmPlan`] / [`SddmmPlan`] — a captured problem. A plan clones the
//!   structural operand (the sparse matrix for SpMM, the mask for SDDMM),
//!   derives any secondary encodings **once** (the Blocked-ELL surrogate,
//!   the densified twin), stages everything into a private
//!   [`vecsparse_gpu_sim::MemPool`], and then executes single problems or
//!   whole batches against those staged buffers — the only per-run
//!   traffic is the RHS values and the output.
//! * [`SpmmAlgo::Auto`] / [`SddmmAlgo::Auto`] — algorithm selection by
//!   measurement. The [`tuner`] analytically pre-filters the candidate
//!   kernels for a descriptor, profiles the survivors on the simulated
//!   GPU, and memoizes the winner in the context's plan cache.
//!
//! ```
//! use vecsparse::engine::Context;
//! use vecsparse::SpmmAlgo;
//! use vecsparse_formats::{gen, Layout};
//! use vecsparse_fp16::f16;
//!
//! let ctx = Context::builder().build();
//! let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.75, 1);
//! let plan = ctx.plan_spmm(&a, 64, SpmmAlgo::Auto); // tunes once
//! let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 2);
//! let c = plan.run(&b);            // reuses the staged operand
//! let c2 = plan.run(&b);           // zero re-encoding, zero re-tuning
//! assert_eq!(c.max_abs_diff(&c2), 0.0);
//! ```

mod error;
mod report;
mod sddmm_plan;
mod spmm_plan;
pub mod tuner;

pub use error::EngineError;
pub use report::{AlgoReport, Report};
pub use sddmm_plan::{SddmmDesc, SddmmPlan};
pub use spmm_plan::{SpmmDesc, SpmmPlan};

use crate::api::{SddmmAlgo, SpmmAlgo};
use crate::compose::TilingScheme;
use crate::registry::{self, KernelId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use vecsparse_formats::{gen, BlockedEll, DenseMatrix, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::sig::{self, Fingerprint};
use vecsparse_gpu_sim::{
    Backend, GpuConfig, KernelProfile, LaunchSig, MemoStats, TimingMode, TraceSink, Track, WaveMemo,
};
use vecsparse_precision::Certificate;
use vecsparse_waveprove::WaveCertificate;

/// Granularity of the sparsity axis of the plan-cache key: sparsities are
/// bucketed to 1/64 before lookup, so two problems whose zero fractions
/// differ by less than ~1.6 % share a tuning decision. Re-exported from
/// [`vecsparse_gpu_sim::sig`] — the plan cache, the Blocked-ELL twin
/// seed, and the wave memoizer all key off the same shared hash module.
pub use vecsparse_gpu_sim::sig::SPARSITY_BUCKETS;

/// Plan-cache key: everything the tuner's decision depends on. Two
/// problems with the same key get the same algorithm without re-tuning.
///
/// The fields are private (read them through the accessors): the key's
/// composition is an implementation detail of the cache, and callers
/// observing it — e.g. via [`Context::cached_keys`] — must not be able
/// to depend on, or forge, its internals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    op: OpKind,
    m: usize,
    k: usize,
    n: usize,
    v: usize,
    sparsity_bucket: u32,
}

impl PlanKey {
    /// Which operation this key caches a decision for.
    pub fn op(&self) -> OpKind {
        self.op
    }
    /// Output rows.
    pub fn m(&self) -> usize {
        self.m
    }
    /// Inner dimension.
    pub fn k(&self) -> usize {
        self.k
    }
    /// Output columns (SpMM RHS width / SDDMM mask columns).
    pub fn n(&self) -> usize {
        self.n
    }
    /// Column-vector length of the structural operand.
    pub fn v(&self) -> usize {
        self.v
    }
    /// Bucketed sparsity (units of `1 /` [`SPARSITY_BUCKETS`]).
    pub fn sparsity_bucket(&self) -> u32 {
        self.sparsity_bucket
    }
}

/// The operation class of a cached tuning decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Sparse × dense matrix multiply.
    Spmm,
    /// Sampled dense × dense matrix multiply.
    Sddmm,
}

fn bucket(sparsity: f64) -> u32 {
    sig::sparsity_bucket(sparsity)
}

#[derive(Clone, Copy, Debug)]
enum Choice {
    /// A tuned SpMM decision: the winning algorithm plus, when the winner
    /// is a scheme-compiled kernel, the winning [`TilingScheme`] point.
    Spmm(SpmmAlgo, Option<TilingScheme>),
    Sddmm(SddmmAlgo),
}

/// Counter snapshot for cache/tuner observability (and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Candidate kernels the tuner profiled (0 when every `Auto` plan hit
    /// the cache and for fixed-algorithm plans).
    pub tuner_launches: u64,
    /// `Auto` resolutions answered from the plan cache.
    pub cache_hits: u64,
    /// `Auto` resolutions that had to tune.
    pub cache_misses: u64,
    /// Plans built through this context.
    pub plans_built: u64,
}

impl EngineStats {
    /// Fold another snapshot into this one — how `vecsparse-serve`
    /// aggregates the per-worker shard contexts into one fleet view.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.tuner_launches += other.tuner_launches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.plans_built += other.plans_built;
    }
}

/// Per-algorithm aggregate, keyed by the kernel label.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct AlgoAgg {
    pub(crate) runs: u64,
    pub(crate) profiles: u64,
    pub(crate) cycles: f64,
}

#[derive(Default)]
pub(crate) struct Counters {
    tuner_launches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    plans_built: AtomicU64,
    /// Wall-clock nanoseconds spent inside engine execution entry points
    /// (runs, profiles, batches, tuning regions). Batch fan-out counts
    /// the region once, not per element, so this stays a wall time even
    /// when elements run concurrently.
    wall_nanos: AtomicU64,
    /// Per-algorithm run/profile/cycle aggregation for [`Report`].
    algos: Mutex<HashMap<&'static str, AlgoAgg>>, // lint: hash-ok — snapshot sorts by label
    /// Worst-case precision certificate per planned algorithm (the widest
    /// bound over every descriptor planned through this context).
    certs: Mutex<HashMap<&'static str, Certificate>>, // lint: hash-ok — snapshot sorts by label
    /// Latest wave-equivalence certificate per planned algorithm
    /// (surfaced in [`Report`]).
    wave_certs: Mutex<HashMap<&'static str, WaveCertificate>>, // lint: hash-ok — snapshot sorts by label
    /// Memoization-signature cache keyed by (algorithm, operand
    /// fingerprint): repeated plans over the same operand structure reuse
    /// one certification instead of re-proving per plan. `None` records a
    /// NotProvable verdict, so unprovable kernels are not re-certified
    /// either.
    // lint: hash-ok — keyed lookup/insert only, never iterated.
    launch_sigs: Mutex<HashMap<(&'static str, Fingerprint), Option<LaunchSig>>>,
    /// Whether performance launches run the shardprove footprint
    /// analyzer (set once at build via
    /// [`ContextBuilder::shard_certification`]).
    shard_certs_enabled: std::sync::atomic::AtomicBool,
    /// Memory-footprint certificate summary per planned algorithm,
    /// recorded on the first performance launch of each algorithm when
    /// shard certification is enabled.
    shard_certs: Mutex<HashMap<&'static str, String>>, // lint: hash-ok — snapshot sorts by label
}

impl Counters {
    pub(crate) fn count_tuner_launch(&self) {
        self.tuner_launches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_wall(&self, dur: std::time::Duration) {
        self.wall_nanos
            .fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn wall_nanos(&self) -> u64 {
        self.wall_nanos.load(Ordering::Relaxed)
    }

    // lint: hash-ok (see field)
    fn algos_lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, AlgoAgg>> {
        self.algos.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn record_run(&self, label: &'static str) {
        self.algos_lock().entry(label).or_default().runs += 1;
    }

    pub(crate) fn record_profile(&self, label: &'static str, cycles: f64) {
        let mut algos = self.algos_lock();
        let agg = algos.entry(label).or_default();
        agg.profiles += 1;
        agg.cycles += cycles;
    }

    pub(crate) fn algo_snapshot(&self) -> Vec<(&'static str, AlgoAgg)> {
        let mut v: Vec<_> = self.algos_lock().iter().map(|(k, a)| (*k, *a)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    // lint: hash-ok (see field)
    fn certs_lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, Certificate>> {
        self.certs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Keep the loosest (largest-bound) certificate seen per algorithm,
    /// so the report stays sound over every descriptor planned.
    pub(crate) fn record_certificate(&self, label: &'static str, cert: Certificate) {
        let mut certs = self.certs_lock();
        match certs.get(label) {
            Some(old) if old.abs_error_bound >= cert.abs_error_bound => {}
            _ => {
                certs.insert(label, cert);
            }
        }
    }

    pub(crate) fn cert_snapshot(&self) -> Vec<Certificate> {
        let mut v: Vec<_> = self.certs_lock().values().cloned().collect();
        v.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        v
    }

    // lint: hash-ok (see field)
    fn wave_certs_lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, WaveCertificate>> {
        self.wave_certs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn wave_cert_snapshot(&self) -> Vec<(&'static str, WaveCertificate)> {
        let mut v: Vec<_> = self
            .wave_certs_lock()
            .iter()
            .map(|(k, c)| (*k, c.clone()))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Resolve the memoization signature for `(label, operand_fp)`,
    /// certifying wave equivalence at most once per key: plans rebuilt
    /// over the same operand structure (a `--repeat` sweep) hit the cache
    /// instead of re-proving. `certify` runs outside the lock; concurrent
    /// first-probes may both certify, which is benign (same verdict).
    pub(crate) fn launch_sig_for(
        &self,
        label: &'static str,
        operand_fp: Fingerprint,
        certify: impl FnOnce() -> WaveCertificate,
    ) -> Option<LaunchSig> {
        {
            let sigs = self
                .launch_sigs
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(sig) = sigs.get(&(label, operand_fp)) {
                return *sig;
            }
        }
        let cert = certify();
        let sig = cert.launch_sig(operand_fp);
        self.wave_certs_lock().insert(label, cert);
        self.launch_sigs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((label, operand_fp), sig);
        sig
    }

    // lint: hash-ok (see field)
    fn shard_certs_lock(&self) -> std::sync::MutexGuard<'_, HashMap<&'static str, String>> {
        self.shard_certs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn set_shard_certification(&self, enabled: bool) {
        self.shard_certs_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether a shard certificate for `label` still needs to be derived:
    /// certification is enabled and no launch of this algorithm has
    /// recorded one yet (the footprint depends only on operand structure,
    /// which is fixed per plan label within a context).
    pub(crate) fn shard_cert_wanted(&self, label: &'static str) -> bool {
        self.shard_certs_enabled.load(Ordering::Relaxed)
            && !self.shard_certs_lock().contains_key(label)
    }

    pub(crate) fn record_shard_cert(&self, label: &'static str, summary: String) {
        self.shard_certs_lock().insert(label, summary);
    }

    pub(crate) fn shard_cert_snapshot(&self) -> Vec<(&'static str, String)> {
        let mut v: Vec<_> = self
            .shard_certs_lock()
            .iter()
            .map(|(k, s)| (*k, s.clone()))
            .collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

/// The engine handle: simulated device + auto-tuner + plan cache.
///
/// A `Context` is cheap to create but meant to be long-lived: the plan
/// cache and tuning statistics live on it, so sharing one context across
/// a pipeline is what turns repeated problems into cache hits. Construct
/// via [`Context::builder`].
pub struct Context {
    gpu: GpuConfig,
    // lint: hash-ok — keyed lookups; cached_keys() sorts before exposing.
    cache: Mutex<HashMap<PlanKey, Choice>>,
    counters: Arc<Counters>,
    sink: Arc<TraceSink>,
    /// Certified wave memoizer shared by every plan built through this
    /// context (None: every performance launch simulates honestly).
    memo: Option<Arc<WaveMemo>>,
    /// Scheduler timing mode every performance launch under this context
    /// uses (bit-identical results either way; see DESIGN §2h).
    timing: TimingMode,
    /// Which engine executes functional launches planned through this
    /// context: the warp-accurate simulator or the native CPU fast path
    /// (bit-identical outputs; the tier-1 backend gate enforces it).
    backend: Backend,
}

impl Default for Context {
    fn default() -> Self {
        Self::builder().build()
    }
}

/// Builder for [`Context`] — the single construction path that replaced
/// the PR-2 constructor family (`new` / `with_gpu` / `with_telemetry` /
/// `with_memoization`). Every knob is optional and composable:
///
/// ```
/// use vecsparse::engine::Context;
/// use vecsparse_gpu_sim::GpuConfig;
///
/// let ctx = Context::builder()
///     .gpu(GpuConfig::small())
///     .memoization()
///     .build();
/// assert!(ctx.memo_stats().is_some());
/// ```
///
/// See DESIGN.md §2b for the migration table from the deprecated
/// constructors.
#[derive(Default)]
pub struct ContextBuilder {
    gpu: Option<GpuConfig>,
    sink: Option<Arc<TraceSink>>,
    memo: Option<Arc<WaveMemo>>,
    timing: TimingMode,
    shard_certs: bool,
    backend: Backend,
}

impl ContextBuilder {
    /// Plan for a specific simulated device (default: full V100 shape).
    pub fn gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Attach a telemetry sink. Every plan build, tune, stage and run
    /// through the built context records engine-level spans to `sink`,
    /// and performance launches record their per-scheduler kernel
    /// timelines beneath them. Default: a disabled sink (zero
    /// perturbation).
    pub fn telemetry(mut self, sink: Arc<TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Enable certified wave memoization: performance launches of kernels
    /// whose wave equivalence [`certify`] proves are keyed by their
    /// structural signature, simulated once per class, and replayed on
    /// every later launch in the class. Functional runs and unprovable
    /// kernels are unaffected. `VECSPARSE_AUDIT=n` re-simulates every
    /// n-th memoized wave and asserts bit-identical timing.
    ///
    /// [`certify`]: vecsparse_waveprove::certify
    pub fn memoization(mut self) -> Self {
        self.memo = Some(Arc::new(WaveMemo::new()));
        self
    }

    /// Enable memoization against an **externally owned** wave memoizer.
    /// Several contexts built with clones of the same `Arc` share one
    /// wave-artifact cache — the mechanism `vecsparse-serve` uses to let
    /// every worker context of a shard replay waves any of them
    /// simulated. Soundness is unaffected: the memo key already covers
    /// machine config, program, operand structure, and pool layout.
    pub fn shared_memoization(mut self, memo: Arc<WaveMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Select the scheduler timing mode for every performance launch
    /// planned through the built context: [`TimingMode::Tick`] (default)
    /// steps the reference scheduler round by round;
    /// [`TimingMode::Event`] jumps the clock between cached next-event
    /// times and is several times faster on honest (non-memoized)
    /// simulations. Profiles, traces, and memo artifacts are
    /// bit-identical in both modes — tier-1 and the CI `event-gate`
    /// enforce it, and `VECSPARSE_AUDIT=n` cross-checks every n-th wave
    /// at runtime.
    pub fn timing(mut self, timing: TimingMode) -> Self {
        self.timing = timing;
        self
    }

    /// Select the functional execution backend for every plan built
    /// through the context: [`Backend::Simulated`] (default) runs the
    /// warp-accurate simulator; [`Backend::Native`] runs each kernel's
    /// native CPU lowering directly — bit-identical outputs, no per-warp
    /// machinery — and falls back to the simulator for kernels without a
    /// lowering. Performance launches (profiles, tuning) always simulate:
    /// cycle estimates only exist on the simulated machine.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable static shard certification: the first performance launch of
    /// each planned algorithm runs the `shardprove` footprint analyzer
    /// over the staged pool and records the certificate verdict in
    /// [`Context::report`] (`shard_certificates`). The analysis is purely
    /// static (functional re-trace of the staged kernel), so enabling it
    /// never perturbs results or timing. Default: off.
    pub fn shard_certification(mut self) -> Self {
        self.shard_certs = true;
        self
    }

    /// Construct the handle.
    pub fn build(self) -> Context {
        let sink = self.sink.unwrap_or_else(|| Arc::new(TraceSink::disabled()));
        if sink.is_enabled() {
            sink.name_process(Track::ENGINE.pid, "engine");
            sink.name_thread(Track::ENGINE, "engine");
        }
        let counters = Arc::new(Counters::default());
        counters.set_shard_certification(self.shard_certs);
        Context {
            gpu: self.gpu.unwrap_or_default(),
            cache: Mutex::new(HashMap::new()), // lint: hash-ok (see field)
            counters,
            sink,
            memo: self.memo,
            timing: self.timing,
            backend: self.backend,
        }
    }
}

impl Context {
    /// Start building a handle: device, telemetry, and memoization are
    /// chained onto the returned [`ContextBuilder`].
    pub fn builder() -> ContextBuilder {
        ContextBuilder::default()
    }

    /// Enable certified wave memoization on this context (idempotent).
    /// Only plans built *after* this call memoize.
    pub fn enable_memoization(&mut self) {
        if self.memo.is_none() {
            self.memo = Some(Arc::new(WaveMemo::new()));
        }
    }

    /// Memoizer counters, when memoization is enabled.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// The simulated device this context plans for.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The telemetry sink this context records to (disabled by default).
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// The scheduler timing mode performance launches use.
    pub fn timing(&self) -> TimingMode {
        self.timing
    }

    /// The functional execution backend plans built here use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The plan-cache keys currently holding a tuning decision.
    pub fn cached_keys(&self) -> Vec<PlanKey> {
        let mut keys: Vec<PlanKey> = self.cache_lock().keys().copied().collect();
        keys.sort_by_key(|k| (k.m, k.k, k.n, k.v, k.sparsity_bucket));
        keys
    }

    // lint: hash-ok (see field)
    fn cache_lock(&self) -> std::sync::MutexGuard<'_, HashMap<PlanKey, Choice>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the cache/tuner counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            tuner_launches: self.counters.tuner_launches.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            plans_built: self.counters.plans_built.load(Ordering::Relaxed),
        }
    }

    /// Aggregate everything this context observed — cache behaviour,
    /// tuner activity, per-algorithm run counts and cycles, trace-sink
    /// occupancy — into a [`Report`].
    pub fn report(&self) -> Report {
        Report {
            stats: self.stats(),
            algos: self
                .counters
                .algo_snapshot()
                .into_iter()
                .map(|(label, agg)| AlgoReport {
                    algo: label,
                    runs: agg.runs,
                    profiles: agg.profiles,
                    total_cycles: agg.cycles,
                })
                .collect(),
            certificates: self.counters.cert_snapshot(),
            wave_certificates: self.counters.wave_cert_snapshot(),
            shard_certificates: self.counters.shard_cert_snapshot(),
            memo: self.memo_stats(),
            cached_plans: self.cache_lock().len(),
            trace_events: self.sink.events().len(),
            trace_dropped: self.sink.dropped(),
            threads: rayon::current_num_threads(),
            wall_ms: self.counters.wall_nanos() as f64 / 1e6,
        }
    }

    /// Capture an SpMM problem `C[m×n] = A[m×k] · B[k×n]` as a plan.
    ///
    /// The sparse operand is encoded and staged **now**; `n` is the RHS
    /// width every later [`SpmmPlan::run`] must match. With
    /// [`SpmmAlgo::Auto`] the algorithm is resolved through the plan
    /// cache, tuning at most once per descriptor.
    pub fn try_plan_spmm(
        &self,
        a: &VectorSparse<f16>,
        n: usize,
        algo: SpmmAlgo,
    ) -> Result<SpmmPlan, EngineError> {
        if n == 0 {
            return Err(EngineError::EmptyDimension {
                what: "n (RHS columns)",
            });
        }
        if !matches!(a.v(), 1 | 2 | 4 | 8) {
            return Err(EngineError::UnsupportedV { v: a.v() });
        }
        let desc = SpmmDesc {
            m: a.rows(),
            k: a.cols(),
            n,
            v: a.v(),
            sparsity: a.pattern().sparsity(),
        };
        let mut plan_span = self.sink.span(Track::ENGINE, "plan spmm", "engine");
        plan_span.arg("m", desc.m);
        plan_span.arg("k", desc.k);
        plan_span.arg("n", desc.n);
        plan_span.arg("v", desc.v);
        let (resolved, scheme) = self.resolve_spmm(&desc, algo, a);
        plan_span.arg("algo", resolved.label());
        if let Some(s) = &scheme {
            plan_span.arg("scheme", s.label());
        }
        self.record_plan_certificate(resolved.label(), desc.m, desc.n, desc.k, desc.v);
        let plan = {
            let _stage = self.sink.span(Track::ENGINE, "stage spmm", "engine");
            SpmmPlan::build(
                self.gpu.clone(),
                desc,
                algo,
                resolved,
                scheme,
                a,
                Arc::clone(&self.sink),
                Arc::clone(&self.counters),
                self.memo.clone(),
                self.timing,
                self.backend,
            )
        };
        self.counters.plans_built.fetch_add(1, Ordering::Relaxed);
        Ok(plan)
    }

    /// Infallible [`Context::try_plan_spmm`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message if `n == 0` or the
    /// operand's V is unsupported.
    pub fn plan_spmm(&self, a: &VectorSparse<f16>, n: usize, algo: SpmmAlgo) -> SpmmPlan {
        self.try_plan_spmm(a, n, algo)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Capture an SDDMM problem `C = (A[m×k] · B[k×n]) ∘ mask` as a plan.
    ///
    /// The mask is the structural operand shared by every run; `k` is the
    /// inner dimension every later [`SddmmPlan::run`] must match.
    pub fn try_plan_sddmm(
        &self,
        mask: &SparsityPattern,
        k: usize,
        algo: SddmmAlgo,
    ) -> Result<SddmmPlan, EngineError> {
        if k == 0 {
            return Err(EngineError::EmptyDimension {
                what: "k (inner dimension)",
            });
        }
        if !matches!(mask.v(), 1 | 2 | 4 | 8) {
            return Err(EngineError::UnsupportedV { v: mask.v() });
        }
        let desc = SddmmDesc {
            m: mask.rows(),
            n: mask.cols(),
            k,
            v: mask.v(),
            sparsity: mask.sparsity(),
        };
        let mut plan_span = self.sink.span(Track::ENGINE, "plan sddmm", "engine");
        plan_span.arg("m", desc.m);
        plan_span.arg("k", desc.k);
        plan_span.arg("n", desc.n);
        plan_span.arg("v", desc.v);
        let resolved = self.resolve_sddmm(&desc, algo, mask);
        plan_span.arg("algo", resolved.label());
        self.record_plan_certificate(resolved.label(), desc.m, desc.n, desc.k, desc.v);
        let plan = {
            let _stage = self.sink.span(Track::ENGINE, "stage sddmm", "engine");
            SddmmPlan::build(
                self.gpu.clone(),
                desc,
                algo,
                resolved,
                mask,
                Arc::clone(&self.sink),
                Arc::clone(&self.counters),
                self.memo.clone(),
                self.timing,
                self.backend,
            )
        };
        self.counters.plans_built.fetch_add(1, Ordering::Relaxed);
        Ok(plan)
    }

    /// Infallible [`Context::try_plan_sddmm`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message if `k == 0` or the mask's
    /// V is unsupported.
    pub fn plan_sddmm(&self, mask: &SparsityPattern, k: usize, algo: SddmmAlgo) -> SddmmPlan {
        self.try_plan_sddmm(mask, k, algo)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// One-shot SpMM through the engine: plan, run, discard. Algorithm
    /// selection still goes through the plan cache, so repeated one-shots
    /// at the same descriptor tune only once.
    pub fn spmm(
        &self,
        a: &VectorSparse<f16>,
        b: &DenseMatrix<f16>,
        algo: SpmmAlgo,
    ) -> DenseMatrix<f16> {
        self.plan_spmm(a, b.cols(), algo).run(b)
    }

    /// One-shot SpMM profile through the engine.
    pub fn profile_spmm(
        &self,
        a: &VectorSparse<f16>,
        b: &DenseMatrix<f16>,
        algo: SpmmAlgo,
    ) -> KernelProfile {
        self.plan_spmm(a, b.cols(), algo).profile(b)
    }

    /// One-shot SDDMM through the engine.
    pub fn sddmm(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
        mask: &SparsityPattern,
        algo: SddmmAlgo,
    ) -> VectorSparse<f16> {
        self.plan_sddmm(mask, a.cols(), algo).run(a, b)
    }

    /// One-shot SDDMM profile through the engine.
    pub fn profile_sddmm(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
        mask: &SparsityPattern,
        algo: SddmmAlgo,
    ) -> KernelProfile {
        self.plan_sddmm(mask, a.cols(), algo).profile(a, b)
    }

    /// Attach the precision certificate of the resolved kernel at this
    /// descriptor to the context's counters (surfaced in [`Report`]).
    /// Algorithm labels coincide with registry labels, so the lookup is a
    /// parse; sparsity does not enter the error model.
    fn record_plan_certificate(&self, label: &'static str, m: usize, n: usize, k: usize, v: usize) {
        if let Some(id) = KernelId::parse(label) {
            let shape = registry::Shape {
                m,
                n,
                k,
                v,
                sparsity: 0.0,
                seed: 0,
            };
            let cert = registry::model_for(id, &shape).certificate(label);
            self.counters.record_certificate(label, cert);
        }
    }

    fn resolve_spmm(
        &self,
        desc: &SpmmDesc,
        algo: SpmmAlgo,
        a: &VectorSparse<f16>,
    ) -> (SpmmAlgo, Option<TilingScheme>) {
        if algo != SpmmAlgo::Auto {
            // A fixed algorithm executes at its default scheme point.
            return (algo, None);
        }
        let key = PlanKey {
            op: OpKind::Spmm,
            m: desc.m,
            k: desc.k,
            n: desc.n,
            v: desc.v,
            sparsity_bucket: bucket(desc.sparsity),
        };
        if let Some(Choice::Spmm(cached, scheme)) = self.cache_lock().get(&key).copied() {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (cached, scheme);
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let (tuned, scheme) = {
            let mut tune_span = self.sink.span(Track::ENGINE, "tune spmm", "engine");
            let (tuned, scheme) = tuner::tune_spmm(&self.gpu, a, desc.n, &self.counters);
            tune_span.arg("winner", tuned.label());
            if let Some(s) = &scheme {
                tune_span.arg("scheme", s.label());
            }
            (tuned, scheme)
        };
        self.cache_lock().insert(key, Choice::Spmm(tuned, scheme));
        (tuned, scheme)
    }

    fn resolve_sddmm(
        &self,
        desc: &SddmmDesc,
        algo: SddmmAlgo,
        mask: &SparsityPattern,
    ) -> SddmmAlgo {
        if algo != SddmmAlgo::Auto {
            return algo;
        }
        let key = PlanKey {
            op: OpKind::Sddmm,
            m: desc.m,
            k: desc.k,
            n: desc.n,
            v: desc.v,
            sparsity_bucket: bucket(desc.sparsity),
        };
        if let Some(Choice::Sddmm(cached)) = self.cache_lock().get(&key).copied() {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        let tuned = {
            let mut tune_span = self.sink.span(Track::ENGINE, "tune sddmm", "engine");
            let tuned = tuner::tune_sddmm(&self.gpu, mask, desc.k, &self.counters);
            tune_span.arg("winner", tuned.label());
            tuned
        };
        self.cache_lock().insert(key, Choice::Sddmm(tuned));
        tuned
    }
}

/// Aggregated cycle estimate for a planned batch executed as a
/// back-to-back stream of launches of one shape.
#[derive(Clone, Debug)]
pub struct BatchProfile {
    /// Profile of one batch element.
    pub element: KernelProfile,
    /// Number of batch elements.
    pub elements: usize,
}

impl BatchProfile {
    /// Total cycles for the stream.
    pub fn cycles(&self) -> f64 {
        self.element.cycles * self.elements as f64
    }
}

/// Deterministic Blocked-ELL surrogate of a vector-sparse matrix (the
/// Fig. 16 construction: the Blocked-ELL benchmark shares shape and
/// sparsity, not exact structure).
///
/// The seed hashes the **full pattern structure**, fixing the PR-2 bug
/// where the old `api::ell_equivalent` seeded only by `nnz`: two distinct
/// problems with equal nonzero counts shared one surrogate, and every
/// call paid for a fresh re-encoding. A plan computes this once and
/// reuses it across all of its runs.
pub(crate) fn ell_twin(a: &VectorSparse<f16>) -> BlockedEll<f16> {
    let p = a.pattern();
    let block = p.v().max(2); // Blocked-ELL needs square blocks ≥ 2.
    let h = pattern_structure_hash(p);
    gen::random_blocked_ell::<f16>(p.rows(), p.cols(), block, p.sparsity(), h)
}

/// FNV-1a over a pattern's full structure (column indices then row
/// pointers), via the shared [`sig`] module — the same hash seeds the
/// Blocked-ELL twin and feeds the memoizer's operand fingerprints, so
/// "same structure" means the same thing everywhere.
pub(crate) fn pattern_structure_hash(p: &SparsityPattern) -> u64 {
    let h = sig::fnv1a_u32s(sig::FNV_OFFSET, p.col_idx().iter().copied());
    sig::fnv1a_u32s(h, p.row_ptr().iter().map(|&r| r as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference, Layout};

    #[test]
    fn fixed_algo_plan_never_tunes() {
        let ctx = Context::builder().gpu(GpuConfig::small()).build();
        let a = gen::random_vector_sparse::<f16>(16, 32, 4, 0.6, 1);
        let b = gen::random_dense::<f16>(32, 64, Layout::RowMajor, 2);
        let plan = ctx.plan_spmm(&a, 64, SpmmAlgo::Octet);
        let got = plan.run(&b);
        assert_eq!(got.max_abs_diff(&reference::spmm_vs(&a, &b)), 0.0);
        let s = ctx.stats();
        assert_eq!(s.tuner_launches, 0);
        assert_eq!(s.cache_misses, 0);
        assert_eq!(s.plans_built, 1);
    }

    #[test]
    fn auto_tunes_once_per_descriptor() {
        let ctx = Context::builder().gpu(GpuConfig::small()).build();
        let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.8, 3);
        let p1 = ctx.plan_spmm(&a, 64, SpmmAlgo::Auto);
        let after_first = ctx.stats();
        assert_eq!(after_first.cache_misses, 1);
        assert!(after_first.tuner_launches >= 2, "tuner profiled candidates");
        // Same descriptor (different values, same structure class): hit.
        let a2 = gen::random_vector_sparse::<f16>(32, 64, 4, 0.8, 4);
        let p2 = ctx.plan_spmm(&a2, 64, SpmmAlgo::Auto);
        let after_second = ctx.stats();
        assert_eq!(after_second.cache_hits, 1);
        assert_eq!(after_second.tuner_launches, after_first.tuner_launches);
        assert_eq!(p1.algo(), p2.algo());
    }

    #[test]
    fn different_sparsity_retunes() {
        let ctx = Context::builder().gpu(GpuConfig::small()).build();
        let sparse = gen::random_vector_sparse::<f16>(32, 64, 4, 0.9, 5);
        let dense_ish = gen::random_vector_sparse::<f16>(32, 64, 4, 0.3, 6);
        let _ = ctx.plan_spmm(&sparse, 64, SpmmAlgo::Auto);
        let _ = ctx.plan_spmm(&dense_ish, 64, SpmmAlgo::Auto);
        assert_eq!(ctx.stats().cache_misses, 2, "distinct sparsity buckets");
    }

    #[test]
    fn ell_twin_is_deterministic_and_structure_sensitive() {
        let a = gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 7);
        let t1 = ell_twin(&a);
        let t2 = ell_twin(&a);
        assert_eq!(
            t1.block_col_idx(),
            t2.block_col_idx(),
            "same problem, same twin"
        );
        // A different structure with the same shape/nnz gets its own twin
        // (the old nnz-only seed collapsed these).
        let b = gen::random_vector_sparse::<f16>(16, 32, 4, 0.5, 8);
        if a.pattern().col_idx() != b.pattern().col_idx() {
            let t3 = ell_twin(&b);
            assert_ne!(t1.block_col_idx(), t3.block_col_idx());
        }
    }
}
