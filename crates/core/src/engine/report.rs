//! Aggregated per-context metrics: what the engine did and what it cost.

use super::EngineStats;
use vecsparse_gpu_sim::MemoStats;
use vecsparse_precision::Certificate;
use vecsparse_waveprove::WaveCertificate;

/// Run/profile aggregate for one concrete kernel algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlgoReport {
    /// Kernel label (e.g. `"spmm-octet"`).
    pub algo: &'static str,
    /// Functional runs executed through plans of this algorithm.
    pub runs: u64,
    /// Performance profiles taken.
    pub profiles: u64,
    /// Total estimated cycles over those profiles.
    pub total_cycles: f64,
}

impl AlgoReport {
    /// Mean estimated cycles per profile (0 when never profiled).
    pub fn mean_cycles(&self) -> f64 {
        if self.profiles == 0 {
            0.0
        } else {
            self.total_cycles / self.profiles as f64
        }
    }
}

/// Everything a [`super::Context`] observed, in one snapshot: cache and
/// tuner behaviour, per-algorithm activity, and trace-sink occupancy.
/// Built by [`super::Context::report`].
#[derive(Clone, Debug)]
pub struct Report {
    /// Cache/tuner counters.
    pub stats: EngineStats,
    /// Per-algorithm aggregates, sorted by label.
    pub algos: Vec<AlgoReport>,
    /// Static precision certificates for every kernel planned through this
    /// context, sorted by label. The loosest (largest) bound seen across all
    /// planned problem shapes is retained per kernel.
    pub certificates: Vec<Certificate>,
    /// Wave-equivalence certificates per planned algorithm (the latest
    /// certification per kernel label), sorted by label. Empty unless the
    /// context memoizes.
    pub wave_certificates: Vec<(&'static str, WaveCertificate)>,
    /// Memory-footprint (shard) certificate summaries per planned
    /// algorithm, sorted by label. Empty unless the context was built
    /// with [`super::ContextBuilder::shard_certification`]; each entry
    /// records the shardability verdict of the first performance launch.
    pub shard_certificates: Vec<(&'static str, String)>,
    /// Wave-memoizer counters (None when memoization is disabled).
    pub memo: Option<MemoStats>,
    /// Distinct tuning decisions held in the plan cache.
    pub cached_plans: usize,
    /// Events currently retained by the context's trace sink.
    pub trace_events: usize,
    /// Events the sink evicted (ring overflow).
    pub trace_dropped: u64,
    /// Worker threads the engine's parallel regions (tuning, batch
    /// fan-out, wave simulation) use, as configured at snapshot time.
    pub threads: usize,
    /// Wall-clock milliseconds spent inside engine execution entry
    /// points (runs, profiles, batches, tuning). Batch fan-out is
    /// measured at the region boundary, so concurrent elements count
    /// elapsed time once.
    pub wall_ms: f64,
}

impl Report {
    /// Fraction of `Auto` resolutions answered from the plan cache,
    /// 0..1 (0 when no `Auto` plan was ever requested).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.stats.cache_hits + self.stats.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.stats.cache_hits as f64 / total as f64
        }
    }

    /// Render a human-readable table of the report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(out, "== engine report");
        let _ = writeln!(
            out,
            "   plans built {:>5}   cached decisions {:>4}   cache hit ratio {:>5.1}% ({} hits / {} misses)",
            s.plans_built,
            self.cached_plans,
            100.0 * self.cache_hit_ratio(),
            s.cache_hits,
            s.cache_misses
        );
        let _ = writeln!(
            out,
            "   tuner profiles run {:>4}   trace events {:>7}   dropped {:>5}",
            s.tuner_launches, self.trace_events, self.trace_dropped
        );
        let _ = writeln!(
            out,
            "   threads {:>2}   engine wall time {:>10.3} ms",
            self.threads, self.wall_ms
        );
        if !self.algos.is_empty() {
            let _ = writeln!(
                out,
                "   {:<18} {:>6} {:>9} {:>14} {:>12}",
                "algo", "runs", "profiles", "total cycles", "mean cycles"
            );
            for a in &self.algos {
                let _ = writeln!(
                    out,
                    "   {:<18} {:>6} {:>9} {:>14.0} {:>12.0}",
                    a.algo,
                    a.runs,
                    a.profiles,
                    a.total_cycles,
                    a.mean_cycles()
                );
            }
        }
        if let Some(memo) = &self.memo {
            let _ = writeln!(
                out,
                "   memoizer: wave {} hit / {} miss, launch {} hit / {} miss, \
                 {} audits, hit rate {:>5.1}%",
                memo.wave_hits,
                memo.wave_misses,
                memo.launch_hits,
                memo.launch_misses,
                memo.audits,
                100.0 * memo.hit_rate()
            );
        }
        if !self.wave_certificates.is_empty() {
            let _ = writeln!(out, "   wave-equivalence certificates:");
            for (label, cert) in &self.wave_certificates {
                let _ = writeln!(out, "   {:<18} {}", label, cert.summary());
            }
        }
        if !self.shard_certificates.is_empty() {
            let _ = writeln!(out, "   shard certificates:");
            for (label, summary) in &self.shard_certificates {
                let _ = writeln!(out, "   {:<18} {}", label, summary);
            }
        }
        if !self.certificates.is_empty() {
            let _ = writeln!(
                out,
                "   {:<18} {:>12} {:>12} {:>10}",
                "certificate", "abs bound", "rel bound", "max |out|"
            );
            for c in &self.certificates {
                let _ = writeln!(
                    out,
                    "   {:<18} {:>12.3e} {:>12.3e} {:>10.3e}",
                    c.kernel, c.abs_error_bound, c.rel_error_bound, c.max_abs_output
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_render_handle_empty_and_filled() {
        let empty = Report {
            stats: EngineStats::default(),
            algos: Vec::new(),
            certificates: Vec::new(),
            wave_certificates: Vec::new(),
            shard_certificates: Vec::new(),
            memo: None,
            cached_plans: 0,
            trace_events: 0,
            trace_dropped: 0,
            threads: 1,
            wall_ms: 0.0,
        };
        assert_eq!(empty.cache_hit_ratio(), 0.0);
        assert!(empty.render().contains("engine report"));
        assert!(empty.render().contains("threads"));

        let filled = Report {
            stats: EngineStats {
                tuner_launches: 4,
                cache_hits: 3,
                cache_misses: 1,
                plans_built: 5,
            },
            algos: vec![AlgoReport {
                algo: "spmm-octet",
                runs: 7,
                profiles: 2,
                total_cycles: 2000.0,
            }],
            certificates: vec![Certificate {
                kernel: "spmm-octet".to_string(),
                max_abs_output: 256.0,
                abs_error_bound: 0.126,
                rel_error_bound: 0.126 / 256.0,
                reduction_len: 64,
                stores_f16: true,
            }],
            wave_certificates: Vec::new(),
            shard_certificates: vec![("spmm-octet", "SHARDABLE 8 CTAs".to_string())],
            memo: Some(MemoStats {
                wave_hits: 3,
                wave_misses: 1,
                audits: 1,
                launch_hits: 4,
                launch_misses: 2,
                wave_entries: 1,
            }),
            cached_plans: 1,
            trace_events: 42,
            trace_dropped: 0,
            threads: 4,
            wall_ms: 12.5,
        };
        assert_eq!(filled.cache_hit_ratio(), 0.75);
        assert_eq!(filled.algos[0].mean_cycles(), 1000.0);
        let r = filled.render();
        assert!(r.contains("spmm-octet"));
        assert!(r.contains("75.0%"));
        assert!(r.contains("memoizer"), "memo stats render when present");
        assert!(r.contains("shard certificates"));
        assert!(!empty.render().contains("memoizer"));
        assert!(!empty.render().contains("shard certificates"));
    }
}
