//! A captured SDDMM problem: the mask is the plan's structural operand;
//! the pool's address space is recycled across runs.

use super::BatchProfile;
use crate::api::SddmmAlgo;
use crate::sddmm::{FpuSubwarpSddmm, OctetSddmm, OctetVariant, WmmaSddmm};
use rayon::prelude::*;
use std::sync::Mutex;
use vecsparse_formats::{DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{launch, GpuConfig, KernelProfile, MemPool, Mode, PoolMark};

/// Problem descriptor captured by [`SddmmPlan`]:
/// `C = (A[m×k] · B[k×n]) ∘ mask[m×n]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SddmmDesc {
    /// Mask (and output) rows.
    pub m: usize,
    /// Mask (and output) columns.
    pub n: usize,
    /// Inner dimension — fixed at plan time.
    pub k: usize,
    /// Column-vector length of the mask.
    pub v: usize,
    /// Zero fraction of the mask.
    pub sparsity: f64,
}

struct SddmmState {
    mem: MemPool,
    base: PoolMark,
}

/// A planned SDDMM. Unlike SpMM, both value operands change per run (the
/// mask contributes structure, not values, and its device residency is
/// address-only), so the plan's reuse is the pool itself: every run
/// rewinds the arena to the plan's base mark instead of growing a fresh
/// allocation.
///
/// Built by [`super::Context::plan_sddmm`].
pub struct SddmmPlan {
    gpu: GpuConfig,
    desc: SddmmDesc,
    algo: SddmmAlgo,
    requested: SddmmAlgo,
    mask: SparsityPattern,
    state: Mutex<SddmmState>,
}

impl SddmmPlan {
    pub(super) fn build(
        gpu: GpuConfig,
        desc: SddmmDesc,
        requested: SddmmAlgo,
        algo: SddmmAlgo,
        mask: &SparsityPattern,
    ) -> Self {
        assert_ne!(algo, SddmmAlgo::Auto, "algo must be resolved");
        let mem = MemPool::new();
        let base = mem.mark();
        SddmmPlan {
            gpu,
            desc,
            algo,
            requested,
            mask: mask.clone(),
            state: Mutex::new(SddmmState { mem, base }),
        }
    }

    /// The problem descriptor this plan was built for.
    pub fn desc(&self) -> SddmmDesc {
        self.desc
    }

    /// The concrete algorithm the plan executes (never `Auto`).
    pub fn algo(&self) -> SddmmAlgo {
        self.algo
    }

    /// The algorithm the caller asked for (possibly `Auto`).
    pub fn requested_algo(&self) -> SddmmAlgo {
        self.requested
    }

    /// The mask the plan captured.
    pub fn mask(&self) -> &SparsityPattern {
        &self.mask
    }

    fn check_operands(&self, a: &DenseMatrix<f16>, b: &DenseMatrix<f16>) {
        assert_eq!(a.rows(), self.desc.m, "A rows must match mask rows");
        assert_eq!(a.cols(), self.desc.k, "A cols must match plan k");
        assert_eq!(b.rows(), self.desc.k, "B rows must match plan k");
        assert_eq!(b.cols(), self.desc.n, "B cols must match mask cols");
        assert_eq!(a.layout(), Layout::RowMajor, "A must be row-major");
        assert_eq!(b.layout(), Layout::ColMajor, "B must be column-major");
    }

    fn dispatch<R>(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
        mode: Mode,
        finish: impl FnOnce(
            &MemPool,
            &dyn Fn(&MemPool) -> VectorSparse<f16>,
            Option<KernelProfile>,
        ) -> R,
    ) -> R {
        self.check_operands(a, b);
        let mut guard = self.state.lock().unwrap();
        let base = guard.base;
        let SddmmState { mem, .. } = &mut *guard;
        mem.release_to(base);
        match self.algo {
            SddmmAlgo::OctetReg | SddmmAlgo::OctetShfl | SddmmAlgo::OctetArch => {
                let variant = match self.algo {
                    SddmmAlgo::OctetReg => OctetVariant::Reg,
                    SddmmAlgo::OctetShfl => OctetVariant::Shfl,
                    _ => OctetVariant::Arch,
                };
                let kernel = OctetSddmm::new(mem, a, b, &self.mask, variant, mode);
                let out = launch(&self.gpu, mem, &kernel, mode);
                finish(mem, &|m| kernel.result(m), out.profile)
            }
            SddmmAlgo::FpuSubwarp => {
                let kernel = FpuSubwarpSddmm::new(mem, a, b, &self.mask, mode);
                let out = launch(&self.gpu, mem, &kernel, mode);
                finish(mem, &|m| kernel.result(m), out.profile)
            }
            SddmmAlgo::Wmma => {
                let kernel = WmmaSddmm::new(mem, a, b, &self.mask, mode);
                let out = launch(&self.gpu, mem, &kernel, mode);
                finish(mem, &|m| kernel.result(m), out.profile)
            }
            SddmmAlgo::Auto => unreachable!("resolved at plan build"),
        }
    }

    /// Run the planned SDDMM on one `(A, B)` pair.
    ///
    /// # Panics
    /// Panics if the operands do not match the plan's `m × k` / `k × n`
    /// row-major / column-major shapes.
    pub fn run(&self, a: &DenseMatrix<f16>, b: &DenseMatrix<f16>) -> VectorSparse<f16> {
        self.dispatch(a, b, Mode::Functional, |mem, result, _| result(mem))
    }

    /// Profile the planned SDDMM (sampled performance model).
    pub fn profile(&self, a: &DenseMatrix<f16>, b: &DenseMatrix<f16>) -> KernelProfile {
        self.dispatch(a, b, Mode::Performance, |_, _, profile| {
            profile.expect("performance launch returns a profile")
        })
    }

    /// Run every `(A, B)` pair, returning outputs in order; identical to
    /// calling [`run`](SddmmPlan::run) sequentially.
    ///
    /// # Panics
    /// Panics on an empty batch or mismatched batch lengths.
    pub fn run_batch(
        &self,
        a_batch: &[DenseMatrix<f16>],
        b_batch: &[DenseMatrix<f16>],
    ) -> Vec<VectorSparse<f16>> {
        assert_eq!(a_batch.len(), b_batch.len(), "batch length mismatch");
        assert!(!a_batch.is_empty(), "empty batch");
        a_batch
            .into_par_iter()
            .zip(b_batch.into_par_iter())
            .map(|(a, b)| self.run(a, b))
            .collect()
    }

    /// Profile a batch as a back-to-back stream of one shape.
    ///
    /// # Panics
    /// Panics on an empty batch or mismatched batch lengths.
    pub fn profile_batch(
        &self,
        a_batch: &[DenseMatrix<f16>],
        b_batch: &[DenseMatrix<f16>],
    ) -> BatchProfile {
        assert_eq!(a_batch.len(), b_batch.len(), "batch length mismatch");
        assert!(!a_batch.is_empty(), "empty batch");
        BatchProfile {
            element: self.profile(&a_batch[0], &b_batch[0]),
            elements: a_batch.len(),
        }
    }
}
