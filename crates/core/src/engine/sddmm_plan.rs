//! A captured SDDMM problem: the mask is the plan's structural operand;
//! the pool's address space is recycled across runs.

use super::{pattern_structure_hash, BatchProfile, Counters, EngineError};
use crate::api::SddmmAlgo;
use crate::sddmm::{FpuSubwarpSddmm, OctetSddmm, OctetVariant, WmmaSddmm};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};
use vecsparse_formats::{DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::sig::FingerprintHasher;
use vecsparse_gpu_sim::{
    Backend, GpuConfig, KernelProfile, KernelSpec, Launch, LaunchOutput, MemPool, Mode, PoolMark,
    TimingMode, TraceSink, Track, WaveMemo,
};
use vecsparse_waveprove::{certify, CertifyOptions};

/// Problem descriptor captured by [`SddmmPlan`]:
/// `C = (A[m×k] · B[k×n]) ∘ mask[m×n]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SddmmDesc {
    /// Mask (and output) rows.
    pub m: usize,
    /// Mask (and output) columns.
    pub n: usize,
    /// Inner dimension — fixed at plan time.
    pub k: usize,
    /// Column-vector length of the mask.
    pub v: usize,
    /// Zero fraction of the mask.
    pub sparsity: f64,
}

#[derive(Clone)]
struct SddmmState {
    mem: MemPool,
    base: PoolMark,
}

/// A planned SDDMM. Unlike SpMM, both value operands change per run (the
/// mask contributes structure, not values, and its device residency is
/// address-only), so the plan's reuse is the pool itself: every run
/// rewinds the arena to the plan's base mark instead of growing a fresh
/// allocation.
///
/// Built by [`super::Context::plan_sddmm`].
pub struct SddmmPlan {
    gpu: GpuConfig,
    desc: SddmmDesc,
    algo: SddmmAlgo,
    requested: SddmmAlgo,
    mask: SparsityPattern,
    state: Mutex<SddmmState>,
    /// Checked-in clones of the primary state for batched fan-out; every
    /// dispatch rewinds its state to the base mark before allocating.
    spares: Mutex<Vec<SddmmState>>,
    sink: Arc<TraceSink>,
    counters: Arc<Counters>,
    /// Context-wide wave memoizer (None: honest simulation only).
    memo: Option<Arc<WaveMemo>>,
    /// Scheduler timing mode inherited from the context.
    timing: TimingMode,
    /// Functional execution backend inherited from the context.
    backend: Backend,
}

impl SddmmPlan {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn build(
        gpu: GpuConfig,
        desc: SddmmDesc,
        requested: SddmmAlgo,
        algo: SddmmAlgo,
        mask: &SparsityPattern,
        sink: Arc<TraceSink>,
        counters: Arc<Counters>,
        memo: Option<Arc<WaveMemo>>,
        timing: TimingMode,
        backend: Backend,
    ) -> Self {
        assert_ne!(algo, SddmmAlgo::Auto, "algo must be resolved");
        let mem = MemPool::new();
        let base = mem.mark();
        SddmmPlan {
            gpu,
            desc,
            algo,
            requested,
            mask: mask.clone(),
            state: Mutex::new(SddmmState { mem, base }),
            spares: Mutex::new(Vec::new()),
            sink,
            counters,
            memo,
            timing,
            backend,
        }
    }

    /// Launch through the memoizer for certified performance launches;
    /// see [`SpmmPlan::launch`](super::SpmmPlan). Unlike SpMM the pool is
    /// restaged per run, so the operand fingerprint (mask structure +
    /// descriptor + post-staging pool layout) is taken here — the rewind
    /// discipline makes it identical across runs of one plan.
    fn launch(&self, mem: &mut MemPool, kernel: &dyn KernelSpec, mode: Mode) -> LaunchOutput {
        if mode == Mode::Performance && self.counters.shard_cert_wanted(self.algo.label()) {
            let cert = vecsparse_shardprove::analyze(mem, kernel);
            self.counters
                .record_shard_cert(self.algo.label(), cert.summary());
        }
        let memo = if mode == Mode::Performance {
            self.memo.as_ref().and_then(|m| {
                let operand_fp = {
                    let mut h = FingerprintHasher::new();
                    h.write_bytes(b"sddmm");
                    h.write_bytes(self.algo.label().as_bytes());
                    for d in [self.desc.m, self.desc.n, self.desc.k, self.desc.v] {
                        h.write_u64(d as u64);
                    }
                    h.write_u64(pattern_structure_hash(&self.mask));
                    h.write_u64(mem.layout_hash());
                    h.finish()
                };
                self.counters
                    .launch_sig_for(self.algo.label(), operand_fp, || {
                        certify(mem, kernel, &CertifyOptions::default())
                    })
                    .map(|sig| (m.as_ref(), sig))
            })
        } else {
            None
        };
        Launch::new(mem, kernel)
            .gpu(&self.gpu)
            .mode(mode)
            .timing(self.timing)
            .traced(&self.sink)
            .memo_opt(memo)
            .backend(self.backend)
            .run()
    }

    /// The problem descriptor this plan was built for.
    pub fn desc(&self) -> SddmmDesc {
        self.desc
    }

    /// The concrete algorithm the plan executes (never `Auto`).
    pub fn algo(&self) -> SddmmAlgo {
        self.algo
    }

    /// The algorithm the caller asked for (possibly `Auto`).
    pub fn requested_algo(&self) -> SddmmAlgo {
        self.requested
    }

    /// The mask the plan captured.
    pub fn mask(&self) -> &SparsityPattern {
        &self.mask
    }

    fn check_operands(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
    ) -> Result<(), EngineError> {
        if a.rows() != self.desc.m {
            return Err(EngineError::DimensionMismatch {
                what: "A rows",
                expected: self.desc.m,
                got: a.rows(),
            });
        }
        if a.cols() != self.desc.k {
            return Err(EngineError::DimensionMismatch {
                what: "A cols",
                expected: self.desc.k,
                got: a.cols(),
            });
        }
        if b.rows() != self.desc.k {
            return Err(EngineError::DimensionMismatch {
                what: "B rows",
                expected: self.desc.k,
                got: b.rows(),
            });
        }
        if b.cols() != self.desc.n {
            return Err(EngineError::DimensionMismatch {
                what: "B cols",
                expected: self.desc.n,
                got: b.cols(),
            });
        }
        if a.layout() != Layout::RowMajor {
            return Err(EngineError::LayoutMismatch {
                what: "A",
                expected: "row-major",
                got: "column-major",
            });
        }
        if b.layout() != Layout::ColMajor {
            return Err(EngineError::LayoutMismatch {
                what: "B",
                expected: "column-major",
                got: "row-major",
            });
        }
        Ok(())
    }

    fn dispatch<R>(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
        mode: Mode,
        finish: impl FnOnce(
            &MemPool,
            &dyn Fn(&MemPool) -> VectorSparse<f16>,
            Option<KernelProfile>,
        ) -> R,
    ) -> Result<R, EngineError> {
        self.check_operands(a, b)?;
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.dispatch_with(&mut guard, a, b, mode, finish)
    }

    /// [`dispatch`](SddmmPlan::dispatch) against a checked-out spare
    /// state (batched fan-out): pop a spare or clone the primary, run
    /// without holding the primary lock, then check the state back in.
    fn dispatch_pooled<R>(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
        mode: Mode,
        finish: impl FnOnce(
            &MemPool,
            &dyn Fn(&MemPool) -> VectorSparse<f16>,
            Option<KernelProfile>,
        ) -> R,
    ) -> Result<R, EngineError> {
        self.check_operands(a, b)?;
        let spare = self
            .spares
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        let mut state = match spare {
            Some(s) => s,
            None => self
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        };
        let out = self.dispatch_with(&mut state, a, b, mode, finish);
        self.spares
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(state);
        out
    }

    /// Dispatch core, against whichever [`SddmmState`] the caller owns.
    fn dispatch_with<R>(
        &self,
        state: &mut SddmmState,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
        mode: Mode,
        finish: impl FnOnce(
            &MemPool,
            &dyn Fn(&MemPool) -> VectorSparse<f16>,
            Option<KernelProfile>,
        ) -> R,
    ) -> Result<R, EngineError> {
        let base = state.base;
        let SddmmState { mem, .. } = state;
        mem.release_to(base);
        let out = match self.algo {
            SddmmAlgo::OctetReg | SddmmAlgo::OctetShfl | SddmmAlgo::OctetArch => {
                let variant = match self.algo {
                    SddmmAlgo::OctetReg => OctetVariant::Reg,
                    SddmmAlgo::OctetShfl => OctetVariant::Shfl,
                    _ => OctetVariant::Arch,
                };
                let kernel = OctetSddmm::new(mem, a, b, &self.mask, variant, mode);
                let out = self.launch(mem, &kernel, mode);
                finish(mem, &|m| kernel.result(m), out.profile)
            }
            SddmmAlgo::FpuSubwarp => {
                let kernel = FpuSubwarpSddmm::new(mem, a, b, &self.mask, mode);
                let out = self.launch(mem, &kernel, mode);
                finish(mem, &|m| kernel.result(m), out.profile)
            }
            SddmmAlgo::Wmma => {
                let kernel = WmmaSddmm::new(mem, a, b, &self.mask, mode);
                let out = self.launch(mem, &kernel, mode);
                finish(mem, &|m| kernel.result(m), out.profile)
            }
            SddmmAlgo::Auto => {
                return Err(EngineError::Internal {
                    what: "Auto algorithm survived plan build",
                })
            }
        };
        Ok(out)
    }

    /// Run the planned SDDMM on one `(A, B)` pair.
    pub fn try_run(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
    ) -> Result<VectorSparse<f16>, EngineError> {
        let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
        let mut span = self.sink.span(Track::ENGINE, "run sddmm", "engine");
        span.arg("algo", self.algo.label());
        let out = self.dispatch(a, b, Mode::Functional, |mem, result, _| result(mem))?;
        self.counters.record_run(self.algo.label());
        self.counters.add_wall(t0.elapsed());
        Ok(out)
    }

    /// Infallible [`SddmmPlan::try_run`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message if the operands do not
    /// match the plan's `m × k` / `k × n` row-major / column-major
    /// shapes.
    pub fn run(&self, a: &DenseMatrix<f16>, b: &DenseMatrix<f16>) -> VectorSparse<f16> {
        self.try_run(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Profile the planned SDDMM (sampled performance model).
    pub fn try_profile(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
    ) -> Result<KernelProfile, EngineError> {
        let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
        let mut span = self
            .sink
            .span(Track::ENGINE, "run sddmm (profile)", "engine");
        span.arg("algo", self.algo.label());
        let profile = self
            .dispatch(a, b, Mode::Performance, |_, _, profile| profile)?
            .ok_or(EngineError::Internal {
                what: "performance launch returned no profile",
            })?;
        self.counters
            .record_profile(self.algo.label(), profile.cycles);
        self.counters.add_wall(t0.elapsed());
        Ok(profile)
    }

    /// Infallible [`SddmmPlan::try_profile`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message on operand mismatch.
    pub fn profile(&self, a: &DenseMatrix<f16>, b: &DenseMatrix<f16>) -> KernelProfile {
        self.try_profile(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`try_run`](SddmmPlan::try_run) against a checked-out spare
    /// state, for batched fan-out. No per-element engine span:
    /// concurrent workers would interleave ring pushes
    /// nondeterministically.
    fn try_run_pooled(
        &self,
        a: &DenseMatrix<f16>,
        b: &DenseMatrix<f16>,
    ) -> Result<VectorSparse<f16>, EngineError> {
        let out = self.dispatch_pooled(a, b, Mode::Functional, |mem, result, _| result(mem))?;
        self.counters.record_run(self.algo.label());
        Ok(out)
    }

    /// Run every `(A, B)` pair, returning outputs in order. Pairs fan
    /// out across rayon workers, each owning a private clone of the
    /// plan's device state; results are bit-identical to calling
    /// [`try_run`](SddmmPlan::try_run) sequentially. When the context is
    /// tracing, the batch runs sequentially instead so the recorded
    /// timeline stays deterministic.
    pub fn try_run_batch(
        &self,
        a_batch: &[DenseMatrix<f16>],
        b_batch: &[DenseMatrix<f16>],
    ) -> Result<Vec<VectorSparse<f16>>, EngineError> {
        if a_batch.len() != b_batch.len() {
            return Err(EngineError::BatchLengthMismatch {
                a: a_batch.len(),
                b: b_batch.len(),
            });
        }
        if a_batch.is_empty() {
            return Err(EngineError::EmptyBatch);
        }
        for (a, b) in a_batch.iter().zip(b_batch) {
            self.check_operands(a, b)?;
        }
        if self.sink.is_enabled() {
            return a_batch
                .iter()
                .zip(b_batch)
                .map(|(a, b)| self.try_run(a, b))
                .collect();
        }
        let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
        let out = a_batch
            .into_par_iter()
            .zip(b_batch.into_par_iter())
            .map(|(a, b)| self.try_run_pooled(a, b))
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        self.counters.add_wall(t0.elapsed());
        out
    }

    /// Infallible [`SddmmPlan::try_run_batch`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message on an empty batch,
    /// mismatched batch lengths, or any operand mismatch.
    pub fn run_batch(
        &self,
        a_batch: &[DenseMatrix<f16>],
        b_batch: &[DenseMatrix<f16>],
    ) -> Vec<VectorSparse<f16>> {
        self.try_run_batch(a_batch, b_batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Profile a batch as a back-to-back stream of one shape.
    pub fn try_profile_batch(
        &self,
        a_batch: &[DenseMatrix<f16>],
        b_batch: &[DenseMatrix<f16>],
    ) -> Result<BatchProfile, EngineError> {
        if a_batch.len() != b_batch.len() {
            return Err(EngineError::BatchLengthMismatch {
                a: a_batch.len(),
                b: b_batch.len(),
            });
        }
        if a_batch.is_empty() {
            return Err(EngineError::EmptyBatch);
        }
        Ok(BatchProfile {
            element: self.try_profile(&a_batch[0], &b_batch[0])?,
            elements: a_batch.len(),
        })
    }

    /// Infallible [`SddmmPlan::try_profile_batch`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message on an empty batch or
    /// mismatched batch lengths.
    pub fn profile_batch(
        &self,
        a_batch: &[DenseMatrix<f16>],
        b_batch: &[DenseMatrix<f16>],
    ) -> BatchProfile {
        self.try_profile_batch(a_batch, b_batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}
