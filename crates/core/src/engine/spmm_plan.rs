//! A captured SpMM problem: encode once, stage once, run many times.

use super::{ell_twin, pattern_structure_hash, BatchProfile, Counters, EngineError};
use crate::api::SpmmAlgo;
use crate::compose::TilingScheme;
use crate::spmm::{BlockedEllSpmm, DenseGemm, FpuSubwarpSpmm, OctetSpmm, WmmaSpmm};
use crate::util::{download_dense, upload_ell, upload_vs, EllBuffers, VsBuffers};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};
use vecsparse_formats::{BlockedEll, DenseMatrix, Layout, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::sig::{Fingerprint, FingerprintHasher};
use vecsparse_gpu_sim::{
    Backend, BufferId, ElemWidth, GpuConfig, KernelProfile, KernelSpec, Launch, LaunchOutput,
    MemPool, Mode, TimingMode, TraceSink, Track, WaveMemo,
};
use vecsparse_waveprove::{certify, CertifyOptions};

/// Problem descriptor captured by [`SpmmPlan`]: `C[m×n] = A[m×k] · B[k×n]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpmmDesc {
    /// Output rows (sparse operand rows).
    pub m: usize,
    /// Inner dimension (sparse operand cols, RHS rows).
    pub k: usize,
    /// Output columns (RHS cols) — fixed at plan time.
    pub n: usize,
    /// Column-vector length of the sparse operand.
    pub v: usize,
    /// Zero fraction of the sparse operand.
    pub sparsity: f64,
}

/// Device-side handles of the staged sparse operand.
#[derive(Clone, Copy)]
enum Staged {
    Vs(VsBuffers),
    Ell(EllBuffers),
    Dense(BufferId),
}

/// Mutable per-plan device state: the pool plus the reusable RHS and
/// output buffers. Single runs lock the plan's primary state; batched
/// runs check clones out of a spare pool so rayon workers each own
/// private device state and genuinely run concurrently.
#[derive(Clone)]
struct PlanState {
    mem: MemPool,
    staged: Staged,
    /// Whether the staged operand's *values* have been materialised.
    /// Structure arrays are address-only in every mode (kernels read
    /// structure host-side), so plans stage values lazily: a plan that
    /// only ever profiles never pays the host→device value conversion.
    resident: bool,
    b_buf: BufferId,
    out_buf: BufferId,
}

/// A planned SpMM: the sparse operand is encoded and resident in the
/// plan's private [`MemPool`]; each [`run`](SpmmPlan::run) only writes
/// the RHS values into the staged buffer and launches.
///
/// Built by [`super::Context::plan_spmm`].
pub struct SpmmPlan {
    gpu: GpuConfig,
    desc: SpmmDesc,
    algo: SpmmAlgo,
    requested: SpmmAlgo,
    /// Tiling-scheme point the tuner selected for a scheme-compiled
    /// kernel (`None`: the kernel's default scheme).
    scheme: Option<TilingScheme>,
    a: VectorSparse<f16>,
    /// Blocked-ELL surrogate, derived once (fixes the old per-call
    /// re-encoding in `api::ell_equivalent`). Only for `BlockedEll`.
    ell: Option<BlockedEll<f16>>,
    /// Densified twin, derived once. Only for `Dense`.
    dense: Option<DenseMatrix<f16>>,
    state: Mutex<PlanState>,
    /// Checked-in clones of the primary state for batched fan-out. A
    /// clone's RHS/output buffers may hold a previous run's values;
    /// every functional dispatch overwrites both before launching.
    spares: Mutex<Vec<PlanState>>,
    sink: Arc<TraceSink>,
    counters: Arc<Counters>,
    /// Context-wide wave memoizer (None: honest simulation only).
    memo: Option<Arc<WaveMemo>>,
    /// Scheduler timing mode inherited from the context.
    timing: TimingMode,
    /// Functional execution backend inherited from the context.
    backend: Backend,
    /// Fingerprint of everything the memoization signature must cover
    /// beyond the certificate: operation, algorithm, descriptor, the full
    /// pattern structure, and the staged pool layout.
    operand_fp: Fingerprint,
}

impl SpmmPlan {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn build(
        gpu: GpuConfig,
        desc: SpmmDesc,
        requested: SpmmAlgo,
        algo: SpmmAlgo,
        scheme: Option<TilingScheme>,
        a: &VectorSparse<f16>,
        sink: Arc<TraceSink>,
        counters: Arc<Counters>,
        memo: Option<Arc<WaveMemo>>,
        timing: TimingMode,
        backend: Backend,
    ) -> Self {
        assert_ne!(algo, SpmmAlgo::Auto, "algo must be resolved");
        let a = a.clone();
        let mut mem = MemPool::new();
        // Address-only staging throughout: operand values are only read
        // by functional launches, so `dispatch_with` materialises them
        // lazily and profile-only plans skip the conversion entirely.
        let (staged, ell, dense) = match algo {
            SpmmAlgo::BlockedEll => {
                let ell = ell_twin(&a);
                let bufs = upload_ell(&mut mem, &ell, Mode::Performance);
                (Staged::Ell(bufs), Some(ell), None)
            }
            SpmmAlgo::Dense => {
                let dense = a.to_dense(Layout::RowMajor);
                let buf = mem.alloc_ghost(ElemWidth::B16, dense.data().len());
                (Staged::Dense(buf), None, Some(dense))
            }
            _ => (
                Staged::Vs(upload_vs(&mut mem, &a, Mode::Performance)),
                None,
                None,
            ),
        };
        let b_buf = mem.alloc_zeroed(ElemWidth::B16, desc.k * desc.n);
        let out_buf = mem.alloc_zeroed(ElemWidth::B16, desc.m * desc.n);
        // Only the octet SpMM compiles from a scheme today; other
        // algorithms execute at their fixed default point.
        let scheme = if algo == SpmmAlgo::Octet {
            scheme
        } else {
            None
        };
        let operand_fp = {
            let mut h = FingerprintHasher::new();
            h.write_bytes(b"spmm");
            h.write_bytes(algo.label().as_bytes());
            // The scheme changes the compiled program, so it must enter
            // the memo fingerprint. A fixed-algorithm plan and a tuned
            // plan that landed on the default scheme hash identically.
            h.write_bytes(
                scheme
                    .unwrap_or(crate::spmm::compose::DEFAULT_SCHEME)
                    .label()
                    .as_bytes(),
            );
            for d in [desc.m, desc.k, desc.n, desc.v] {
                h.write_u64(d as u64);
            }
            h.write_u64(pattern_structure_hash(a.pattern()));
            h.write_u64(mem.layout_hash());
            h.finish()
        };
        SpmmPlan {
            gpu,
            desc,
            algo,
            requested,
            scheme,
            a,
            ell,
            dense,
            state: Mutex::new(PlanState {
                mem,
                staged,
                resident: false,
                b_buf,
                out_buf,
            }),
            spares: Mutex::new(Vec::new()),
            sink,
            counters,
            memo,
            timing,
            backend,
            operand_fp,
        }
    }

    /// Launch through the memoizer when (a) this is a performance launch,
    /// (b) the context memoizes, and (c) the kernel's wave equivalence is
    /// certified (proved at most once per (algorithm, operand) by the
    /// context's signature cache). Everything else simulates honestly.
    fn launch(&self, mem: &mut MemPool, kernel: &dyn KernelSpec, mode: Mode) -> LaunchOutput {
        if mode == Mode::Performance && self.counters.shard_cert_wanted(self.algo.label()) {
            let cert = vecsparse_shardprove::analyze(mem, kernel);
            self.counters
                .record_shard_cert(self.algo.label(), cert.summary());
        }
        let memo = if mode == Mode::Performance {
            self.memo.as_ref().and_then(|m| {
                self.counters
                    .launch_sig_for(self.algo.label(), self.operand_fp, || {
                        certify(mem, kernel, &CertifyOptions::default())
                    })
                    .map(|sig| (m.as_ref(), sig))
            })
        } else {
            None
        };
        Launch::new(mem, kernel)
            .gpu(&self.gpu)
            .mode(mode)
            .timing(self.timing)
            .traced(&self.sink)
            .memo_opt(memo)
            .backend(self.backend)
            .run()
    }

    /// The problem descriptor this plan was built for.
    pub fn desc(&self) -> SpmmDesc {
        self.desc
    }

    /// The concrete algorithm the plan executes (never `Auto`).
    pub fn algo(&self) -> SpmmAlgo {
        self.algo
    }

    /// The algorithm the caller asked for (possibly `Auto`).
    pub fn requested_algo(&self) -> SpmmAlgo {
        self.requested
    }

    /// The tiling-scheme point the plan's kernel compiles from, when the
    /// algorithm is scheme-compiled: `Some` only for a tuned octet plan
    /// whose sweep landed off (or on) the default; `None` means the
    /// kernel's built-in default scheme.
    pub fn scheme(&self) -> Option<TilingScheme> {
        self.scheme
    }

    /// Label of the effective tiling scheme the plan executes (the
    /// algorithm's default scheme when the tuner did not sweep).
    pub fn scheme_label(&self) -> String {
        match self.scheme {
            Some(s) => s.label(),
            None => crate::registry::KernelId::parse(self.algo.label())
                .map(|id| crate::compose::scheme_for(id).label())
                .unwrap_or_else(|| "default".into()),
        }
    }

    /// The functional execution backend inherited from the context.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn check_rhs(&self, b: &DenseMatrix<f16>) -> Result<(), EngineError> {
        if b.rows() != self.desc.k {
            return Err(EngineError::DimensionMismatch {
                what: "RHS rows",
                expected: self.desc.k,
                got: b.rows(),
            });
        }
        if b.cols() != self.desc.n {
            return Err(EngineError::DimensionMismatch {
                what: "RHS cols",
                expected: self.desc.n,
                got: b.cols(),
            });
        }
        if b.layout() != Layout::RowMajor {
            return Err(EngineError::LayoutMismatch {
                what: "RHS",
                expected: "row-major",
                got: "column-major",
            });
        }
        Ok(())
    }

    /// Execute against the plan's primary state; `finish` reads results
    /// back while the state lock is still held.
    fn dispatch<R>(
        &self,
        b: &DenseMatrix<f16>,
        mode: Mode,
        finish: impl FnOnce(&MemPool, BufferId, Option<KernelProfile>) -> R,
    ) -> Result<R, EngineError> {
        self.check_rhs(b)?;
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.dispatch_with(&mut guard, b, mode, finish)
    }

    /// Execute against a checked-out spare state (batched fan-out): pop
    /// a spare or clone the primary, run without holding the primary
    /// lock, then check the state back in for the next element.
    fn dispatch_pooled<R>(
        &self,
        b: &DenseMatrix<f16>,
        mode: Mode,
        finish: impl FnOnce(&MemPool, BufferId, Option<KernelProfile>) -> R,
    ) -> Result<R, EngineError> {
        self.check_rhs(b)?;
        let spare = self
            .spares
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        let mut state = match spare {
            Some(s) => s,
            None => self
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        };
        let out = self.dispatch_with(&mut state, b, mode, finish);
        self.spares
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(state);
        out
    }

    /// Dispatch core, against whichever [`PlanState`] the caller owns.
    fn dispatch_with<R>(
        &self,
        state: &mut PlanState,
        b: &DenseMatrix<f16>,
        mode: Mode,
        finish: impl FnOnce(&MemPool, BufferId, Option<KernelProfile>) -> R,
    ) -> Result<R, EngineError> {
        let PlanState {
            mem,
            staged,
            resident,
            b_buf,
            out_buf,
        } = state;
        if mode == Mode::Functional {
            if !*resident {
                // Deferred host→device copy of the operand values. The
                // dense twin scatters only stored vectors into a zero
                // image: untouched `f16` zeros convert to the `+0.0` a
                // fresh image already holds, so the bits match a
                // full-image conversion.
                match staged {
                    Staged::Vs(bufs) => mem.materialize(
                        bufs.values,
                        self.a.values().iter().map(|v| v.to_f32()).collect(),
                    ),
                    Staged::Ell(bufs) => {
                        let ell = self.ell.as_ref().ok_or(EngineError::UnstagedBuffer {
                            what: "blocked-ell twin",
                        })?;
                        mem.materialize(
                            bufs.values,
                            ell.values().iter().map(|v| v.to_f32()).collect(),
                        );
                    }
                    Staged::Dense(buf) => mem.materialize(*buf, self.a.to_f32_image()),
                }
                *resident = true;
            }
            mem.replace(*b_buf, b.data().iter().map(|v| v.to_f32()));
            mem.fill(*out_buf, 0.0);
        }
        let kernel: Box<dyn KernelSpec> = match (self.algo, staged) {
            (SpmmAlgo::Octet, Staged::Vs(bufs)) => Box::new(OctetSpmm::from_staged_scheme(
                &self.a,
                b,
                *bufs,
                *b_buf,
                *out_buf,
                self.scheme.unwrap_or(crate::spmm::compose::DEFAULT_SCHEME),
            )),
            (SpmmAlgo::Wmma, Staged::Vs(bufs)) => {
                Box::new(WmmaSpmm::from_staged(&self.a, b, *bufs, *b_buf, *out_buf))
            }
            (SpmmAlgo::FpuSubwarp, Staged::Vs(bufs)) => Box::new(FpuSubwarpSpmm::from_staged(
                &self.a, b, *bufs, *b_buf, *out_buf,
            )),
            (SpmmAlgo::BlockedEll, Staged::Ell(bufs)) => {
                let ell = self.ell.as_ref().ok_or(EngineError::UnstagedBuffer {
                    what: "blocked-ell twin",
                })?;
                Box::new(BlockedEllSpmm::from_staged(
                    ell,
                    b,
                    EllBuffers {
                        values: bufs.values,
                        block_col_idx: bufs.block_col_idx,
                    },
                    *b_buf,
                    *out_buf,
                ))
            }
            (SpmmAlgo::Dense, Staged::Dense(a_buf)) => {
                let dense = self.dense.as_ref().ok_or(EngineError::UnstagedBuffer {
                    what: "densified twin",
                })?;
                Box::new(DenseGemm::from_staged(
                    dense, b, *a_buf, *b_buf, *out_buf, mode,
                ))
            }
            _ => {
                return Err(EngineError::UnstagedBuffer {
                    what: "sparse operand encoding for the planned algorithm",
                })
            }
        };
        let out = self.launch(mem, kernel.as_ref(), mode);
        Ok(finish(mem, *out_buf, out.profile))
    }

    /// Run the planned SpMM on one RHS.
    pub fn try_run(&self, b: &DenseMatrix<f16>) -> Result<DenseMatrix<f16>, EngineError> {
        let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
        let mut span = self.sink.span(Track::ENGINE, "run spmm", "engine");
        span.arg("algo", self.algo.label());
        let (m, n) = (self.desc.m, self.desc.n);
        let out = self.dispatch(b, Mode::Functional, |mem, out_buf, _| {
            download_dense(mem, out_buf, m, n)
        })?;
        self.counters.record_run(self.algo.label());
        self.counters.add_wall(t0.elapsed());
        Ok(out)
    }

    /// Infallible [`SpmmPlan::try_run`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message if `b` does not match the
    /// plan's `k × n` row-major shape.
    pub fn run(&self, b: &DenseMatrix<f16>) -> DenseMatrix<f16> {
        self.try_run(b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Profile the planned SpMM (sampled performance model).
    pub fn try_profile(&self, b: &DenseMatrix<f16>) -> Result<KernelProfile, EngineError> {
        let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
        let mut span = self
            .sink
            .span(Track::ENGINE, "run spmm (profile)", "engine");
        span.arg("algo", self.algo.label());
        let profile = self
            .dispatch(b, Mode::Performance, |_, _, profile| profile)?
            .ok_or(EngineError::Internal {
                what: "performance launch returned no profile",
            })?;
        self.counters
            .record_profile(self.algo.label(), profile.cycles);
        self.counters.add_wall(t0.elapsed());
        Ok(profile)
    }

    /// Infallible [`SpmmPlan::try_profile`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message on RHS shape mismatch.
    pub fn profile(&self, b: &DenseMatrix<f16>) -> KernelProfile {
        self.try_profile(b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`try_run`](SpmmPlan::try_run) against a checked-out spare state,
    /// for batched fan-out. No per-element engine span: concurrent
    /// workers would interleave ring pushes nondeterministically.
    fn try_run_pooled(&self, b: &DenseMatrix<f16>) -> Result<DenseMatrix<f16>, EngineError> {
        let (m, n) = (self.desc.m, self.desc.n);
        let out = self.dispatch_pooled(b, Mode::Functional, |mem, out_buf, _| {
            download_dense(mem, out_buf, m, n)
        })?;
        self.counters.record_run(self.algo.label());
        Ok(out)
    }

    /// Run every RHS in the batch, returning outputs in order. Elements
    /// fan out across rayon workers, each owning a private clone of the
    /// staged device state; results are bit-identical to calling
    /// [`try_run`](SpmmPlan::try_run) sequentially. When the context is
    /// tracing, the batch runs sequentially instead so the recorded
    /// timeline stays deterministic.
    pub fn try_run_batch(
        &self,
        batch: &[DenseMatrix<f16>],
    ) -> Result<Vec<DenseMatrix<f16>>, EngineError> {
        if batch.is_empty() {
            return Err(EngineError::EmptyBatch);
        }
        for b in batch {
            self.check_rhs(b)?;
        }
        if self.sink.is_enabled() {
            return batch.iter().map(|b| self.try_run(b)).collect();
        }
        let t0 = std::time::Instant::now(); // lint: hash-ok — engine wall bookkeeping only
        let out = batch
            .into_par_iter()
            .map(|b| self.try_run_pooled(b))
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        self.counters.add_wall(t0.elapsed());
        out
    }

    /// Infallible [`SpmmPlan::try_run_batch`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message on an empty batch or any
    /// shape mismatch.
    pub fn run_batch(&self, batch: &[DenseMatrix<f16>]) -> Vec<DenseMatrix<f16>> {
        self.try_run_batch(batch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Profile a batch as a back-to-back stream: one element profile (the
    /// batch is shape-uniform by construction) scaled by the length.
    pub fn try_profile_batch(
        &self,
        batch: &[DenseMatrix<f16>],
    ) -> Result<BatchProfile, EngineError> {
        if batch.is_empty() {
            return Err(EngineError::EmptyBatch);
        }
        Ok(BatchProfile {
            element: self.try_profile(&batch[0])?,
            elements: batch.len(),
        })
    }

    /// Infallible [`SpmmPlan::try_profile_batch`].
    ///
    /// # Panics
    /// Panics with the [`EngineError`] message on an empty batch.
    pub fn profile_batch(&self, batch: &[DenseMatrix<f16>]) -> BatchProfile {
        self.try_profile_batch(batch)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}
