//! Kernel registry: build any shipped kernel behind `&dyn KernelSpec`.
//!
//! External tooling (the `vecsparse-sanitizer` crate, its `vsan` binary,
//! property tests) needs to construct *every* kernel in this crate for a
//! given problem shape without naming each concrete type. Kernels borrow
//! their host-side inputs, so the registry owns the generated matrices for
//! the duration of a callback instead of returning a self-referential
//! bundle: [`with_kernel`] generates the inputs, stages them into a fresh
//! [`MemPool`], builds the kernel, and hands `(&MemPool, &dyn KernelSpec)`
//! to the caller.

use crate::sddmm::{CsrSddmm, FpuSubwarpSddmm, OctetSddmm, OctetVariant, WmmaSddmm};
use crate::softmax::{DenseSoftmax, SparseSoftmax};
use crate::spmm::{BlockedEllSpmm, CsrScalarSpmm, DenseGemm, FpuSubwarpSpmm, OctetSpmm, WmmaSpmm};
use vecsparse_formats::{gen, Layout};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{KernelSpec, MemPool, Mode};
use vecsparse_precision::KernelModel;

/// Every kernel the crate ships, as a flat id (one per `SpmmAlgo` /
/// `SddmmAlgo` variant plus the kernels the selectors do not cover).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// Dense `cublasHgemm` surrogate.
    SpmmDense,
    /// Fine-grained CSR SpMM (`cusparseSpMM` surrogate).
    SpmmCsrScalar,
    /// Blocked-ELL TCU SpMM.
    SpmmBlockedEll,
    /// FPU-based 1-D subwarp-tiling SpMM.
    SpmmFpuSubwarp,
    /// Classic wmma-mapping TCU SpMM.
    SpmmWmma,
    /// The paper's 1-D octet-tiling TCU SpMM.
    SpmmOctet,
    /// Scalar CSR SDDMM (`cusparseSDDMM` surrogate, fp32).
    SddmmCsr,
    /// FPU-based subwarp-tiling SDDMM.
    SddmmFpuSubwarp,
    /// Classic wmma-mapping TCU SDDMM.
    SddmmWmma,
    /// Octet-tiling SDDMM, extra accumulator registers.
    SddmmOctetReg,
    /// Octet-tiling SDDMM, shuffle-based operand switching.
    SddmmOctetShfl,
    /// Octet-tiling SDDMM on the proposed SWITCH-HMMA architecture.
    SddmmOctetArch,
    /// Softmax over the column-vector-sparse encoding.
    SoftmaxSparse,
    /// Dense row-wise softmax baseline.
    SoftmaxDense,
}

/// All kernel ids, in a stable order.
pub const ALL_KERNELS: [KernelId; 14] = [
    KernelId::SpmmDense,
    KernelId::SpmmCsrScalar,
    KernelId::SpmmBlockedEll,
    KernelId::SpmmFpuSubwarp,
    KernelId::SpmmWmma,
    KernelId::SpmmOctet,
    KernelId::SddmmCsr,
    KernelId::SddmmFpuSubwarp,
    KernelId::SddmmWmma,
    KernelId::SddmmOctetReg,
    KernelId::SddmmOctetShfl,
    KernelId::SddmmOctetArch,
    KernelId::SoftmaxSparse,
    KernelId::SoftmaxDense,
];

impl KernelId {
    /// Stable command-line name.
    pub fn label(self) -> &'static str {
        match self {
            KernelId::SpmmDense => "spmm-dense",
            KernelId::SpmmCsrScalar => "spmm-csr",
            KernelId::SpmmBlockedEll => "spmm-blocked-ell",
            KernelId::SpmmFpuSubwarp => "spmm-fpu",
            KernelId::SpmmWmma => "spmm-wmma",
            KernelId::SpmmOctet => "spmm-octet",
            KernelId::SddmmCsr => "sddmm-csr",
            KernelId::SddmmFpuSubwarp => "sddmm-fpu",
            KernelId::SddmmWmma => "sddmm-wmma",
            KernelId::SddmmOctetReg => "sddmm-octet-reg",
            KernelId::SddmmOctetShfl => "sddmm-octet-shfl",
            KernelId::SddmmOctetArch => "sddmm-octet-arch",
            KernelId::SoftmaxSparse => "softmax-sparse",
            KernelId::SoftmaxDense => "softmax-dense",
        }
    }

    /// Parse a command-line name produced by [`KernelId::label`].
    pub fn parse(s: &str) -> Option<KernelId> {
        ALL_KERNELS.into_iter().find(|k| k.label() == s)
    }
}

/// Problem shape for a registry build: `C[m×n] = A[m×k] · B[k×n]` for the
/// SpMM/SDDMM kernels (the SDDMM mask is `m×n`), `m×n` scores for the
/// softmax kernels. `sparsity` is the zero fraction, `v` the column-vector
/// length (1, 2, 4, or 8).
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub v: usize,
    pub sparsity: f64,
    pub seed: u64,
}

impl Default for Shape {
    fn default() -> Self {
        Shape {
            m: 32,
            n: 64,
            k: 64,
            v: 4,
            sparsity: 0.75,
            seed: 1,
        }
    }
}

/// The numerical model of `id` at `shape`, for the precision analyzer.
///
/// Derived from the kernel's default [`crate::compose::TilingScheme`]:
/// the scheme's tile component fixes the arithmetic (exact fp16×fp16
/// products with fp32 accumulation for the mma and scalar components,
/// binary16-rounded products for the FPU subwarp chain, the row
/// composition `exp(x−max)/Σexp` for softmax) and its `out_bits` the
/// store width — see [`crate::compose::model_from_scheme`].
pub fn model_for(id: KernelId, shape: &Shape) -> KernelModel {
    crate::compose::model_from_scheme(&crate::compose::scheme_for(id), shape.k, shape.n)
}

/// Generate inputs for `id` at `shape`, stage them into a fresh pool,
/// build the kernel in `mode`, and run `f` on the result.
///
/// # Panics
/// Panics if the shape violates a kernel's constructor contract (e.g. a
/// `v` outside {1, 2, 4, 8}).
pub fn with_kernel<R>(
    id: KernelId,
    shape: &Shape,
    mode: Mode,
    f: impl FnOnce(&MemPool, &dyn KernelSpec) -> R,
) -> R {
    with_kernel_mut(id, shape, mode, |mem, kern| f(mem, kern))
}

/// Like [`with_kernel`] but hands `f` a mutable pool, so callers can
/// launch the kernel (e.g. fp64 shadow execution, which applies global
/// writes) rather than only inspect it.
///
/// # Panics
/// Panics if the shape violates a kernel's constructor contract (e.g. a
/// `v` outside {1, 2, 4, 8}).
pub fn with_kernel_mut<R>(
    id: KernelId,
    shape: &Shape,
    mode: Mode,
    f: impl FnOnce(&mut MemPool, &dyn KernelSpec) -> R,
) -> R {
    let mut mem = MemPool::new();
    let Shape {
        m,
        n,
        k,
        v,
        sparsity,
        seed,
    } = *shape;
    match id {
        KernelId::SpmmDense => {
            let a = gen::random_dense::<f16>(m, k, Layout::RowMajor, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed ^ 0xB);
            let kern = DenseGemm::new(&mut mem, &a, &b, mode);
            f(&mut mem, &kern)
        }
        KernelId::SpmmCsrScalar => {
            let a = gen::random_csr::<f16>(m, k, sparsity, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed ^ 0xB);
            let kern = CsrScalarSpmm::new(&mut mem, &a, &b, mode);
            f(&mut mem, &kern)
        }
        KernelId::SpmmBlockedEll => {
            let a = gen::random_blocked_ell::<f16>(m, k, v.max(2), sparsity, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed ^ 0xB);
            let kern = BlockedEllSpmm::new(&mut mem, &a, &b, mode);
            f(&mut mem, &kern)
        }
        KernelId::SpmmFpuSubwarp => {
            let a = gen::random_vector_sparse::<f16>(m, k, v, sparsity, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed ^ 0xB);
            let kern = FpuSubwarpSpmm::new(&mut mem, &a, &b, mode);
            f(&mut mem, &kern)
        }
        KernelId::SpmmWmma => {
            let a = gen::random_vector_sparse::<f16>(m, k, v, sparsity, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed ^ 0xB);
            let kern = WmmaSpmm::new(&mut mem, &a, &b, mode);
            f(&mut mem, &kern)
        }
        KernelId::SpmmOctet => {
            let a = gen::random_vector_sparse::<f16>(m, k, v, sparsity, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed ^ 0xB);
            let kern = OctetSpmm::new(&mut mem, &a, &b, mode);
            f(&mut mem, &kern)
        }
        KernelId::SddmmCsr => {
            let a = gen::random_dense::<f32>(m, k, Layout::RowMajor, seed);
            let b = gen::random_dense::<f32>(k, n, Layout::ColMajor, seed ^ 0xB);
            let mask = gen::random_pattern(m, n, 1, sparsity, seed ^ 0xC);
            let kern = CsrSddmm::new(&mut mem, &a, &b, &mask, mode);
            f(&mut mem, &kern)
        }
        KernelId::SddmmFpuSubwarp => {
            let a = gen::random_dense::<f16>(m, k, Layout::RowMajor, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::ColMajor, seed ^ 0xB);
            let mask = gen::random_pattern(m, n, v, sparsity, seed ^ 0xC);
            let kern = FpuSubwarpSddmm::new(&mut mem, &a, &b, &mask, mode);
            f(&mut mem, &kern)
        }
        KernelId::SddmmWmma => {
            let a = gen::random_dense::<f16>(m, k, Layout::RowMajor, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::ColMajor, seed ^ 0xB);
            let mask = gen::random_pattern(m, n, v, sparsity, seed ^ 0xC);
            let kern = WmmaSddmm::new(&mut mem, &a, &b, &mask, mode);
            f(&mut mem, &kern)
        }
        KernelId::SddmmOctetReg | KernelId::SddmmOctetShfl | KernelId::SddmmOctetArch => {
            let variant = match id {
                KernelId::SddmmOctetReg => OctetVariant::Reg,
                KernelId::SddmmOctetShfl => OctetVariant::Shfl,
                _ => OctetVariant::Arch,
            };
            let a = gen::random_dense::<f16>(m, k, Layout::RowMajor, seed);
            let b = gen::random_dense::<f16>(k, n, Layout::ColMajor, seed ^ 0xB);
            let mask = gen::random_pattern(m, n, v, sparsity, seed ^ 0xC);
            let kern = OctetSddmm::new(&mut mem, &a, &b, &mask, variant, mode);
            f(&mut mem, &kern)
        }
        KernelId::SoftmaxSparse => {
            let x = gen::random_vector_sparse::<f16>(m, n, v, sparsity, seed);
            let kern = SparseSoftmax::new(&mut mem, &x, mode);
            f(&mut mem, &kern)
        }
        KernelId::SoftmaxDense => {
            let kern = DenseSoftmax::new(&mut mem, m, n, mode);
            if mode == Mode::Functional {
                // Fill the score buffer the way the attention pipeline
                // would, so the value-checking pass sees live data.
                let vals = gen::random_dense::<f16>(m, n, Layout::RowMajor, seed);
                let writes: Vec<_> = vals
                    .data()
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (i as u32, x.to_f32()))
                    .collect();
                mem.apply_writes(kern.input(), &writes);
            }
            f(&mut mem, &kern)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for id in ALL_KERNELS {
            assert_eq!(KernelId::parse(id.label()), Some(id));
        }
        assert_eq!(KernelId::parse("nope"), None);
    }

    #[test]
    fn every_kernel_builds_and_exposes_a_program() {
        let shape = Shape::default();
        for id in ALL_KERNELS {
            with_kernel(id, &shape, Mode::Functional, |_mem, kern| {
                let prog = kern.program().expect("kernel should keep its Program");
                assert!(prog.static_len() > 0, "{}", kern.name());
                assert!(
                    kern.launch_config().static_instrs >= prog.static_len(),
                    "{}",
                    kern.name()
                );
            });
        }
    }
}
