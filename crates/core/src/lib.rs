//! # vecsparse
//!
//! Tensor-core-style SpMM and SDDMM kernels for **column-vector structured
//! sparsity under reduced precision** — a Rust reproduction of the SC '21
//! paper "Efficient Tensor Core-Based GPU Kernels for Structured Sparsity
//! under Reduced Precision" on the `vecsparse-gpu-sim` Volta substrate.
//!
//! The crate implements the paper's contribution and **every baseline it
//! compares against**, all as kernels on the simulated GPU:
//!
//! | family | kernel | paper section |
//! |---|---|---|
//! | SpMM | [`spmm::OctetSpmm`] — TCU-based 1-D Octet Tiling | §5.3 (contribution) |
//! | SpMM | [`spmm::WmmaSpmm`] — TCU 1-D warp tiling (classic mapping) | §5.2 |
//! | SpMM | [`spmm::FpuSubwarpSpmm`] — FPU 1-D subwarp tiling (Sputnik-extended) | §5.1 |
//! | SpMM | [`spmm::BlockedEllSpmm`] — cuSPARSE Blocked-ELL TCU surrogate | §3.2 |
//! | SpMM | [`spmm::CsrScalarSpmm`] — fine-grained CSR (cuSPARSE surrogate) | §2.3 |
//! | SpMM | [`spmm::DenseGemm`] — cublasSgemm / cublasHgemm surrogates | baseline |
//! | SDDMM | [`sddmm::OctetSddmm`] — TCU 1-D Octet Tiling (reg / shfl / arch) | §6.3 (contribution) |
//! | SDDMM | [`sddmm::FpuSubwarpSddmm`] — FPU 1-D subwarp tiling | §6.1 |
//! | SDDMM | [`sddmm::WmmaSddmm`] — classic TCU 1-D warp tiling | §6.2 |
//! | SDDMM | [`sddmm::CsrSddmm`] — fine-grained SDDMM (cuSPARSE surrogate) | §2.3 |
//! | misc | [`softmax`] — dense and column-vector-sparse softmax | §7.4 |
//!
//! Every kernel runs **functionally** (bit-checked against the scalar
//! references in `vecsparse-formats`) and in **performance mode** (a
//! [`vecsparse_gpu_sim::KernelProfile`] with cycles, stall breakdown and
//! memory counters). The entry point is the [`engine`]: create a
//! [`engine::Context`], plan the problem once, run it many times.
//!
//! ```
//! use vecsparse::engine::Context;
//! use vecsparse::SpmmAlgo;
//! use vecsparse_formats::{gen, Layout};
//! use vecsparse_fp16::f16;
//!
//! // A 64x128 sparse matrix with 4x1 column vectors at 80% sparsity.
//! let ctx = Context::builder().build();
//! let a = gen::random_vector_sparse::<f16>(64, 128, 4, 0.8, 7);
//! let plan = ctx.plan_spmm(&a, 64, SpmmAlgo::Auto); // tuned + cached
//! let b = gen::random_dense::<f16>(128, 64, Layout::RowMajor, 8);
//! let c = plan.run(&b);
//! assert_eq!(c.rows(), 64);
//! ```
//!
//! The pre-engine free-function entry points (`api::spmm` and friends,
//! `batch::spmm_batch`) have been removed; [`api`] now carries only the
//! algorithm selectors.

#![forbid(unsafe_code)]
// Kernel and backprop code index several parallel arrays in lock-step;
// iterator-zip rewrites of those loops hurt readability, so the indexed
// form is kept deliberately.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod api;
pub mod compose;
pub mod engine;
pub mod registry;
pub mod sddmm;
pub mod softmax;
pub mod spmm;
pub mod tile;
pub mod util;

pub use api::{SddmmAlgo, SpmmAlgo};
pub use engine::{Context, SddmmPlan, SpmmPlan};
