//! Batched sparse operations — **deprecated shims** over the engine.
//!
//! Deep-learning workloads apply one pruned weight matrix to a *batch* of
//! activations (SpMM) or one fixed attention mask to every batch element
//! and head (SDDMM). These wrappers predate the plan API and re-plan the
//! problem on **every call** (and, under `Auto`, re-tune per call too).
//! Use a long-lived [`crate::engine::Context`] and
//! [`crate::engine::SpmmPlan::run_batch`] /
//! [`crate::engine::SddmmPlan::run_batch`] instead:
//!
//! ```text
//! batch::spmm_batch(&a, &bs, algo)   -> ctx.plan_spmm(&a, n, algo).run_batch(&bs)
//! batch::profile_spmm_batch(...)     -> plan.profile_batch(&bs).cycles()
//! batch::sddmm_batch(...)            -> ctx.plan_sddmm(&mask, k, algo).run_batch(&as_, &bs)
//! batch::profile_sddmm_batch(...)    -> plan.profile_batch(&as_, &bs).cycles()
//! ```

use crate::api::{SddmmAlgo, SpmmAlgo};
use crate::engine::Context;
use vecsparse_formats::{DenseMatrix, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::GpuConfig;

/// Batched SpMM: `C_i = A · B_i` for every batch element.
///
/// # Panics
/// Panics on shape mismatches or an empty batch.
#[deprecated(
    since = "0.2.0",
    note = "re-plans every call; use `Context::plan_spmm(...).run_batch(&batch)`"
)]
pub fn spmm_batch(
    a: &VectorSparse<f16>,
    batch: &[DenseMatrix<f16>],
    algo: SpmmAlgo,
) -> Vec<DenseMatrix<f16>> {
    assert!(!batch.is_empty(), "empty batch");
    batch
        .iter()
        .map(|b| Context::new().plan_spmm(a, b.cols(), algo).run(b))
        .collect()
}

/// Cycle estimate for a batched SpMM as a stream of launches.
#[deprecated(
    since = "0.2.0",
    note = "use `Context::with_gpu(gpu).plan_spmm(...).profile_batch(&batch).cycles()`"
)]
pub fn profile_spmm_batch(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    batch: &[DenseMatrix<f16>],
    algo: SpmmAlgo,
) -> f64 {
    assert!(!batch.is_empty(), "empty batch");
    Context::with_gpu(gpu.clone())
        .plan_spmm(a, batch[0].cols(), algo)
        .profile_batch(batch)
        .cycles()
}

/// Batched SDDMM: `C_i = (A_i · B_i) ∘ D` with a shared mask.
///
/// # Panics
/// Panics on shape mismatches or mismatched batch lengths.
#[deprecated(
    since = "0.2.0",
    note = "re-plans every call; use `Context::plan_sddmm(...).run_batch(&a_batch, &b_batch)`"
)]
pub fn sddmm_batch(
    a_batch: &[DenseMatrix<f16>],
    b_batch: &[DenseMatrix<f16>],
    mask: &SparsityPattern,
    algo: SddmmAlgo,
) -> Vec<VectorSparse<f16>> {
    assert_eq!(a_batch.len(), b_batch.len(), "batch length mismatch");
    assert!(!a_batch.is_empty(), "empty batch");
    a_batch
        .iter()
        .zip(b_batch)
        .map(|(a, b)| Context::new().plan_sddmm(mask, a.cols(), algo).run(a, b))
        .collect()
}

/// Cycle estimate for a batched SDDMM as a stream of launches.
#[deprecated(
    since = "0.2.0",
    note = "use `Context::with_gpu(gpu).plan_sddmm(...).profile_batch(&a_batch, &b_batch).cycles()`"
)]
pub fn profile_sddmm_batch(
    gpu: &GpuConfig,
    a_batch: &[DenseMatrix<f16>],
    b_batch: &[DenseMatrix<f16>],
    mask: &SparsityPattern,
    algo: SddmmAlgo,
) -> f64 {
    assert_eq!(a_batch.len(), b_batch.len(), "batch length mismatch");
    assert!(!a_batch.is_empty(), "empty batch");
    Context::with_gpu(gpu.clone())
        .plan_sddmm(mask, a_batch[0].cols(), algo)
        .profile_batch(a_batch, b_batch)
        .cycles()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference, Layout};

    #[test]
    fn batched_spmm_matches_elementwise() {
        let a = gen::random_vector_sparse::<f16>(16, 32, 4, 0.6, 1);
        let batch: Vec<_> = (0..3)
            .map(|i| gen::random_dense::<f16>(32, 64, Layout::RowMajor, 10 + i))
            .collect();
        let out = spmm_batch(&a, &batch, SpmmAlgo::Octet);
        assert_eq!(out.len(), 3);
        for (o, b) in out.iter().zip(&batch) {
            assert_eq!(o.max_abs_diff(&reference::spmm_vs(&a, b)), 0.0);
        }
    }

    #[test]
    fn batched_sddmm_matches_elementwise() {
        let mask = gen::random_pattern(16, 32, 4, 0.7, 2);
        let a_batch: Vec<_> = (0..2)
            .map(|i| gen::random_dense::<f16>(16, 24, Layout::RowMajor, 20 + i))
            .collect();
        let b_batch: Vec<_> = (0..2)
            .map(|i| gen::random_dense::<f16>(24, 32, Layout::ColMajor, 30 + i))
            .collect();
        let out = sddmm_batch(&a_batch, &b_batch, &mask, SddmmAlgo::OctetArch);
        for ((o, a), b) in out.iter().zip(&a_batch).zip(&b_batch) {
            let want = reference::sddmm(a, b, &mask);
            for (g, w) in o.values().iter().zip(want.values()) {
                assert_eq!(g, w);
            }
        }
    }

    #[test]
    fn batch_cycles_scale_linearly() {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(64, 64, 4, 0.8, 3);
        let batch: Vec<_> = (0..4)
            .map(|i| gen::random_dense::<f16>(64, 64, Layout::RowMajor, 40 + i))
            .collect();
        let four = profile_spmm_batch(&gpu, &a, &batch, SpmmAlgo::Octet);
        let one = profile_spmm_batch(&gpu, &a, &batch[..1], SpmmAlgo::Octet);
        assert!((four / one - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn rejects_empty_batch() {
        let a = gen::random_vector_sparse::<f16>(8, 16, 4, 0.5, 4);
        let _ = spmm_batch(&a, &[], SpmmAlgo::Octet);
    }
}
