//! Algorithm selectors plus the legacy free-function entry points.
//!
//! The free functions here predate the [`crate::engine`] and are kept as
//! **deprecated one-line shims**: each call builds a throwaway
//! [`crate::engine::Context`], so the sparse operand is re-encoded and
//! (under [`SpmmAlgo::Auto`] / [`SddmmAlgo::Auto`]) re-tuned on every
//! invocation. Migrate to a long-lived context:
//!
//! ```text
//! api::spmm(&a, &b, algo)          -> ctx.plan_spmm(&a, b.cols(), algo).run(&b)
//! api::profile_spmm(&g, a, b, al)  -> Context::with_gpu(g).plan_spmm(...).profile(&b)
//! api::sddmm(&a, &b, &m, algo)     -> ctx.plan_sddmm(&m, a.cols(), algo).run(&a, &b)
//! api::profile_sddmm(...)          -> Context::with_gpu(g).plan_sddmm(...).profile(...)
//! ```

use crate::engine::Context;
use vecsparse_formats::{DenseMatrix, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, KernelProfile};

/// SpMM algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpmmAlgo {
    /// TCU-based 1-D Octet Tiling (the paper's kernel).
    Octet,
    /// TCU-based 1-D Warp Tiling with the classic wmma mapping (§5.2's
    /// intermediate design).
    Wmma,
    /// FPU-based 1-D subwarp tiling (Sputnik-extended).
    FpuSubwarp,
    /// cuSPARSE-style Blocked-ELL TCU kernel with square blocks of the
    /// given edge (the sparse input is re-encoded to Blocked-ELL with the
    /// same sparsity, as in the paper's benchmark construction).
    BlockedEll,
    /// Dense `cublasHgemm` surrogate (densifies the input).
    Dense,
    /// Let the engine's auto-tuner pick among the numerically exact
    /// kernels by profiling them on the simulated GPU (see
    /// [`crate::engine::tuner`]). Decisions are memoized per
    /// [`crate::engine::Context`].
    Auto,
}

impl SpmmAlgo {
    /// Registry-style label ("spmm-octet", ..., or "auto").
    pub fn label(self) -> &'static str {
        match self {
            SpmmAlgo::Octet => "spmm-octet",
            SpmmAlgo::Wmma => "spmm-wmma",
            SpmmAlgo::FpuSubwarp => "spmm-fpu",
            SpmmAlgo::BlockedEll => "spmm-blocked-ell",
            SpmmAlgo::Dense => "spmm-dense",
            SpmmAlgo::Auto => "auto",
        }
    }
}

/// SDDMM algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SddmmAlgo {
    /// TCU-based 1-D Octet Tiling with extra accumulator registers.
    OctetReg,
    /// Octet tiling with shuffle-based operand switching.
    OctetShfl,
    /// Octet tiling on the proposed SWITCH-HMMA architecture.
    OctetArch,
    /// FPU-based 1-D subwarp tiling.
    FpuSubwarp,
    /// Classic TCU warp tiling (wmma).
    Wmma,
    /// Auto-tuned among the stock-hardware kernels (see
    /// [`crate::engine::tuner`]; `OctetArch` is never auto-selected).
    Auto,
}

impl SddmmAlgo {
    /// Registry-style label ("sddmm-octet-reg", ..., or "auto").
    pub fn label(self) -> &'static str {
        match self {
            SddmmAlgo::OctetReg => "sddmm-octet-reg",
            SddmmAlgo::OctetShfl => "sddmm-octet-shfl",
            SddmmAlgo::OctetArch => "sddmm-octet-arch",
            SddmmAlgo::FpuSubwarp => "sddmm-fpu",
            SddmmAlgo::Wmma => "sddmm-wmma",
            SddmmAlgo::Auto => "auto",
        }
    }
}

/// Run SpMM functionally with the default simulated GPU.
///
/// # Panics
/// Panics on dimension mismatches.
#[deprecated(
    since = "0.2.0",
    note = "builds a throwaway engine context per call; use \
            `Context::plan_spmm(&a, b.cols(), algo).run(&b)` and keep the \
            context (and plan) alive across calls"
)]
pub fn spmm(a: &VectorSparse<f16>, b: &DenseMatrix<f16>, algo: SpmmAlgo) -> DenseMatrix<f16> {
    Context::new().spmm(a, b, algo)
}

/// Profile SpMM on `gpu`.
#[deprecated(
    since = "0.2.0",
    note = "use `Context::with_gpu(gpu).plan_spmm(&a, b.cols(), algo).profile(&b)`"
)]
pub fn profile_spmm(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    b: &DenseMatrix<f16>,
    algo: SpmmAlgo,
) -> KernelProfile {
    Context::with_gpu(gpu.clone()).profile_spmm(a, b, algo)
}

/// Run SDDMM functionally with the default simulated GPU.
///
/// # Panics
/// Panics on dimension mismatches.
#[deprecated(
    since = "0.2.0",
    note = "builds a throwaway engine context per call; use \
            `Context::plan_sddmm(&mask, a.cols(), algo).run(&a, &b)` and \
            keep the context (and plan) alive across calls"
)]
pub fn sddmm(
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    algo: SddmmAlgo,
) -> VectorSparse<f16> {
    Context::new().sddmm(a, b, mask, algo)
}

/// Profile SDDMM on `gpu`.
#[deprecated(
    since = "0.2.0",
    note = "use `Context::with_gpu(gpu).plan_sddmm(&mask, a.cols(), algo).profile(&a, &b)`"
)]
pub fn profile_sddmm(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    algo: SddmmAlgo,
) -> KernelProfile {
    Context::with_gpu(gpu.clone()).profile_sddmm(a, b, mask, algo)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference, Layout};

    #[test]
    fn spmm_algos_agree() {
        let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.7, 1);
        let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 2);
        let want = reference::spmm_vs(&a, &b);
        for algo in [
            SpmmAlgo::Octet,
            SpmmAlgo::Wmma,
            SpmmAlgo::FpuSubwarp,
            SpmmAlgo::Dense,
            SpmmAlgo::Auto,
        ] {
            let got = spmm(&a, &b, algo);
            assert_eq!(got.max_abs_diff(&want), 0.0, "{algo:?}");
        }
    }

    #[test]
    fn sddmm_algos_agree() {
        let a = gen::random_dense::<f16>(16, 64, Layout::RowMajor, 3);
        let b = gen::random_dense::<f16>(64, 64, Layout::ColMajor, 4);
        let mask = gen::random_pattern(16, 64, 4, 0.75, 5);
        let want = reference::sddmm(&a, &b, &mask);
        for algo in [
            SddmmAlgo::OctetReg,
            SddmmAlgo::OctetShfl,
            SddmmAlgo::OctetArch,
            SddmmAlgo::FpuSubwarp,
            SddmmAlgo::Wmma,
            SddmmAlgo::Auto,
        ] {
            let got = sddmm(&a, &b, &mask, algo);
            for (g, w) in got.values().iter().zip(want.values()) {
                assert_eq!(g, w, "{algo:?}");
            }
        }
    }

    #[test]
    fn labels_match_registry_naming() {
        assert_eq!(SpmmAlgo::Octet.label(), "spmm-octet");
        assert_eq!(SpmmAlgo::Auto.label(), "auto");
        assert_eq!(SddmmAlgo::OctetShfl.label(), "sddmm-octet-shfl");
        assert_eq!(SddmmAlgo::Auto.label(), "auto");
    }
}
