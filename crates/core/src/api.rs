//! High-level entry points: pick an algorithm, run functionally or get a
//! performance profile.

use crate::sddmm::{
    profile_sddmm_fpu, profile_sddmm_octet, profile_sddmm_wmma, sddmm_fpu, sddmm_octet, sddmm_wmma,
    OctetVariant,
};
use crate::spmm::{
    profile_dense_gemm, profile_spmm_blocked_ell, profile_spmm_fpu, profile_spmm_octet,
    profile_spmm_wmma, spmm_blocked_ell, spmm_fpu, spmm_octet, spmm_wmma,
};
use vecsparse_formats::{gen, DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{GpuConfig, KernelProfile};

/// SpMM algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmmAlgo {
    /// TCU-based 1-D Octet Tiling (the paper's kernel).
    Octet,
    /// TCU-based 1-D Warp Tiling with the classic wmma mapping (§5.2's
    /// intermediate design).
    Wmma,
    /// FPU-based 1-D subwarp tiling (Sputnik-extended).
    FpuSubwarp,
    /// cuSPARSE-style Blocked-ELL TCU kernel with square blocks of the
    /// given edge (the sparse input is re-encoded to Blocked-ELL with the
    /// same sparsity, as in the paper's benchmark construction).
    BlockedEll,
    /// Dense `cublasHgemm` surrogate (densifies the input).
    Dense,
}

/// SDDMM algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SddmmAlgo {
    /// TCU-based 1-D Octet Tiling with extra accumulator registers.
    OctetReg,
    /// Octet tiling with shuffle-based operand switching.
    OctetShfl,
    /// Octet tiling on the proposed SWITCH-HMMA architecture.
    OctetArch,
    /// FPU-based 1-D subwarp tiling.
    FpuSubwarp,
    /// Classic TCU warp tiling (wmma).
    Wmma,
}

/// Run SpMM functionally with the default simulated GPU.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn spmm(a: &VectorSparse<f16>, b: &DenseMatrix<f16>, algo: SpmmAlgo) -> DenseMatrix<f16> {
    let gpu = GpuConfig::default();
    match algo {
        SpmmAlgo::Octet => spmm_octet(&gpu, a, b),
        SpmmAlgo::Wmma => spmm_wmma(&gpu, a, b),
        SpmmAlgo::FpuSubwarp => spmm_fpu(&gpu, a, b),
        SpmmAlgo::BlockedEll => {
            let ell = ell_equivalent(a);
            spmm_blocked_ell(&gpu, &ell, b)
        }
        SpmmAlgo::Dense => {
            let dense = a.to_dense(Layout::RowMajor);
            crate::spmm::dense_gemm(&gpu, &dense, b)
        }
    }
}

/// Profile SpMM on `gpu`.
pub fn profile_spmm(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    b: &DenseMatrix<f16>,
    algo: SpmmAlgo,
) -> KernelProfile {
    match algo {
        SpmmAlgo::Octet => profile_spmm_octet(gpu, a, b),
        SpmmAlgo::Wmma => profile_spmm_wmma(gpu, a, b),
        SpmmAlgo::FpuSubwarp => profile_spmm_fpu(gpu, a, b),
        SpmmAlgo::BlockedEll => {
            let ell = ell_equivalent(a);
            profile_spmm_blocked_ell(gpu, &ell, b)
        }
        SpmmAlgo::Dense => {
            let dense = a.to_dense(Layout::RowMajor);
            profile_dense_gemm(gpu, &dense, b)
        }
    }
}

/// Run SDDMM functionally with the default simulated GPU.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn sddmm(
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    algo: SddmmAlgo,
) -> VectorSparse<f16> {
    let gpu = GpuConfig::default();
    match algo {
        SddmmAlgo::OctetReg => sddmm_octet(&gpu, a, b, mask, OctetVariant::Reg),
        SddmmAlgo::OctetShfl => sddmm_octet(&gpu, a, b, mask, OctetVariant::Shfl),
        SddmmAlgo::OctetArch => sddmm_octet(&gpu, a, b, mask, OctetVariant::Arch),
        SddmmAlgo::FpuSubwarp => sddmm_fpu(&gpu, a, b, mask),
        SddmmAlgo::Wmma => sddmm_wmma(&gpu, a, b, mask),
    }
}

/// Profile SDDMM on `gpu`.
pub fn profile_sddmm(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    algo: SddmmAlgo,
) -> KernelProfile {
    match algo {
        SddmmAlgo::OctetReg => profile_sddmm_octet(gpu, a, b, mask, OctetVariant::Reg),
        SddmmAlgo::OctetShfl => profile_sddmm_octet(gpu, a, b, mask, OctetVariant::Shfl),
        SddmmAlgo::OctetArch => profile_sddmm_octet(gpu, a, b, mask, OctetVariant::Arch),
        SddmmAlgo::FpuSubwarp => profile_sddmm_fpu(gpu, a, b, mask),
        SddmmAlgo::Wmma => profile_sddmm_wmma(gpu, a, b, mask),
    }
}

/// Re-encode a vector-sparse matrix as a Blocked-ELL matrix with block
/// size V and the same sparsity/problem size (the Fig. 16 construction:
/// the Blocked-ELL benchmark shares sparsity, not exact structure).
fn ell_equivalent(a: &VectorSparse<f16>) -> vecsparse_formats::BlockedEll<f16> {
    let p = a.pattern();
    let block = p.v().max(2); // Blocked-ELL needs square blocks ≥ 2.
    gen::random_blocked_ell::<f16>(
        p.rows(),
        p.cols(),
        block,
        p.sparsity(),
        0x5EED ^ p.nnz() as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::reference;

    #[test]
    fn spmm_algos_agree() {
        let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.7, 1);
        let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 2);
        let want = reference::spmm_vs(&a, &b);
        for algo in [
            SpmmAlgo::Octet,
            SpmmAlgo::Wmma,
            SpmmAlgo::FpuSubwarp,
            SpmmAlgo::Dense,
        ] {
            let got = spmm(&a, &b, algo);
            assert_eq!(got.max_abs_diff(&want), 0.0, "{algo:?}");
        }
    }

    #[test]
    fn sddmm_algos_agree() {
        let a = gen::random_dense::<f16>(16, 64, Layout::RowMajor, 3);
        let b = gen::random_dense::<f16>(64, 64, Layout::ColMajor, 4);
        let mask = gen::random_pattern(16, 64, 4, 0.75, 5);
        let want = reference::sddmm(&a, &b, &mask);
        for algo in [
            SddmmAlgo::OctetReg,
            SddmmAlgo::OctetShfl,
            SddmmAlgo::OctetArch,
            SddmmAlgo::FpuSubwarp,
            SddmmAlgo::Wmma,
        ] {
            let got = sddmm(&a, &b, &mask, algo);
            for (g, w) in got.values().iter().zip(want.values()) {
                assert_eq!(g, w, "{algo:?}");
            }
        }
    }
}
