//! Algorithm selectors for the engine's plan API.
//!
//! This module once also carried the pre-engine free-function entry
//! points (`spmm`, `sddmm`, `profile_*`) as deprecated one-line shims
//! over throwaway [`crate::engine::Context`]s. They are gone; the plan
//! workflow is the only entry point:
//!
//! ```text
//! api::spmm(&a, &b, algo)          -> ctx.plan_spmm(&a, b.cols(), algo).run(&b)
//! api::profile_spmm(&g, a, b, al)  -> Context::builder().gpu(g).build()
//!                                        .plan_spmm(...).profile(&b)
//! api::sddmm(&a, &b, &m, algo)     -> ctx.plan_sddmm(&m, a.cols(), algo).run(&a, &b)
//! api::profile_sddmm(...)          -> Context::builder().gpu(g).build()
//!                                        .plan_sddmm(...).profile(...)
//! api::spmm_batch / sddmm_batch    -> plan.run_batch(...)
//! ```
//!
//! (The one-shot convenience methods [`crate::engine::Context::spmm`] /
//! [`crate::engine::Context::sddmm`] remain for callers that genuinely
//! run a problem once — they still go through the plan cache.)

/// SpMM algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpmmAlgo {
    /// TCU-based 1-D Octet Tiling (the paper's kernel).
    Octet,
    /// TCU-based 1-D Warp Tiling with the classic wmma mapping (§5.2's
    /// intermediate design).
    Wmma,
    /// FPU-based 1-D subwarp tiling (Sputnik-extended).
    FpuSubwarp,
    /// cuSPARSE-style Blocked-ELL TCU kernel with square blocks of the
    /// given edge (the sparse input is re-encoded to Blocked-ELL with the
    /// same sparsity, as in the paper's benchmark construction).
    BlockedEll,
    /// Dense `cublasHgemm` surrogate (densifies the input).
    Dense,
    /// Let the engine's auto-tuner pick among the numerically exact
    /// kernels by profiling them on the simulated GPU (see
    /// [`crate::engine::tuner`]). Decisions are memoized per
    /// [`crate::engine::Context`].
    Auto,
}

impl SpmmAlgo {
    /// Registry-style label ("spmm-octet", ..., or "auto").
    pub fn label(self) -> &'static str {
        match self {
            SpmmAlgo::Octet => "spmm-octet",
            SpmmAlgo::Wmma => "spmm-wmma",
            SpmmAlgo::FpuSubwarp => "spmm-fpu",
            SpmmAlgo::BlockedEll => "spmm-blocked-ell",
            SpmmAlgo::Dense => "spmm-dense",
            SpmmAlgo::Auto => "auto",
        }
    }
}

/// SDDMM algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SddmmAlgo {
    /// TCU-based 1-D Octet Tiling with extra accumulator registers.
    OctetReg,
    /// Octet tiling with shuffle-based operand switching.
    OctetShfl,
    /// Octet tiling on the proposed SWITCH-HMMA architecture.
    OctetArch,
    /// FPU-based 1-D subwarp tiling.
    FpuSubwarp,
    /// Classic TCU warp tiling (wmma).
    Wmma,
    /// Auto-tuned among the stock-hardware kernels (see
    /// [`crate::engine::tuner`]; `OctetArch` is never auto-selected).
    Auto,
}

impl SddmmAlgo {
    /// Registry-style label ("sddmm-octet-reg", ..., or "auto").
    pub fn label(self) -> &'static str {
        match self {
            SddmmAlgo::OctetReg => "sddmm-octet-reg",
            SddmmAlgo::OctetShfl => "sddmm-octet-shfl",
            SddmmAlgo::OctetArch => "sddmm-octet-arch",
            SddmmAlgo::FpuSubwarp => "sddmm-fpu",
            SddmmAlgo::Wmma => "sddmm-wmma",
            SddmmAlgo::Auto => "auto",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Context;
    use vecsparse_formats::{gen, reference, Layout};
    use vecsparse_fp16::f16;

    #[test]
    fn spmm_algos_agree() {
        let ctx = Context::builder().build();
        let a = gen::random_vector_sparse::<f16>(32, 64, 4, 0.7, 1);
        let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 2);
        let want = reference::spmm_vs(&a, &b);
        for algo in [
            SpmmAlgo::Octet,
            SpmmAlgo::Wmma,
            SpmmAlgo::FpuSubwarp,
            SpmmAlgo::Dense,
            SpmmAlgo::Auto,
        ] {
            let got = ctx.plan_spmm(&a, 64, algo).run(&b);
            assert_eq!(got.max_abs_diff(&want), 0.0, "{algo:?}");
        }
    }

    #[test]
    fn sddmm_algos_agree() {
        let ctx = Context::builder().build();
        let a = gen::random_dense::<f16>(16, 64, Layout::RowMajor, 3);
        let b = gen::random_dense::<f16>(64, 64, Layout::ColMajor, 4);
        let mask = gen::random_pattern(16, 64, 4, 0.75, 5);
        let want = reference::sddmm(&a, &b, &mask);
        for algo in [
            SddmmAlgo::OctetReg,
            SddmmAlgo::OctetShfl,
            SddmmAlgo::OctetArch,
            SddmmAlgo::FpuSubwarp,
            SddmmAlgo::Wmma,
            SddmmAlgo::Auto,
        ] {
            let got = ctx.plan_sddmm(&mask, 64, algo).run(&a, &b);
            for (g, w) in got.values().iter().zip(want.values()) {
                assert_eq!(g, w, "{algo:?}");
            }
        }
    }

    #[test]
    fn labels_match_registry_naming() {
        assert_eq!(SpmmAlgo::Octet.label(), "spmm-octet");
        assert_eq!(SpmmAlgo::Auto.label(), "auto");
        assert_eq!(SddmmAlgo::OctetShfl.label(), "sddmm-octet-shfl");
        assert_eq!(SddmmAlgo::Auto.label(), "auto");
    }
}
