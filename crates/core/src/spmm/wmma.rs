//! TCU-based 1-D Warp Tiling SpMM — the intermediate design of §5.2.
//!
//! Same CTA/warp tiling as the octet kernel (one warp per `V × 64` output
//! tile, maximising grid size) but mapped to the TCU with the classic
//! `wmma.m8n32k16` fragment layout. Its §5.2 pathologies, all modelled:
//!
//! * the RHS fragment's register layout only admits **LDG.64** loads in a
//!   64-byte-coalesced pattern (half the transaction efficiency of the
//!   octet kernel's LDG.128), or a shared-memory round trip — guideline V
//!   vs IV, pick your poison (this implementation loads direct, as the
//!   paper's analysis assumes);
//! * `TileK` must be a multiple of **16** (the wmma k), so residue
//!   handling pads up to 15 dummy vectors with full HMMA cost;
//! * when V < 8 the `(V×16)·(16×32)` product still executes as a full
//!   `(8×16)·(16×32)` wmma — wasted computation.
//!
//! The paper uses cuSPARSE Blocked-ELL as its measured TCU baseline and
//! describes this design analytically; it is included here to make the
//! §5 design-space comparison (fpu → wmma → octet) runnable.

use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use crate::util::{download_dense, lanes, upload_dense, upload_vs, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, KernelProfile, KernelSpec, Launch, LaunchConfig, MemPool,
    MmaFlavor, Mode, NativeCtx, Program, Site, Tok, WVec,
};

/// The kernel's named default point in the tiling space.
const SCHEME: TilingScheme = scheme_for(KernelId::SpmmWmma);
/// Output tile width (as in the octet kernel).
const TILE_N: usize = SCHEME.tile_n;
/// Nonzero vectors per wmma step (the k of `wmma.m8n32k16`).
const WMMA_K: usize = SCHEME.tile_k;

/// The §5.2 warp-tiling SpMM kernel.
pub struct WmmaSpmm<'m> {
    a: &'m VectorSparse<f16>,
    b: &'m DenseMatrix<f16>,
    bufs: VsBuffers,
    b_buf: BufferId,
    out_buf: BufferId,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_rowptr: Site,
    ld_colidx: Site,
    ld_avals: Site,
    ldg_b: [Site; 8],
    wmma: [Site; 2],
    addr: Site,
    stg: Site,
}

impl<'m> WmmaSpmm<'m> {
    /// Stage inputs.
    ///
    /// # Panics
    /// Panics on shape mismatch or unsupported V.
    pub fn new(
        mem: &mut MemPool,
        a: &'m VectorSparse<f16>,
        b: &'m DenseMatrix<f16>,
        mode: Mode,
    ) -> Self {
        let bufs = upload_vs(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f16>(), a.rows() * b.cols()),
            Mode::Performance => mem.alloc_ghost(width_of::<f16>(), a.rows() * b.cols()),
        };
        Self::from_staged(a, b, bufs, b_buf, out_buf)
    }

    /// Build the kernel over operands already staged in a pool (the
    /// engine's plan path).
    ///
    /// # Panics
    /// Panics on shape mismatch or unsupported V.
    pub fn from_staged(
        a: &'m VectorSparse<f16>,
        b: &'m DenseMatrix<f16>,
        bufs: VsBuffers,
        b_buf: BufferId,
        out_buf: BufferId,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
        assert_eq!(b.layout(), Layout::RowMajor);
        assert!(matches!(a.v(), 1 | 2 | 4 | 8));
        let mut p = Program::new();
        let ld_rowptr = p.site("ld_rowptr", 0);
        let ld_colidx = p.site("ld_colidx", 0);
        let ld_avals = p.site("ld_avals", 0);
        let mut ldg_b = [Site(0); 8];
        for (i, s) in ldg_b.iter_mut().enumerate() {
            *s = p.site("ldg_b", i as u32);
        }
        // Two wmma.m8n32k16 per step (64 output columns), 16 HMMA each.
        let wmma = [p.site_span("wmma", 0, 16), p.site_span("wmma", 16, 16)];
        let addr = p.site("addr", 0);
        let stg = p.site("stg", 0);
        let static_len = p.static_len() + 60;
        WmmaSpmm {
            a,
            b,
            bufs,
            b_buf,
            out_buf,
            sites: Sites {
                ld_rowptr,
                ld_colidx,
                ld_avals,
                ldg_b,
                wmma,
                addr,
                stg,
            },
            prog: p,
            static_len,
        }
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> DenseMatrix<f16> {
        download_dense(mem, self.out_buf, self.a.rows(), self.b.cols())
    }

    fn n_chunks(&self) -> usize {
        self.b.cols().div_ceil(TILE_N)
    }
}

impl KernelSpec for WmmaSpmm<'_> {
    fn name(&self) -> String {
        format!("spmm-wmma(V={})", self.a.v())
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.a.pattern().block_rows() * self.n_chunks(),
            warps_per_cta: 1,
            regs_per_thread: 56,
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::block_row_shard_layout(
            self.out_buf,
            self.a.pattern().block_rows(),
            self.a.v(),
            self.a.rows(),
            self.b.cols(),
            self.n_chunks(),
        )
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let v_len = self.a.v();
        let p = self.a.pattern();
        let n = self.b.cols();
        let chunks = self.n_chunks();
        let br = cta.cta_id / chunks;
        let n0 = (cta.cta_id % chunks) * TILE_N;
        let tn = TILE_N.min(n - n0);
        let range = p.block_row_range(br);
        let functional = cta.mode == Mode::Functional;
        let shadow = functional && cta.shadow_exec;
        let s = &self.sites;

        let mut acc = vec![0.0f32; v_len * TILE_N];
        let mut acc64 = vec![0.0f64; if shadow { v_len * TILE_N } else { 0 }];
        let mut w = cta.warp(0);

        let rp = lanes(|l| if l < 2 { Some(br + l) } else { None });
        let rp_tok = w.ldg(s.ld_rowptr, self.bufs.row_ptr, &rp, 1, &[]).tok();
        let mut acc_tok = Tok::NONE;

        // TileK is quantised to 16: the final partial step pays the full
        // wmma cost for its padding vectors (§5.2's residue overhead).
        let mut i = range.start;
        while i < range.end {
            let real = (range.end - i).min(WMMA_K);
            let ci = lanes(|l| if l < real { Some(i + l) } else { None });
            let ci_tok = w
                .ldg(s.ld_colidx, self.bufs.col_idx, &ci, 1, &[rp_tok])
                .tok();
            let av = lanes(|l| {
                if l < real {
                    Some((i + l) * v_len)
                } else {
                    None
                }
            });
            let avals = w.ldg(s.ld_avals, self.bufs.values, &av, v_len, &[ci_tok]);
            w.int_ops(s.addr, 4, &[ci_tok]);

            // RHS fragment: 16 vectors × 64 columns of B. The classic
            // layout maps each row of the fragment to 8 threads holding
            // 4 registers each, so the widest load is LDG.64 and the
            // access is 64-byte coalesced (guideline V violated).
            let mut b_tok = Tok::NONE;
            for (kstep, &site) in (0..WMMA_K).zip(s.ldg_b.iter().cycle()) {
                if kstep >= real {
                    break;
                }
                let col = p.col_idx()[i + kstep] as usize;
                for part in 0..2 {
                    let offs = lanes(|l| {
                        if l < 16 {
                            let c = n0 + part * 32 + (l % 8) * 4;
                            if c < n && l < 8 {
                                Some(col * n + c)
                            } else {
                                None
                            }
                        } else {
                            None
                        }
                    });
                    b_tok = w.ldg(site, self.b_buf, &offs, 4, &[ci_tok]).tok();
                }
            }

            // Two wmma.m8n32k16 cover the 64 output columns; each runs as
            // 16 HMMA regardless of V (wasted rows when V < 8) and
            // regardless of padding (wasted k when real < 16).
            for &site in &s.wmma {
                let a_frag = WVec::ghost(4, avals.tok());
                let b_frag = WVec::ghost(4, b_tok);
                for sub in 0..4u32 {
                    let mut frag = WVec::ghost(8, acc_tok);
                    acc_tok = w.mma_m8n8k4(
                        Site(site.0 + sub * 4),
                        &a_frag,
                        &b_frag,
                        &mut frag,
                        MmaFlavor::Standard,
                    );
                }
            }

            if functional {
                for kstep in 0..real {
                    let col = p.col_idx()[i + kstep] as usize;
                    for e in 0..v_len {
                        let a_val = w.mem().read(self.bufs.values, (i + kstep) * v_len + e);
                        if a_val == 0.0 {
                            continue;
                        }
                        for c in 0..tn {
                            let b_val = w.mem().read(self.b_buf, col * n + n0 + c);
                            acc[e * TILE_N + c] += a_val * b_val;
                            if shadow {
                                acc64[e * TILE_N + c] += f64::from(a_val) * f64::from(b_val);
                            }
                        }
                    }
                }
            }
            i += real;
        }

        let row_base = br * v_len;
        for r in 0..v_len {
            if row_base + r >= self.a.rows() {
                break;
            }
            if functional {
                let vals: Vec<f32> = (0..tn)
                    .map(|c| f16::from_f32(acc[r * TILE_N + c]).to_f32())
                    .collect();
                let shadows: Vec<f64> = if shadow {
                    (0..tn).map(|c| acc64[r * TILE_N + c]).collect()
                } else {
                    Vec::new()
                };
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &vals,
                    &shadows,
                    8,
                    Tok::NONE,
                );
            } else {
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &[],
                    &[],
                    8,
                    acc_tok,
                );
            }
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // The wmma fragment pipeline reduces each element in ascending
        // k-step order into one persistent f32 accumulator — the same
        // flat reduction as the octet kernel (the simulated path's
        // zero-skip only drops exact ±0.0 terms).
        super::native_block_row_spmm(
            ctx,
            self.a.pattern(),
            self.a.rows(),
            self.b.cols(),
            self.bufs.values,
            self.b_buf,
            self.out_buf,
        );
        true
    }
}

/// Functional §5.2 warp-tiling SpMM.
pub fn spmm_wmma(gpu: &GpuConfig, a: &VectorSparse<f16>, b: &DenseMatrix<f16>) -> DenseMatrix<f16> {
    let mut mem = MemPool::new();
    let kernel = WmmaSpmm::new(&mut mem, a, b, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the §5.2 warp-tiling SpMM.
pub fn profile_spmm_wmma(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    b: &DenseMatrix<f16>,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = WmmaSpmm::new(&mut mem, a, b, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::{profile_spmm_fpu, profile_spmm_octet};
    use vecsparse_formats::{gen, reference};

    #[test]
    fn matches_reference() {
        let gpu = GpuConfig::small();
        for v in [2usize, 4, 8] {
            let a = gen::random_vector_sparse::<f16>(32, 64, v, 0.6, v as u64);
            let b = gen::random_dense::<f16>(64, 128, Layout::RowMajor, 9);
            let got = spmm_wmma(&gpu, &a, &b);
            let want = reference::spmm_vs(&a, &b);
            assert_eq!(got.max_abs_diff(&want), 0.0, "V={v}");
        }
    }

    #[test]
    fn residue_padding_is_handled() {
        // 19 vectors per row: one full wmma step + one padded.
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(16, 128, 4, 1.0 - 19.0 / 128.0, 3);
        let b = gen::random_dense::<f16>(128, 64, Layout::RowMajor, 4);
        let got = spmm_wmma(&gpu, &a, &b);
        assert_eq!(got.max_abs_diff(&reference::spmm_vs(&a, &b)), 0.0);
    }

    #[test]
    fn design_space_ordering_of_section5() {
        // The §5 narrative: fpu < wmma < octet at the profiling shape.
        let gpu = GpuConfig::default();
        let a = gen::random_vector_sparse::<f16>(1024, 1024, 4, 0.9, 5);
        let b = gen::random_dense::<f16>(1024, 256, Layout::RowMajor, 6);
        let octet = profile_spmm_octet(&gpu, &a, &b);
        let wmma = profile_spmm_wmma(&gpu, &a, &b);
        let fpu = profile_spmm_fpu(&gpu, &a, &b);
        assert!(
            octet.cycles < wmma.cycles,
            "octet {} wmma {}",
            octet.cycles,
            wmma.cycles
        );
        assert!(
            wmma.cycles < fpu.cycles,
            "wmma {} fpu {}",
            wmma.cycles,
            fpu.cycles
        );
        // The wmma design's loads are at best 64B coalesced: fewer sectors
        // per request than the octet kernel's LDG.128 pattern.
        assert!(
            wmma.l1.sectors_per_request() < octet.l1.sectors_per_request(),
            "wmma {} octet {}",
            wmma.l1.sectors_per_request(),
            octet.l1.sectors_per_request()
        );
    }
}
