//! Stage/global-layer composer for the octet SpMM: compiles a
//! [`TilingScheme`] into the kernel's `Program` and site table.
//!
//! The scheme fixes the stage-layer geometry — `stage_k` staged vectors
//! per shared-memory stride, hence `stage_k / 4` unrolled step bodies —
//! and the compiled program is the paper's §5.3 listing at that point:
//! scalar prologue, per-stride staging, one B load + one shared A load
//! per step, the §5.4 fence, two `mma.m8n8k4` per step, and the
//! shuffle/store epilogue. The default scheme compiles to the exact
//! program the hand-written kernel shipped with; non-default schemes
//! shrink or re-order the same sites, which is why waveprove /
//! shardprove certificates keyed on the listing survive the refactor
//! unchanged at the default point.

use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use vecsparse_gpu_sim::{Program, Site};

/// The octet SpMM's default scheme — the paper's evaluated kernel.
pub const DEFAULT_SCHEME: TilingScheme = scheme_for(KernelId::SpmmOctet);

/// Site table of a compiled octet SpMM program. Per-step sites are
/// `stage_k / 4` long; everything else is a single site.
pub struct OctetSites {
    pub ld_rowptr: Site,
    pub ld_colidx: Site,
    pub ld_avals: Site,
    pub sts_avals: Site,
    /// One B-fragment load per step (unrolled).
    pub ldg_b: Vec<Site>,
    /// One shared A-fragment load per step (unrolled).
    pub lds_a: Vec<Site>,
    pub fence: Site,
    /// Two mma per step (each spans 4 static HMMA slots).
    pub mma: Vec<[Site; 2]>,
    pub addr: Site,
    pub shfl_out: Site,
    pub stg: Site,
}

impl OctetSites {
    /// Unrolled steps per shared-memory stride.
    pub fn steps(&self) -> usize {
        self.ldg_b.len()
    }
}

/// Compile `scheme` into the octet SpMM program. The site order is the
/// listing order: prologue loads, staging, the unrolled load batch, the
/// fence, the unrolled mma batch, then the epilogue.
///
/// # Panics
/// Panics if the scheme's staging window is not a positive multiple of
/// 4 that fits the 32-lane staging load.
pub fn compile_octet(scheme: &TilingScheme) -> (Program, OctetSites, u32) {
    let stage_k = scheme.stage_k();
    assert!(
        stage_k >= 4 && stage_k % 4 == 0 && stage_k <= 32,
        "octet stage window {stage_k} must be a multiple of 4 in 4..=32"
    );
    let steps = stage_k / 4;

    let mut p = Program::new();
    let ld_rowptr = p.site("ld_rowptr", 0);
    let ld_colidx = p.site("ld_colidx", 0);
    let ld_avals = p.site("ld_avals", 0);
    let sts_avals = p.site("sts_avals", 0);
    let mut ldg_b = Vec::with_capacity(steps);
    let mut lds_a = Vec::with_capacity(steps);
    for s in 0..steps {
        ldg_b.push(p.site("ldg_b", s as u32));
        lds_a.push(p.site("lds_a", s as u32));
    }
    let fence = p.site("fence", 0);
    let mut mma = Vec::with_capacity(steps);
    for s in 0..steps {
        // Each mma spans the 4 HMMA steps.
        mma.push([
            p.site_span("mma", (s * 8) as u32, 4),
            p.site_span("mma", (s * 8 + 4) as u32, 4),
        ]);
    }
    let addr = p.site("addr", 0);
    let shfl_out = p.site("shfl_out", 0);
    let stg = p.site("stg", 0);
    // Plus a residue-loop copy of one step's body and scalar prologue
    // glue, giving a program in the paper's 384–416 line regime.
    let static_len = p.static_len() + 48;

    let sites = OctetSites {
        ld_rowptr,
        ld_colidx,
        ld_avals,
        sts_avals,
        ldg_b,
        lds_a,
        fence,
        mma,
        addr,
        shfl_out,
        stg,
    };
    (p, sites, static_len)
}

/// The scheme points the `SpmmAlgo::Auto` tuner sweeps for the octet
/// SpMM: the paper's default first (ties in the profile reduce to it),
/// then a shorter stride, a half-sized reused staging buffer, and the
/// cyclic load schedule — each a single-axis move off the default.
pub fn octet_schemes() -> Vec<TilingScheme> {
    use crate::compose::{LoadStrategy, WriteOutStrategy};
    let d = DEFAULT_SCHEME;
    vec![
        d,
        TilingScheme { tile_k: 16, ..d },
        TilingScheme {
            write_out: WriteOutStrategy::ReuseSmem,
            ..d
        },
        TilingScheme {
            load: LoadStrategy::SyncBufferCyclic,
            ..d
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scheme_compiles_to_eight_steps() {
        let (p, sites, static_len) = compile_octet(&DEFAULT_SCHEME);
        assert_eq!(sites.steps(), 8);
        assert_eq!(sites.mma.len(), 8);
        assert_eq!(static_len, p.static_len() + 48);
        assert!(static_len < 600, "static {static_len}");
    }

    #[test]
    fn shorter_stages_compile_to_fewer_steps() {
        for scheme in octet_schemes() {
            let (_, sites, _) = compile_octet(&scheme);
            assert_eq!(sites.steps(), scheme.stage_k() / 4, "{}", scheme.label());
        }
    }

    #[test]
    fn sweep_has_three_non_default_points() {
        let schemes = octet_schemes();
        assert_eq!(schemes[0], DEFAULT_SCHEME);
        assert!(schemes.len() >= 4);
        let labels: std::collections::BTreeSet<String> =
            schemes.iter().map(TilingScheme::label).collect();
        assert_eq!(labels.len(), schemes.len(), "labels distinct");
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_overlong_stage() {
        let bad = TilingScheme {
            tile_k: 64,
            ..DEFAULT_SCHEME
        };
        compile_octet(&bad);
    }
}
