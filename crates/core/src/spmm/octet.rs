//! TCU-based 1-D Octet Tiling SpMM — the paper's §5.3 contribution.
//!
//! Tiling: each CTA is a single warp producing a `V × 64` output tile
//! (`tile_n = 64`, the smallest width that fills a 128-byte transaction);
//! the grid is `⌈M/V⌉ × ⌈N/64⌉` thread blocks, maximising TLP
//! (guideline II). The warp walks the block row's nonzero vectors in
//! strides of `stage_k` vectors; each 4-vector step computes a
//! `(64×4)·(4×V)` sub-tile — the LHS/RHS roles are **switched** so the
//! B-matrix fragment feeds the TCU's Mat_a buffers and the tiny `4 × V`
//! A-vector fragment feeds Mat_b, putting V on the output's horizontal
//! axis. One step costs two `mma.m8n8k4` (rows 0–31 and 32–63 of the
//! transposed output), i.e. eight HMMA instructions.
//!
//! Memory pattern (guidelines IV & V): the B fragment (few-reuse data)
//! goes straight to registers with one LDG.128 per thread — each of the
//! four nonzero columns' 64 consecutive halves split across eight lanes,
//! four 128-byte coalesced transactions per step. The A vectors (reused
//! across the 64 output columns) are staged through shared memory once
//! per stride. Within a stride, all loads issue before a
//! `__threadfence_block()` and the mma batch (the §5.4 ILP trick).
//!
//! The kernel is one point in the composer's tiling-configuration space
//! ([`crate::compose::TilingScheme`]): the stage geometry and load
//! schedule above are the default scheme, and
//! [`super::compose::octet_schemes`] names the non-default points the
//! Auto tuner sweeps. The functional path routes real values through
//! the same loads and [`vecsparse_gpu_sim::tcu`] octet semantics; the
//! [`crate::tile`] marshals map the loaded lane layout onto the
//! simulator's canonical mma fragment convention.

use super::compose::{compile_octet, OctetSites, DEFAULT_SCHEME};
use crate::compose::{LoadStrategy, TilingScheme};
use crate::tile::{marshal_spmm_mat_a, marshal_spmm_mat_b, octet_lane};
use crate::util::{lanes, upload_dense, upload_vs, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, KernelProfile, KernelSpec, Launch, LaunchConfig, MemPool,
    MmaFlavor, Mode, NativeCtx, Program, Tok, WVec,
};

/// The octet-tiling SpMM kernel.
pub struct OctetSpmm<'m> {
    a: &'m VectorSparse<f16>,
    b: &'m DenseMatrix<f16>,
    bufs: VsBuffers,
    b_buf: BufferId,
    out_buf: BufferId,
    /// Execute only HMMA steps 0–1 when V ≤ 4 (the paper's future-work
    /// SASS optimisation, §7.1.3; off by default to match the evaluated
    /// kernels).
    truncate_hmma: bool,
    /// The tiling-configuration point this instance was compiled at.
    scheme: TilingScheme,
    sites: OctetSites,
    prog: Program,
    static_len: u32,
}

impl<'m> OctetSpmm<'m> {
    /// Stage inputs; `mode` decides whether values are materialised.
    ///
    /// # Panics
    /// Panics if shapes disagree, `B` is not row-major, or V > 8.
    pub fn new(
        mem: &mut MemPool,
        a: &'m VectorSparse<f16>,
        b: &'m DenseMatrix<f16>,
        mode: Mode,
    ) -> Self {
        Self::with_scheme(mem, a, b, mode, DEFAULT_SCHEME)
    }

    /// Stage inputs and compile at an explicit tiling scheme — the
    /// tuner's scheme-sweep path.
    ///
    /// # Panics
    /// Panics if shapes disagree, `B` is not row-major, V > 8, or the
    /// scheme's staging window is invalid for the octet listing.
    pub fn with_scheme(
        mem: &mut MemPool,
        a: &'m VectorSparse<f16>,
        b: &'m DenseMatrix<f16>,
        mode: Mode,
        scheme: TilingScheme,
    ) -> Self {
        let bufs = upload_vs(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f16>(), a.rows() * b.cols()),
            Mode::Performance => mem.alloc_ghost(width_of::<f16>(), a.rows() * b.cols()),
        };
        Self::from_staged_scheme(a, b, bufs, b_buf, out_buf, scheme)
    }

    /// Build the kernel over operands **already staged** in a pool —
    /// the engine's plan path, which uploads the sparse operand once and
    /// reuses its buffers across launches. Compiles the default scheme.
    ///
    /// # Panics
    /// Panics if shapes disagree, `B` is not row-major, or V > 8.
    pub fn from_staged(
        a: &'m VectorSparse<f16>,
        b: &'m DenseMatrix<f16>,
        bufs: VsBuffers,
        b_buf: BufferId,
        out_buf: BufferId,
    ) -> Self {
        Self::from_staged_scheme(a, b, bufs, b_buf, out_buf, DEFAULT_SCHEME)
    }

    /// [`Self::from_staged`] at an explicit tiling scheme — the plan
    /// path once the tuner has picked a non-default point.
    ///
    /// # Panics
    /// Panics if shapes disagree, `B` is not row-major, V > 8, or the
    /// scheme's staging window is invalid for the octet listing.
    pub fn from_staged_scheme(
        a: &'m VectorSparse<f16>,
        b: &'m DenseMatrix<f16>,
        bufs: VsBuffers,
        b_buf: BufferId,
        out_buf: BufferId,
        scheme: TilingScheme,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
        assert_eq!(b.layout(), Layout::RowMajor, "B must be row-major");
        assert!(
            matches!(a.v(), 1 | 2 | 4 | 8),
            "column vector length must be 1, 2, 4, or 8"
        );

        let (prog, sites, static_len) = compile_octet(&scheme);

        OctetSpmm {
            a,
            b,
            bufs,
            b_buf,
            out_buf,
            truncate_hmma: false,
            scheme,
            sites,
            prog,
            static_len,
        }
    }

    /// Enable the redundant-HMMA removal ablation (V ≤ 4 only).
    pub fn with_truncated_hmma(mut self, on: bool) -> Self {
        self.truncate_hmma = on && self.a.v() <= 4;
        self
    }

    /// Toggle the §5.4 ILP batching (on by default; off interleaves each
    /// step's load with its mma, modelling the compiler's register
    /// reuse). Sugar for moving the scheme between
    /// [`LoadStrategy::SyncFullOrdered`] and
    /// [`LoadStrategy::SyncBufferCyclic`] — the program's site table is
    /// schedule-independent, so no recompile is needed.
    pub fn with_ilp_batching(mut self, on: bool) -> Self {
        self.scheme.load = if on {
            LoadStrategy::SyncFullOrdered
        } else {
            LoadStrategy::SyncBufferCyclic
        };
        self
    }

    /// The tiling-configuration point this instance runs at.
    pub fn scheme(&self) -> &TilingScheme {
        &self.scheme
    }

    /// Output buffer id.
    pub fn output(&self) -> BufferId {
        self.out_buf
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> DenseMatrix<f16> {
        crate::util::download_dense(mem, self.out_buf, self.a.rows(), self.b.cols())
    }

    fn n_chunks(&self) -> usize {
        self.b.cols().div_ceil(self.scheme.tile_n)
    }

    fn flavor(&self) -> MmaFlavor {
        if self.truncate_hmma {
            MmaFlavor::Truncated
        } else {
            MmaFlavor::Standard
        }
    }
}

impl KernelSpec for OctetSpmm<'_> {
    fn name(&self) -> String {
        format!("spmm-octet(V={})", self.a.v())
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.a.pattern().block_rows() * self.n_chunks(),
            warps_per_cta: 1,
            // Two 8-wide f32 accumulators, the B fragment, A fragment and
            // index registers.
            regs_per_thread: 40,
            // Staged A vectors: stage_k × V halves.
            smem_elems: self.scheme.stage_k() * self.a.v(),
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::block_row_shard_layout(
            self.out_buf,
            self.a.pattern().block_rows(),
            self.a.v(),
            self.a.rows(),
            self.b.cols(),
            self.n_chunks(),
        )
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let v_len = self.a.v();
        let p = self.a.pattern();
        let n = self.b.cols();
        let tile_n = self.scheme.tile_n;
        let stage_k = self.scheme.stage_k();
        let chunks = self.n_chunks();
        let br = cta.cta_id / chunks;
        let n0 = (cta.cta_id % chunks) * tile_n;
        let range = p.block_row_range(br);
        let row_ptr_base = br;
        let flavor = self.flavor();
        let functional = cta.mode == Mode::Functional;
        let s = &self.sites;

        let mut w = cta.warp(0);

        // Row pointers (two 32-bit loads in one request).
        let rp = lanes(|l| if l < 2 { Some(row_ptr_base + l) } else { None });
        let rp_tok = w.ldg(s.ld_rowptr, self.bufs.row_ptr, &rp, 1, &[]).tok();
        w.int_ops(s.addr, 2, &[rp_tok]);

        // Two mma accumulator fragments: transposed-output rows 0-31, 32-63.
        let mut acc = if functional {
            [WVec::zeros(8), WVec::zeros(8)]
        } else {
            [WVec::ghost(8, Tok::NONE), WVec::ghost(8, Tok::NONE)]
        };

        let mut i = range.start;
        while i < range.end {
            let stride = (range.end - i).min(stage_k);
            let full = stride == stage_k && self.scheme.load == LoadStrategy::SyncFullOrdered;

            // Stage this stride's column indices and A vectors.
            let ci = lanes(|l| if l < stride { Some(i + l) } else { None });
            let ci_tok = w.ldg(s.ld_colidx, self.bufs.col_idx, &ci, 1, &[]).tok();
            let av = lanes(|l| {
                if l < stride {
                    Some((i + l) * v_len)
                } else {
                    None
                }
            });
            let avals = w.ldg(s.ld_avals, self.bufs.values, &av, v_len, &[ci_tok]);
            let sts_off = lanes(|l| if l < stride { Some(l * v_len) } else { None });
            w.sts(s.sts_avals, &sts_off, &avals, &[]);

            let steps = stride.div_ceil(4);
            // Batched loads, fence, batched mma (ILP; only for full
            // strides under the ordered load schedule — the residue and
            // the cyclic schedule interleave, §5.4).
            let mut b_frags: Vec<WVec> = Vec::with_capacity(steps);
            let mut a_frag_toks: Vec<Tok> = Vec::with_capacity(steps);
            for step in 0..steps {
                let base = i + step * 4;
                // B fragment: lane 8j+c loads B[col_j][n0+8c..8c+8].
                let offs = lanes(|l| {
                    let j = l / 8;
                    let c = l % 8;
                    let vec_idx = base + j;
                    if vec_idx < range.end && n0 + 8 * c < n {
                        let col = p.col_idx()[vec_idx] as usize;
                        Some(col * n + n0 + 8 * c)
                    } else {
                        None
                    }
                });
                w.int_ops(s.addr, 1, &[ci_tok]);
                let loaded = w.ldg(s.ldg_b[step], self.b_buf, &offs, 8, &[ci_tok]);
                // Shared A fragment for this step (4 vectors × V halves).
                let lds_off = lanes(|l| {
                    let rel = step * 4 * v_len + l * v_len;
                    if l < 4 && (step * 4 + l) < stride {
                        Some(rel)
                    } else {
                        None
                    }
                });
                let a_tok = w.lds(s.lds_a[step], &lds_off, v_len, &[]).tok();
                b_frags.push(loaded);
                a_frag_toks.push(a_tok);
                if !full {
                    // Residue/cyclic path: interleave load and compute.
                    self.step_mma(
                        &mut w,
                        step,
                        &b_frags[step],
                        &avals,
                        a_frag_toks[step],
                        v_len,
                        &mut acc,
                        flavor,
                    );
                }
            }
            if full {
                w.fence(s.fence);
                for step in 0..steps {
                    self.step_mma(
                        &mut w,
                        step,
                        &b_frags[step],
                        &avals,
                        a_frag_toks[step],
                        v_len,
                        &mut acc,
                        flavor,
                    );
                }
            }
            i += stride;
        }

        // Epilogue: shuffle-reorganise and vector stores (row-safe: a
        // residue chunk never lets a vector store cross the row end).
        let row_base = br * v_len;
        let tn = tile_n.min(n - n0);
        if functional {
            // Extract from the accumulator fragments and round once. The
            // shadow twins were maintained by the mma shadow pass; mirror
            // the extraction so the stores carry them too.
            let shadow = w.shadow_exec();
            let mut tile = vec![0.0f32; v_len * tile_n];
            let mut tile64 = vec![0.0f64; if shadow { v_len * tile_n } else { 0 }];
            for (half, frag) in acc.iter().enumerate() {
                for o in 0..4 {
                    for g in 0..2 {
                        for t in 0..4 {
                            let nrow = 32 * half + 8 * o + 4 * g + t;
                            for col in 0..v_len {
                                tile[col * tile_n + nrow] = frag.get(octet_lane(o, g, t), col);
                                if shadow {
                                    tile64[col * tile_n + nrow] =
                                        frag.get_shadow(octet_lane(o, g, t), col);
                                }
                            }
                        }
                    }
                }
            }
            let shuffled = w.shfl(s.shfl_out, &acc[0], |l| l, &[]);
            drop(shuffled);
            for r in 0..v_len {
                if row_base + r >= self.a.rows() {
                    break;
                }
                let vals: Vec<f32> = (0..tn)
                    .map(|c| f16::from_f32(tile[r * tile_n + c]).to_f32())
                    .collect();
                let shadows: Vec<f64> = if shadow {
                    (0..tn).map(|c| tile64[r * tile_n + c]).collect()
                } else {
                    Vec::new()
                };
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &vals,
                    &shadows,
                    8,
                    Tok::NONE,
                );
            }
        } else {
            // Four shuffles reorganise the fragments for vector stores.
            let shfl_tok = {
                let g = WVec::ghost(1, acc[1].tok());
                let mut t = Tok::NONE;
                for _ in 0..4 {
                    t = w
                        .shfl(s.shfl_out, &g, |l| l ^ 16, &[acc[0].tok(), acc[1].tok()])
                        .tok();
                }
                t
            };
            for r in 0..v_len {
                if row_base + r >= self.a.rows() {
                    break;
                }
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &[],
                    &[],
                    8,
                    shfl_tok,
                );
            }
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // The truncated-HMMA ablation drops redundant fragment slots;
        // keep it on the simulated path rather than re-proving the
        // equivalence here.
        if self.truncate_hmma {
            return false;
        }
        super::native_block_row_spmm(
            ctx,
            self.a.pattern(),
            self.a.rows(),
            self.b.cols(),
            self.bufs.values,
            self.b_buf,
            self.out_buf,
        );
        true
    }
}

impl OctetSpmm<'_> {
    #[allow(clippy::too_many_arguments)]
    fn step_mma(
        &self,
        w: &mut vecsparse_gpu_sim::WarpCtx<'_, '_>,
        step: usize,
        loaded_b: &WVec,
        staged_a: &WVec,
        a_tok: Tok,
        v_len: usize,
        acc: &mut [WVec; 2],
        flavor: MmaFlavor,
    ) {
        let steps = self.sites.steps();
        let b_frag =
            marshal_spmm_mat_b(staged_a, step % steps, v_len, self.scheme.stage_k(), a_tok);
        for (sel, acc_frag) in acc.iter_mut().enumerate() {
            let a_frag = marshal_spmm_mat_a(loaded_b, sel);
            w.mma_m8n8k4(
                self.sites.mma[step % steps][sel],
                &a_frag,
                &b_frag,
                acc_frag,
                flavor,
            );
        }
    }
}

/// Functional octet SpMM.
pub fn spmm_octet(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    b: &DenseMatrix<f16>,
) -> DenseMatrix<f16> {
    let mut mem = MemPool::new();
    let kernel = OctetSpmm::new(&mut mem, a, b, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the octet SpMM kernel at the default scheme.
pub fn profile_spmm_octet(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    b: &DenseMatrix<f16>,
) -> KernelProfile {
    profile_spmm_octet_scheme(gpu, a, b, DEFAULT_SCHEME)
}

/// Profile the octet SpMM kernel at an explicit tiling scheme — the
/// Auto tuner's scheme-sweep probe.
pub fn profile_spmm_octet_scheme(
    gpu: &GpuConfig,
    a: &VectorSparse<f16>,
    b: &DenseMatrix<f16>,
    scheme: TilingScheme,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = OctetSpmm::with_scheme(&mut mem, a, b, Mode::Performance, scheme);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    fn check(m: usize, k: usize, n: usize, v: usize, sparsity: f64, seed: u64) {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(m, k, v, sparsity, seed);
        let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed + 1);
        let got = spmm_octet(&gpu, &a, &b);
        let want = reference::spmm_vs(&a, &b);
        assert_eq!(
            got.max_abs_diff(&want),
            0.0,
            "mismatch at V={v} {m}x{k}x{n} S={sparsity}"
        );
    }

    #[test]
    fn matches_reference_v4() {
        check(32, 64, 64, 4, 0.5, 1);
    }

    #[test]
    fn matches_reference_v8() {
        check(32, 64, 128, 8, 0.7, 2);
    }

    #[test]
    fn matches_reference_v2() {
        check(16, 48, 64, 2, 0.6, 3);
    }

    #[test]
    fn matches_reference_v1() {
        check(8, 32, 64, 1, 0.5, 4);
    }

    #[test]
    fn matches_reference_with_residue() {
        // 33 nonzero vectors per row exercise the interleaved residue path
        // (stride of 32 + residue of 1).
        check(16, 256, 64, 4, 1.0 - 33.0 / 256.0, 5);
    }

    #[test]
    fn handles_multiple_n_chunks() {
        check(16, 64, 192, 4, 0.5, 6);
    }

    #[test]
    fn truncated_flavor_still_correct_for_small_v() {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(16, 64, 4, 0.5, 7);
        let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 8);
        let mut mem = MemPool::new();
        let kernel = OctetSpmm::new(&mut mem, &a, &b, Mode::Functional).with_truncated_hmma(true);
        Launch::new(&mut mem, &kernel).gpu(&gpu).run();
        let got = kernel.result(&mem);
        let want = reference::spmm_vs(&a, &b);
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    /// Every tuner-swept scheme point computes the same bits as the
    /// default — the composer changes schedule and staging, never the
    /// reduction order seen by any one output element.
    #[test]
    fn all_swept_schemes_match_reference() {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(16, 256, 4, 1.0 - 33.0 / 256.0, 13);
        let b = gen::random_dense::<f16>(256, 96, Layout::RowMajor, 14);
        let want = reference::spmm_vs(&a, &b);
        for scheme in super::super::compose::octet_schemes() {
            let mut mem = MemPool::new();
            let kernel = OctetSpmm::with_scheme(&mut mem, &a, &b, Mode::Functional, scheme);
            Launch::new(&mut mem, &kernel).gpu(&gpu).run();
            let got = kernel.result(&mem);
            assert_eq!(got.max_abs_diff(&want), 0.0, "scheme {}", scheme.label());
        }
    }

    #[test]
    fn profile_hmma_count_matches_formula() {
        // Per CTA: ceil(nnz_row / 4) steps × 2 mma × 4 HMMA.
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(64, 256, 4, 0.9, 9);
        let b = gen::random_dense::<f16>(256, 64, Layout::RowMajor, 10);
        let p = profile_spmm_octet(&gpu, &a, &b);
        let nnz_row = 26; // round(256 * 0.1)
        let expected = (64 / 4) * (nnz_row as u64).div_ceil(4) * 8;
        assert_eq!(p.instrs.hmma, expected);
        // Static program stays far below the 768-entry L0 capacity.
        assert!(p.static_instrs < 600, "static {}", p.static_instrs);
    }

    #[test]
    fn grid_matches_paper_formula() {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(2048, 256, 4, 0.9, 11);
        let b = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 12);
        let p = profile_spmm_octet(&gpu, &a, &b);
        // ⌈M/V⌉ × ⌈N/64⌉ = 512 × 4 = 2048 thread blocks (Table 2).
        assert_eq!(p.grid, 2048);
    }
}

#[cfg(test)]
mod trace_shape_tests {
    use super::*;
    use vecsparse_formats::gen;

    /// Closed-form check of the octet kernel's memory-instruction counts:
    /// per CTA, one LDG.128 B-fragment load per 4-vector step plus the
    /// per-stride index/value staging.
    #[test]
    fn ldg_count_matches_formula() {
        let gpu = GpuConfig::small();
        // 64 nonzero vectors per block row: exactly 2 strides of 32.
        let a = gen::random_vector_sparse::<f16>(64, 256, 4, 0.75, 21);
        let b = gen::random_dense::<f16>(256, 64, Layout::RowMajor, 22);
        let p = profile_spmm_octet(&gpu, &a, &b);
        let ctas = 64 / 4; // block rows × one N chunk
        let nnz_row = 64u64;
        let strides = nnz_row / 32;
        // Per CTA: 1 row-ptr load + per stride (col-idx + A-values) +
        // per step (nnz_row / 4) one B load.
        let expected = ctas as u64 * (1 + strides * 2 + nnz_row / 4);
        assert_eq!(p.instrs.ldg, expected);
    }

    /// The §5.4 ILP structure: in a full stride, every B load issues
    /// before the first mma (verified through the trace ordering).
    #[test]
    fn loads_precede_mmas_within_stride() {
        use vecsparse_gpu_sim::{CtaCtx, InstrKind, MemPool};
        let a = gen::random_vector_sparse::<f16>(8, 512, 4, 0.75, 23);
        let b = gen::random_dense::<f16>(512, 64, Layout::RowMajor, 24);
        let mut mem = MemPool::new();
        let kernel = OctetSpmm::new(&mut mem, &a, &b, Mode::Performance);
        let mut cta = CtaCtx::new(0, Mode::Performance, &mem, 1, 32 * 4, 2);
        kernel.run_cta(&mut cta);
        // Inspect the first full stride: between the A-value staging and
        // the first HMMA there must be 8 B loads (32 vectors / 4).
        let (traces, _) = cta.finish();
        let instrs = &traces[0].instrs;
        let first_hmma = instrs
            .iter()
            .position(|i| matches!(i.kind, InstrKind::Hmma))
            .expect("kernel issues HMMA");
        let ldg128_before = instrs[..first_hmma]
            .iter()
            .filter(|i| matches!(i.kind, InstrKind::Ldg { bits: 128 }))
            .count();
        assert!(
            ldg128_before >= 8,
            "only {ldg128_before} wide loads before mma"
        );
        // And a fence separates the batches.
        assert!(instrs[..first_hmma]
            .iter()
            .any(|i| matches!(i.kind, InstrKind::Fence)));
    }
}
