//! Fine-grained CSR SpMM — a surrogate for `cusparseSpMM` on a CSR input
//! (the "cusparse" series of Fig. 4).
//!
//! Row-split design: each CTA (one warp) produces one output row, walking
//! the row's scalar nonzeros. Every nonzero needs its own index/value
//! loads (narrow requests) and a gathered `B` row, so data reuse is
//! minimal and load chains dominate — the reason the fine-grained kernel
//! only pays off towards 95%+ sparsity and falls behind `cublasHgemm`
//! under half precision (§3.1).

use crate::util::{download_dense, lanes, upload_csr, upload_dense, width_of, CsrBuffers};
use vecsparse_formats::{Csr, DenseMatrix, Layout, Scalar};
use vecsparse_fp16::{f16, hmul_fadd};
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig,
    MemPool, Mode, NativeCtx, Program, Site, Tok, WVec,
};

/// The fine-grained CSR SpMM kernel, generic over precision.
pub struct CsrScalarSpmm<'m, T: Scalar> {
    a: &'m Csr<T>,
    b: &'m DenseMatrix<T>,
    bufs: CsrBuffers,
    b_buf: BufferId,
    out_buf: BufferId,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_rowptr: Site,
    ld_idx: Site,
    ld_val: Site,
    ldg_b: Site,
    math: Site,
    addr: Site,
    stg: Site,
}

impl<'m, T: Scalar> CsrScalarSpmm<'m, T> {
    /// Stage inputs.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn new(mem: &mut MemPool, a: &'m Csr<T>, b: &'m DenseMatrix<T>, mode: Mode) -> Self {
        assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
        assert_eq!(b.layout(), Layout::RowMajor);
        let bufs = upload_csr(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<T>(), a.rows() * b.cols()),
            Mode::Performance => mem.alloc_ghost(width_of::<T>(), a.rows() * b.cols()),
        };
        let mut p = Program::new();
        let sites = Sites {
            ld_rowptr: p.site("ld_rowptr", 0),
            ld_idx: p.site("ld_idx", 0),
            ld_val: p.site("ld_val", 0),
            ldg_b: p.site("ldg_b", 0),
            math: p.site("math", 0),
            addr: p.site("addr", 0),
            stg: p.site("stg", 0),
        };
        // Rolled inner loop: a compact program (the kernel's problem is
        // memory behaviour, not instruction supply).
        let static_len = p.static_len() + 60;
        CsrScalarSpmm {
            a,
            b,
            bufs,
            b_buf,
            out_buf,
            sites,
            prog: p,
            static_len,
        }
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> DenseMatrix<T> {
        download_dense(mem, self.out_buf, self.a.rows(), self.b.cols())
    }
}

impl<T: Scalar> KernelSpec for CsrScalarSpmm<'_, T> {
    fn name(&self) -> String {
        format!("spmm-csr({})", T::NAME)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.a.rows(),
            warps_per_cta: 1,
            regs_per_thread: 48,
            smem_elems: 0,
            smem_elem_bytes: T::bytes() as u64,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        // One CTA per scalar row; the output slice of row r is C[r, ..].
        super::block_row_shard_layout(
            self.out_buf,
            self.a.rows(),
            1,
            self.a.rows(),
            self.b.cols(),
            1,
        )
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let row = cta.cta_id;
        let n = self.b.cols();
        let functional = cta.mode == Mode::Functional;
        let half = T::BITS == 16;
        let s = &self.sites;
        let cols_per_lane = n.div_ceil(32).max(1);
        let epl = cols_per_lane.min(128 / T::BITS as usize);
        let range = self.a.row_range(row);

        let mut acc = vec![0.0f32; n];
        let mut w = cta.warp(0);
        let rp = lanes(|l| if l < 2 { Some(row + l) } else { None });
        let rp_tok = w.ldg(s.ld_rowptr, self.bufs.row_ptr, &rp, 1, &[]).tok();
        let mut math_tok = Tok::NONE;

        for i in range.clone() {
            let col = self.a.col_idx()[i] as usize;
            // Scalar index + value loads: one narrow request each.
            let one = lanes(|l| if l == 0 { Some(i) } else { None });
            let idx_tok = w.ldg(s.ld_idx, self.bufs.col_idx, &one, 1, &[rp_tok]).tok();
            let val = w.ldg(s.ld_val, self.bufs.values, &one, 1, &[rp_tok]);
            let addr_tok = w.int_ops(s.addr, 2, &[idx_tok]);
            // Gather the B row across lanes.
            let mut b_tok = Tok::NONE;
            for part in 0..cols_per_lane.div_ceil(epl) {
                let offs = lanes(|l| {
                    let c = l * cols_per_lane + part * epl;
                    if c < n {
                        Some(col * n + c)
                    } else {
                        None
                    }
                });
                b_tok = w.ldg(s.ldg_b, self.b_buf, &offs, epl, &[addr_tok]).tok();
            }
            let kind = if half {
                InstrKind::Hfma2
            } else {
                InstrKind::Ffma
            };
            let per_lane_macs = cols_per_lane as u32;
            math_tok = w.math(
                s.math,
                kind,
                (per_lane_macs / if half { 2 } else { 1 }).max(1),
                &[b_tok, val.tok(), math_tok],
            );

            if functional {
                let a_val = w.mem().read(self.bufs.values, i);
                for c in 0..n {
                    let b_val = w.mem().read(self.b_buf, col * n + c);
                    acc[c] = if half {
                        hmul_fadd(f16::from_f32(a_val), f16::from_f32(b_val), acc[c])
                    } else {
                        acc[c] + a_val * b_val
                    };
                }
            }
        }

        for part in 0..cols_per_lane.div_ceil(epl) {
            let offs = lanes(|l| {
                let c = l * cols_per_lane + part * epl;
                if c < n {
                    Some(row * n + c)
                } else {
                    None
                }
            });
            let mut vals = WVec::zeros(epl);
            if functional {
                for l in 0..32 {
                    for e in 0..epl {
                        let c = l * cols_per_lane + part * epl + e;
                        if c < n {
                            vals.set(l, e, T::from_f32(acc[c]).to_f32());
                        }
                    }
                }
            } else {
                vals = WVec::ghost(epl, math_tok);
            }
            w.stg(s.stg, self.out_buf, &offs, &vals, &[math_tok]);
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // One accumulator per output element, walking the row's scalar
        // nonzeros in ascending order — exactly the simulated kernel's
        // per-row functional loop.
        let n = self.b.cols();
        let half = T::BITS == 16;
        let col_idx = self.a.col_idx();
        let values = ctx.contents(self.bufs.values);
        let b = ctx.contents(self.b_buf);
        let mut writes = Vec::with_capacity(self.a.rows() * n);
        for row in 0..self.a.rows() {
            let range = self.a.row_range(row);
            for c in 0..n {
                let mut acc = 0.0f32;
                for i in range.clone() {
                    let a_val = values[i];
                    let b_val = b[col_idx[i] as usize * n + c];
                    acc = if half {
                        hmul_fadd(f16::from_f32(a_val), f16::from_f32(b_val), acc)
                    } else {
                        acc + a_val * b_val
                    };
                }
                writes.push(((row * n + c) as u32, T::from_f32(acc).to_f32()));
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional fine-grained CSR SpMM.
pub fn spmm_csr<T: Scalar>(gpu: &GpuConfig, a: &Csr<T>, b: &DenseMatrix<T>) -> DenseMatrix<T> {
    let mut mem = MemPool::new();
    let kernel = CsrScalarSpmm::new(&mut mem, a, b, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the fine-grained CSR SpMM kernel.
pub fn profile_spmm_csr<T: Scalar>(
    gpu: &GpuConfig,
    a: &Csr<T>,
    b: &DenseMatrix<T>,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = CsrScalarSpmm::new(&mut mem, a, b, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    #[test]
    fn matches_reference_half() {
        let gpu = GpuConfig::small();
        let a = gen::random_csr::<f16>(16, 64, 0.8, 1);
        let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 2);
        let got = spmm_csr(&gpu, &a, &b);
        let want = reference::spmm_csr(&a, &b);
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn matches_reference_single() {
        let gpu = GpuConfig::small();
        let a = gen::random_csr::<f32>(16, 64, 0.9, 3);
        let b = gen::random_dense::<f32>(64, 96, Layout::RowMajor, 4);
        let got = spmm_csr(&gpu, &a, &b);
        let want = reference::spmm_csr(&a, &b);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn sparser_is_faster() {
        let gpu = GpuConfig::small();
        let b = gen::random_dense::<f16>(512, 256, Layout::RowMajor, 5);
        let dense_ish = gen::random_csr::<f16>(512, 512, 0.5, 6);
        let sparse = gen::random_csr::<f16>(512, 512, 0.98, 7);
        let pd = profile_spmm_csr(&gpu, &dense_ish, &b);
        let ps = profile_spmm_csr(&gpu, &sparse, &b);
        assert!(
            ps.cycles * 4.0 < pd.cycles,
            "{} vs {}",
            ps.cycles,
            pd.cycles
        );
    }
}
