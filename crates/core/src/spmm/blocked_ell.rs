//! Blocked-ELL SpMM — a surrogate for cuSPARSE's TCU-based structured
//! kernel, reproducing the §3.2 inefficiency profile at small block sizes.
//!
//! Each CTA (one warp) produces a `block × 128` output stripe. Every
//! nonzero block is fed to the TCU as a full wmma k-slab of 16
//! (wmma.m8n32k16), so a block narrower than 16 columns pays for padding:
//! with block size 4 three quarters of every multiplication are wasted. Both the block values and the
//! gathered `B` rows take a **global → shared → register** round trip even
//! though they are barely reused (violating guideline IV), every block
//! needs its own integer address computation (IMAD/IADD3 chains,
//! guideline III), and the unrolled group body makes the program overflow
//! the 768-entry L0 instruction cache (guideline I) — yielding the
//! "No Instruction" / "Wait" / "Short Scoreboard" stall signature of
//! Table 1.

use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use crate::util::{download_dense, lanes, upload_dense, upload_ell, width_of, EllBuffers};
use vecsparse_formats::{BlockedEll, DenseMatrix, Layout, ELL_PAD};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, KernelProfile, KernelSpec, Launch, LaunchConfig, MemPool,
    MmaFlavor, Mode, NativeCtx, Program, Site, Tok, WVec,
};

/// The kernel's named default point in the tiling space.
const SCHEME: TilingScheme = scheme_for(KernelId::SpmmBlockedEll);
/// Output tile width per CTA.
const TILE_N: usize = SCHEME.tile_n;

/// The Blocked-ELL SpMM kernel (half precision; cuSPARSE supports fp16
/// Blocked-ELL via `cusparseSpMM`).
pub struct BlockedEllSpmm<'m> {
    a: &'m BlockedEll<f16>,
    b: &'m DenseMatrix<f16>,
    bufs: EllBuffers,
    b_buf: BufferId,
    out_buf: BufferId,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_idx: Site,
    ldg_blk: Site,
    sts_blk: Site,
    lds_blk: Site,
    ldg_b: [Site; 8],
    sts_b: [Site; 8],
    lds_b: [Site; 8],
    mma: Vec<Site>,
    addr: Vec<Site>,
    bar: Site,
    stg: Site,
    /// Static instructions in one unrolled copy of the slot-group body.
    /// The compiler unrolls the ELL loop `PHASES`-fold, so consecutive
    /// groups execute at PC offsets `phase * phase_pcs` — which is what
    /// overflows the L0 instruction cache at small block sizes.
    phase_pcs: u32,
}

/// Unroll factor of the slot-group loop: the real kernel's SASS shrinks
/// as blocks grow (fewer specialised copies are needed), so the factor is
/// derived from the block size — block 4 lands near the paper's ≈4600
/// lines, block 16 fits the L0 cache.
fn phases(block: usize) -> u32 {
    (96 / block as u32).clamp(6, 24)
}

impl<'m> BlockedEllSpmm<'m> {
    /// Stage inputs and build the static program.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn new(
        mem: &mut MemPool,
        a: &'m BlockedEll<f16>,
        b: &'m DenseMatrix<f16>,
        mode: Mode,
    ) -> Self {
        let bufs = upload_ell(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f16>(), a.rows() * b.cols()),
            Mode::Performance => mem.alloc_ghost(width_of::<f16>(), a.rows() * b.cols()),
        };
        Self::from_staged(a, b, bufs, b_buf, out_buf)
    }

    /// Build the kernel over operands already staged in a pool (the
    /// engine's plan path).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn from_staged(
        a: &'m BlockedEll<f16>,
        b: &'m DenseMatrix<f16>,
        bufs: EllBuffers,
        b_buf: BufferId,
        out_buf: BufferId,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
        assert_eq!(b.layout(), Layout::RowMajor);

        let block = a.block();
        let group = 1usize;
        let mut p = Program::new();
        let ld_idx = p.site("ld_idx", 0);
        let ldg_blk = p.site("ldg_blk", 0);
        let sts_blk = p.site("sts_blk", 0);
        let lds_blk = p.site("lds_blk", 0);
        let mut ldg_b = [Site(0); 8];
        let mut sts_b = [Site(0); 8];
        let mut lds_b = [Site(0); 8];
        for i in 0..8u32 {
            ldg_b[i as usize] = p.site("ldg_b", i);
            sts_b[i as usize] = p.site("sts_b", i);
            lds_b[i as usize] = p.site("lds_b", i);
        }
        // 4 wmma per group, 16 HMMA each: reserve 64 static HMMA slots.
        let mma: Vec<Site> = (0..4usize)
            .map(|i| {
                let base = p.site("wmma", (i * 16) as u32);
                for k in 1..16u32 {
                    p.site("wmma", (i * 16) as u32 + k);
                }
                base
            })
            .collect();
        // Per-block addressing in the unrolled group body: the real SASS
        // spends ≈27% of its instructions on IMAD/IADD3 tile-address math
        // (§3.2), roughly 48 static slots per block.
        let addr: Vec<Site> = (0..(group as u32 * 48))
            .map(|i| p.site("addr", i))
            .collect();
        let bar = p.site("bar", 0);
        let stg = p.site("stg", 0);

        // One unrolled copy of the group body; the executed PC stream
        // rotates over PHASES copies plus a residue clone, matching the
        // several-thousand-line SASS the paper measured (≈4600 lines at
        // block size 4; larger blocks need fewer specialised copies).
        let phase_pcs = p.static_len();
        let static_len = phase_pcs * phases(block);

        BlockedEllSpmm {
            a,
            b,
            bufs,
            b_buf,
            out_buf,
            sites: Sites {
                ld_idx,
                ldg_blk,
                sts_blk,
                lds_blk,
                ldg_b,
                sts_b,
                lds_b,
                mma,
                addr,
                bar,
                stg,
                phase_pcs,
            },
            prog: p,
            static_len,
        }
    }

    /// Output buffer id.
    pub fn output(&self) -> BufferId {
        self.out_buf
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> DenseMatrix<f16> {
        download_dense(mem, self.out_buf, self.a.rows(), self.b.cols())
    }

    fn n_chunks(&self) -> usize {
        self.b.cols().div_ceil(TILE_N)
    }
}

impl KernelSpec for BlockedEllSpmm<'_> {
    fn name(&self) -> String {
        format!("spmm-blocked-ell(b={})", self.a.block())
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.a.block_rows() * self.n_chunks(),
            warps_per_cta: 1,
            regs_per_thread: 96,
            // Staged: one k-slab of B (16 × 128) plus a block group.
            smem_elems: 16 * TILE_N + 16 * self.a.block(),
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::block_row_shard_layout(
            self.out_buf,
            self.a.block_rows(),
            self.a.block(),
            self.a.rows(),
            self.b.cols(),
            self.n_chunks(),
        )
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let block = self.a.block();
        // One wmma k-slab (k = 16) per nonzero block: a block narrower
        // than 16 still pays the full slab — the padding waste behind
        // Fig. 6's small-block collapse.
        let group = 1;
        let n = self.b.cols();
        let chunks = self.n_chunks();
        let br = cta.cta_id / chunks;
        let n0 = (cta.cta_id % chunks) * TILE_N;
        let tn = TILE_N.min(n - n0);
        let functional = cta.mode == Mode::Functional;
        let bpr = self.a.blocks_per_row();
        let s = &self.sites;

        let shadow = functional && cta.shadow_exec;
        let cta_id = cta.cta_id;
        let mut acc = vec![0.0f32; block * tn];
        let mut acc64 = vec![0.0f64; if shadow { block * tn } else { 0 }];
        let mut w = cta.warp(0);

        // Double-buffering: the wmma batch of group i consumes fragments
        // staged while group i-1 computed, so loads overlap compute.
        let mut prev_blk_tok = Tok::NONE;
        let mut prev_b_tok = Tok::NONE;
        // Last accumulator token; the epilogue store depends on it.
        let mut mma_tok = Tok::NONE;
        let mut slot = 0;
        let mut group_idx = 0u32;
        while slot < bpr {
            let g = group.min(bpr - slot);
            // The compiler unrolls the group loop: consecutive groups run
            // at rotated PC offsets, exercising the whole static program.
            // CTAs resident on one scheduler sit at different offsets of
            // the unrolled program (they desynchronise on memory), so the
            // phase is staggered by CTA id: the warps' combined fetch
            // working set is what overflows the L0 cache.
            let phase = ((group_idx + cta_id as u32) % phases(block)) * s.phase_pcs;
            group_idx += 1;
            let ph = |site: Site| Site(site.0 + phase);
            // Load the group's block-column indices.
            let ci = lanes(|l| {
                if l < g {
                    Some(br * bpr + slot + l)
                } else {
                    None
                }
            });
            let ci_tok = w
                .ldg(ph(s.ld_idx), self.bufs.block_col_idx, &ci, 1, &[])
                .tok();
            // Heavy per-block address arithmetic, dependency-chained.
            let mut addr_tok = ci_tok;
            // Executed address math is ~12 IMADs per block; the remaining
            // static slots model predication and residue specialisations.
            for (ai, &site) in s.addr.iter().take(g * 48).enumerate() {
                if ai % 48 == 0 {
                    addr_tok = w.int_ops_unrolled(ph(site), 12, &[addr_tok]);
                }
            }
            // Block values: g × block × block halves → shared → regs.
            let bb = block * block;
            let blk_off = lanes(|l| {
                let total = g * bb;
                let per_lane = total.div_ceil(32).max(1);
                if l * per_lane < total {
                    Some((br * bpr + slot) * bb + l * per_lane)
                } else {
                    None
                }
            });
            let per_lane_blk = (g * bb).div_ceil(32).clamp(1, 8);
            let blk = w.ldg(
                ph(s.ldg_blk),
                self.bufs.values,
                &blk_off,
                per_lane_blk,
                &[addr_tok],
            );
            // Shared staging region for block values sits after the B slab.
            let blk_smem = lanes(|l| {
                if l * per_lane_blk < g * bb {
                    Some(16 * TILE_N + (l * per_lane_blk) % (16 * block))
                } else {
                    None
                }
            });
            w.sts(ph(s.sts_blk), &blk_smem, &blk, &[]);

            // B rows for the k-slab: for each block in the group, `block`
            // rows of 128 halves, gathered then staged through shared.
            for (j, pair) in (0..g).zip(0..8usize) {
                let bc = self.a.block_col(br, slot + j);
                for r_chunk in 0..(block * TILE_N).div_ceil(256) {
                    let offs = lanes(|l| {
                        if bc == ELL_PAD {
                            return None;
                        }
                        let flat = r_chunk * 256 + l * 8;
                        let r = flat / TILE_N;
                        let c = flat % TILE_N;
                        if r < block && n0 + c < n {
                            Some((bc as usize * block + r) * n + n0 + c)
                        } else {
                            None
                        }
                    });
                    let v = w.ldg(ph(s.ldg_b[pair]), self.b_buf, &offs, 8, &[addr_tok]);
                    let smem_offs = lanes(|l| {
                        let flat = (j * block * TILE_N + r_chunk * 256 + l * 8) % (16 * TILE_N);
                        Some(flat)
                    });
                    w.sts(ph(s.sts_b[pair]), &smem_offs, &v, &[]);
                }
                let _ = pair;
            }
            w.bar_sync(ph(s.bar));

            // Four wmma.m8n32k16 per group (TILE_N = 4 × 32), 16 HMMA
            // each; fragments come from shared.
            for (mi, &site) in s.mma.iter().enumerate() {
                // Fragment loads from shared memory happen in the compute
                // phase (only the global->shared staging is
                // double-buffered), so the wmma waits on LDS latency.
                let blk_frag_tok = w
                    .lds(ph(s.lds_blk), &blk_smem, per_lane_blk, &[prev_blk_tok])
                    .tok();
                let b_frag_tok = w
                    .lds(
                        ph(s.lds_b[mi.min(7)]),
                        &lanes(|l| Some(l * 8 % (16 * TILE_N))),
                        8,
                        &[prev_b_tok],
                    )
                    .tok();
                let a_frag = WVec::ghost(4, blk_frag_tok);
                let b_frag = WVec::ghost(4, b_frag_tok);
                for sub in 0..4u32 {
                    let mut acc_frag = WVec::ghost(8, mma_tok);
                    mma_tok = w.mma_m8n8k4(
                        Site(ph(site).0 + sub * 4),
                        &a_frag,
                        &b_frag,
                        &mut acc_frag,
                        MmaFlavor::Standard,
                    );
                }
            }

            if functional {
                for j in 0..g {
                    let bc = self.a.block_col(br, slot + j);
                    if bc == ELL_PAD {
                        continue;
                    }
                    let vals = self.a.block_values(br, slot + j);
                    for r in 0..block {
                        for kk in 0..block {
                            let a_val = vals[r * block + kk].to_f32();
                            if a_val == 0.0 {
                                continue;
                            }
                            let kr = bc as usize * block + kk;
                            for c in 0..tn {
                                let b_val = w.mem().read(self.b_buf, kr * n + n0 + c);
                                acc[r * tn + c] += a_val * b_val;
                                if shadow {
                                    acc64[r * tn + c] += f64::from(a_val) * f64::from(b_val);
                                }
                            }
                        }
                    }
                }
            }
            prev_blk_tok = blk.tok();
            prev_b_tok = addr_tok;
            slot += g;
        }

        // Store the block × TILE_N stripe row-safely.
        let row_base = br * block;
        for r in 0..block {
            if row_base + r >= self.a.rows() {
                break;
            }
            if functional {
                let vals: Vec<f32> = (0..tn)
                    .map(|c| f16::from_f32(acc[r * tn + c]).to_f32())
                    .collect();
                let shadows: Vec<f64> = if shadow {
                    (0..tn).map(|c| acc64[r * tn + c]).collect()
                } else {
                    Vec::new()
                };
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &vals,
                    &shadows,
                    8,
                    Tok::NONE,
                );
            } else {
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &[],
                    &[],
                    8,
                    mma_tok,
                );
            }
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // Per output element the slab pipeline reduces blocks in ascending
        // slot order, ascending `kk` within each block, into one
        // persistent f32 accumulator. Padding blocks (`ELL_PAD`) and the
        // simulated path's zero-skip only move exact ±0.0 terms.
        let block = self.a.block();
        let n = self.b.cols();
        let rows = self.a.rows();
        let bpr = self.a.blocks_per_row();
        let b = ctx.contents(self.b_buf);
        let mut writes = Vec::with_capacity(rows * n);
        for br in 0..self.a.block_rows() {
            for r in 0..block {
                let row = br * block + r;
                if row >= rows {
                    break;
                }
                for c in 0..n {
                    let mut acc = 0.0f32;
                    for slot in 0..bpr {
                        let bc = self.a.block_col(br, slot);
                        if bc == ELL_PAD {
                            continue;
                        }
                        let vals = self.a.block_values(br, slot);
                        for kk in 0..block {
                            let a_val = vals[r * block + kk].to_f32();
                            acc += a_val * b[(bc as usize * block + kk) * n + c];
                        }
                    }
                    writes.push(((row * n + c) as u32, f16::from_f32(acc).to_f32()));
                }
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional Blocked-ELL SpMM.
pub fn spmm_blocked_ell(
    gpu: &GpuConfig,
    a: &BlockedEll<f16>,
    b: &DenseMatrix<f16>,
) -> DenseMatrix<f16> {
    let mut mem = MemPool::new();
    let kernel = BlockedEllSpmm::new(&mut mem, a, b, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the Blocked-ELL SpMM kernel.
pub fn profile_spmm_blocked_ell(
    gpu: &GpuConfig,
    a: &BlockedEll<f16>,
    b: &DenseMatrix<f16>,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = BlockedEllSpmm::new(&mut mem, a, b, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    fn check(m: usize, k: usize, n: usize, block: usize, sparsity: f64, seed: u64) {
        let gpu = GpuConfig::small();
        let a = gen::random_blocked_ell::<f16>(m, k, block, sparsity, seed);
        let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed + 1);
        let got = spmm_blocked_ell(&gpu, &a, &b);
        let want = reference::gemm(&a.to_dense(Layout::RowMajor), &b);
        assert_eq!(got.max_abs_diff(&want), 0.0, "block={block}");
    }

    #[test]
    fn matches_reference_block4() {
        check(32, 64, 128, 4, 0.75, 1);
    }

    #[test]
    fn matches_reference_block8() {
        check(32, 64, 128, 8, 0.5, 2);
    }

    #[test]
    fn matches_reference_block16() {
        check(64, 64, 256, 16, 0.5, 3);
    }

    #[test]
    fn small_blocks_overflow_icache() {
        let gpu = GpuConfig::small();
        let b = gen::random_dense::<f16>(512, 256, Layout::RowMajor, 4);
        let a4 = gen::random_blocked_ell::<f16>(512, 512, 4, 0.9, 5);
        let p4 = profile_spmm_blocked_ell(&gpu, &a4, &b);
        assert!(p4.static_instrs > 768 * 2, "static {}", p4.static_instrs);
        // Table 1's signature: "No Instruction" and "Wait" are both
        // material, and both dominate "Short Scoreboard".
        let ni = p4.stalls.pct_no_instruction();
        let wait = p4.stalls.pct_wait();
        let short = p4.stalls.pct_short_scoreboard();
        assert!(ni > 5.0, "no-instruction {ni}");
        assert!(wait > 5.0, "wait {wait}");
        assert!(ni > short && wait > short, "short {short}");
    }

    #[test]
    fn bigger_blocks_are_faster_per_nonzero() {
        // Fig. 6's core effect: block 16 beats block 4 at the same
        // sparsity and problem size.
        let gpu = GpuConfig::small();
        let b = gen::random_dense::<f16>(512, 256, Layout::RowMajor, 6);
        let a4 = gen::random_blocked_ell::<f16>(512, 512, 4, 0.9, 7);
        let a16 = gen::random_blocked_ell::<f16>(512, 512, 16, 0.9, 8);
        let p4 = profile_spmm_blocked_ell(&gpu, &a4, &b);
        let p16 = profile_spmm_blocked_ell(&gpu, &a16, &b);
        assert!(
            p16.cycles < p4.cycles,
            "block16 {} vs block4 {}",
            p16.cycles,
            p4.cycles
        );
    }
}
