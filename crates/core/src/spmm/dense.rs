//! Dense GEMM baselines: surrogates for `cublasSgemm` (FPU) and
//! `cublasHgemm` (Tensor Core).
//!
//! Classic CTA-tiled GEMM with shared-memory staging and double buffering:
//! a `TILE_M × TILE_N` CTA tile advanced over K in `KSTEP` slices by eight
//! warps. The half-precision variant computes warp tiles on the TCU
//! (wmma-style, 16 HMMA per 16×32×16 fragment product); the single
//! precision variant uses FFMA. This is the "dense counterpart" every
//! speedup in the paper is measured against.

use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use crate::util::{download_dense, lanes, upload_dense, width_of};
use vecsparse_formats::{DenseMatrix, Layout, Scalar};
use vecsparse_gpu_sim::{
    BufferId, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig, MemPool, Mode,
    NativeCtx, Program, Site, WVec,
};

/// The kernel's named default point in the tiling space (`tile_n` is the
/// large-problem CTA tile width; small problems shrink adaptively).
const SCHEME: TilingScheme = scheme_for(KernelId::SpmmDense);
/// Warps per CTA.
const CTA_WARPS: usize = 8;
/// K-slice depth per shared-memory stage (in elements).
const KSTEP: usize = SCHEME.tile_k;

/// Dense GEMM kernel (`C = A · B`, all row-major).
pub struct DenseGemm<'m, T: Scalar> {
    a: &'m DenseMatrix<T>,
    b: &'m DenseMatrix<T>,
    a_buf: BufferId,
    b_buf: BufferId,
    out_buf: BufferId,
    tile_m: usize,
    tile_n: usize,
    /// Split-K factor: small/skinny problems are split along K across
    /// CTAs so the machine stays occupied, as a tuned BLAS does. The
    /// cross-split reduction is assumed fused (its traffic is negligible
    /// at these sizes). Performance mode only; the functional path keeps
    /// one CTA per output tile.
    split_k: usize,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ldg_a: [Site; 2],
    ldg_b: [Site; 2],
    sts: [Site; 4],
    bar: Site,
    lds_a: [Site; 4],
    lds_b: [Site; 2],
    mma: Vec<Site>,
    fma: Vec<Site>,
    addr: Site,
    stg: Site,
    loopb: Site,
}

impl<'m, T: Scalar> DenseGemm<'m, T> {
    /// Stage inputs and allocate the output buffer.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or layouts are not
    /// row-major (`cublas*gemm` on row-major tensors, as the paper uses).
    pub fn new(
        mem: &mut MemPool,
        a: &'m DenseMatrix<T>,
        b: &'m DenseMatrix<T>,
        mode: Mode,
    ) -> Self {
        let a_buf = upload_dense(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<T>(), a.rows() * b.cols()),
            Mode::Performance => mem.alloc_ghost(width_of::<T>(), a.rows() * b.cols()),
        };
        Self::from_staged(a, b, a_buf, b_buf, out_buf, mode)
    }

    /// Build the kernel over operands already staged in a pool (the
    /// engine's plan path). `mode` still picks the split-K policy.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree or layouts are not
    /// row-major.
    pub fn from_staged(
        a: &'m DenseMatrix<T>,
        b: &'m DenseMatrix<T>,
        a_buf: BufferId,
        b_buf: BufferId,
        out_buf: BufferId,
        mode: Mode,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
        assert_eq!(a.layout(), Layout::RowMajor);
        assert_eq!(b.layout(), Layout::RowMajor);
        // Adapt the tile to small problems the way a tuned BLAS would.
        let tile_m = if a.rows() >= 128 {
            128
        } else {
            64.min(a.rows().max(16))
        };
        let tile_n = if b.cols() >= SCHEME.tile_n {
            SCHEME.tile_n
        } else {
            64.min(b.cols().max(16))
        };
        let base_grid = a.rows().div_ceil(tile_m) * b.cols().div_ceil(tile_n);
        let k_slices = a.cols().div_ceil(KSTEP).max(1);
        let split_k = match mode {
            Mode::Functional => 1,
            // Real BLAS split-K factors stay small (the reduction pass and
            // partial-sum traffic grow with the factor; each split already
            // pays its own store traffic in this model).
            Mode::Performance => (160usize.div_ceil(base_grid)).clamp(1, 8).min(k_slices),
        };

        let mut p = Program::new();
        let tensor = T::BITS == 16;
        let mma_count = if tensor {
            // Per warp per 16-k fragment group: warp tile (tile_m/2 ×
            // tile_n/4), in 16×32 wmma units ⇒ (tile_m/2/16)*(tile_n/4/32)
            // wmma, 16 HMMA each; unrolled in SASS.
            let wm = (tile_m / 2 / 16).max(1);
            let wn = (tile_n / 4 / 32).max(1);
            wm * wn * 16
        } else {
            0
        };
        let fma_count = if tensor { 0 } else { 64 };
        let sites = Sites {
            ldg_a: [p.site("ldg_a", 0), p.site("ldg_a", 1)],
            ldg_b: [p.site("ldg_b", 0), p.site("ldg_b", 1)],
            sts: [
                p.site("sts", 0),
                p.site("sts", 1),
                p.site("sts", 2),
                p.site("sts", 3),
            ],
            bar: p.site("bar", 0),
            lds_a: [
                p.site("lds_a", 0),
                p.site("lds_a", 1),
                p.site("lds_a", 2),
                p.site("lds_a", 3),
            ],
            lds_b: [p.site("lds_b", 0), p.site("lds_b", 1)],
            mma: (0..mma_count as u32 * 4)
                .step_by(4)
                .map(|i| p.site_span("hmma", i, 4))
                .collect(),
            fma: (0..fma_count as u32).map(|i| p.site("ffma", i)).collect(),
            addr: p.site("addr", 0),
            stg: p.site("stg", 0),
            loopb: p.site("loop", 0),
        };
        // HMMA sites reserve their 4 static steps via `site_span`.
        let static_len = p.static_len();

        DenseGemm {
            a,
            b,
            a_buf,
            b_buf,
            out_buf,
            tile_m,
            tile_n,
            split_k,
            sites,
            prog: p,
            static_len,
        }
    }

    /// Output buffer id.
    pub fn output(&self) -> BufferId {
        self.out_buf
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> DenseMatrix<T> {
        download_dense(mem, self.out_buf, self.a.rows(), self.b.cols())
    }

    fn grid_dims(&self) -> (usize, usize) {
        (
            self.a.rows().div_ceil(self.tile_m),
            self.b.cols().div_ceil(self.tile_n),
        )
    }
}

impl<T: Scalar> KernelSpec for DenseGemm<'_, T> {
    fn name(&self) -> String {
        if T::BITS == 16 {
            "cublasHgemm(sim)".into()
        } else {
            "cublasSgemm(sim)".into()
        }
    }

    fn launch_config(&self) -> LaunchConfig {
        let (gm, gn) = self.grid_dims();
        // Shared: double-buffered A (tile_m × KSTEP) + B (KSTEP × tile_n).
        let smem_elems = 2 * (self.tile_m * KSTEP + KSTEP * self.tile_n);
        LaunchConfig {
            grid: gm * gn * self.split_k,
            warps_per_cta: CTA_WARPS,
            regs_per_thread: if T::BITS == 16 { 120 } else { 128 },
            smem_elems,
            smem_elem_bytes: T::bytes() as u64,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        // Row blocks are M-tiles. Split-K replicas of a tile declare the
        // same row block, so a performance-mode kernel (split_k > 1)
        // honestly fails the write-disjointness obligation — the
        // cross-split reduction is fused and not shard-safe.
        let (gm, gn) = self.grid_dims();
        let m = self.a.rows();
        let n = self.b.cols();
        if gm == 0 || gn == 0 {
            return None;
        }
        Some(vecsparse_gpu_sim::ShardLayout {
            out: self.out_buf,
            rows: gm,
            row_starts: (0..=gm)
                .map(|r| ((r * self.tile_m).min(m) * n) as u32)
                .collect(),
            cta_rows: (0..gm * gn * self.split_k)
                .map(|c| {
                    let tr = ((c % (gm * gn)) / gn) as u32;
                    (tr, tr + 1)
                })
                .collect(),
        })
    }

    fn run_cta(&self, cta: &mut vecsparse_gpu_sim::CtaCtx<'_>) {
        let (gm, gn) = self.grid_dims();
        let tile_id = cta.cta_id % (gm * gn);
        let split = cta.cta_id / (gm * gn);
        let m0 = (tile_id / gn) * self.tile_m;
        let n0 = (tile_id % gn) * self.tile_n;
        let (m, n, k) = (self.a.rows(), self.b.cols(), self.a.cols());
        let tm = self.tile_m.min(m - m0);
        let tn = self.tile_n.min(n - n0);

        match cta.mode {
            Mode::Functional => self.run_functional(cta, m0, n0, tm, tn, k, n),
            Mode::Performance => {
                // Each split handles a contiguous K slice.
                let per = k.div_ceil(self.split_k);
                let k_lo = split * per;
                let k_hi = (k_lo + per).min(k);
                self.run_performance(cta, m0, n0, k_lo, k_hi, n, k);
            }
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // Functional mode never splits K, so each output element is one
        // flat ascending-l reduction; the simulated tile loop's zero-skip
        // only drops exact ±0.0 terms. Rounded to the element grid once
        // at store, like the real kernel's final F2F.
        let (m, n, k) = (self.a.rows(), self.b.cols(), self.a.cols());
        let a = ctx.contents(self.a_buf);
        let b = ctx.contents(self.b_buf);
        let mut writes = Vec::with_capacity(m * n);
        for r in 0..m {
            for c in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += a[r * k + l] * b[l * n + c];
                }
                writes.push(((r * n + c) as u32, T::from_f32(acc).to_f32()));
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

impl<T: Scalar> DenseGemm<'_, T> {
    /// Functional path: compute the CTA tile directly and store it through
    /// traced-store-compatible warp stores (the performance path emits the
    /// matching instruction stream).
    #[allow(clippy::too_many_arguments)] // Tile geometry is clearer flat.
    fn run_functional(
        &self,
        cta: &mut vecsparse_gpu_sim::CtaCtx<'_>,
        m0: usize,
        n0: usize,
        tm: usize,
        tn: usize,
        k: usize,
        n: usize,
    ) {
        let shadow = cta.shadow_exec;
        let mut tile = vec![0.0f32; tm * tn];
        // fp64 twin of the tile for shadow execution; empty when off.
        let mut tile64 = vec![0.0f64; if shadow { tm * tn } else { 0 }];
        for r in 0..tm {
            for l in 0..k {
                let av = cta.mem().read(self.a_buf, (m0 + r) * k + l);
                if av == 0.0 {
                    continue;
                }
                for c in 0..tn {
                    let bv = cta.mem().read(self.b_buf, l * n + n0 + c);
                    tile[r * tn + c] += av * bv;
                    if shadow {
                        tile64[r * tn + c] += f64::from(av) * f64::from(bv);
                    }
                }
            }
        }
        // Round to the element grid exactly once, like the real kernel's
        // final F2F on store.
        let round = |v: f32| T::from_f32(v).to_f32();
        // Store row by row: 32 lanes × up to 4 elements per store.
        let stg = self.sites.stg;
        for r in 0..tm {
            let mut c = 0;
            while c < tn {
                let chunk = (tn - c).min(128);
                let epl = chunk.div_ceil(32).min(4);
                let active = chunk.div_ceil(epl);
                let mut v = WVec::zeros(epl);
                for lane in 0..active {
                    for e in 0..epl {
                        let cc = c + lane * epl + e;
                        if cc < tn {
                            v.set(lane, e, round(tile[r * tn + cc]));
                            if shadow {
                                v.set_shadow(lane, e, tile64[r * tn + cc]);
                            }
                        }
                    }
                }
                let offs = lanes(|l| {
                    if l < active && c + l * epl < tn {
                        Some((m0 + r) * n + n0 + c + l * epl)
                    } else {
                        None
                    }
                });
                cta.warp(r % CTA_WARPS)
                    .stg(stg, self.out_buf, &offs, &v, &[]);
                c += chunk;
            }
        }
    }

    /// Performance path: emit the instruction stream of the tiled kernel
    /// over the K slice `k_lo..k_hi` (`k_stride` is the full row pitch).
    #[allow(clippy::too_many_arguments)]
    fn run_performance(
        &self,
        cta: &mut vecsparse_gpu_sim::CtaCtx<'_>,
        m0: usize,
        n0: usize,
        k_lo: usize,
        k_hi: usize,
        n: usize,
        k_stride: usize,
    ) {
        let s = &self.sites;
        let tensor = T::BITS == 16;
        let tile_m = self.tile_m;
        let tile_n = self.tile_n;
        let rows_per_warp = tile_m / CTA_WARPS;
        let k = k_stride;
        // Last accumulator token per warp; the epilogue store depends on it.
        let mut acc_toks = [vecsparse_gpu_sim::Tok::NONE; CTA_WARPS];

        for k0 in (k_lo..k_hi).step_by(KSTEP) {
            let ks = KSTEP.min(k_hi - k0);
            // Stage A and B slices through shared memory, each warp
            // loading its share with the widest loads that fit.
            for w in 0..CTA_WARPS {
                let mut warp = cta.warp(w);
                // A: rows_per_warp rows × ks elements (row-major); the
                // widest loads that fit, with enough parts to cover the
                // whole slab at either precision.
                let epl_a = 128 / T::BITS as usize; // LDG.128
                let a_parts = (rows_per_warp * ks).div_ceil(32 * epl_a);
                for i in 0..a_parts {
                    let site = s.ldg_a[i % s.ldg_a.len()];
                    let offs = lanes(|l| {
                        let flat = (i * 32 + l) * epl_a;
                        let r = flat / ks.max(1);
                        let c = flat % ks.max(1);
                        // Rows past the matrix edge are predicated off.
                        if r < rows_per_warp && c < ks && m0 + w * rows_per_warp + r < self.a.rows()
                        {
                            Some((m0 + w * rows_per_warp + r) * k + k0 + c)
                        } else {
                            None
                        }
                    });
                    let v = warp.ldg(site, self.a_buf, &offs, epl_a, &[]);
                    // Each warp stages its own rows_per_warp × KSTEP slab;
                    // overlapping another warp's slab would be a race.
                    let slab = rows_per_warp * KSTEP;
                    let smem = lanes(|l| Some(w * slab + ((i * 32 + l) * epl_a) % slab.max(1)));
                    warp.sts(s.sts[i % 2], &smem, &v, &[]);
                }
                // B: ks × tile_n, each warp takes ks/CTA_WARPS rows
                // (at least one).
                let brows = (ks / CTA_WARPS).max(1);
                let b_parts = (brows * tile_n).div_ceil(32 * epl_a);
                for i in 0..b_parts {
                    let site = s.ldg_b[i % s.ldg_b.len()];
                    let offs = lanes(|l| {
                        let flat = (i * 32 + l) * epl_a;
                        let r = flat / tile_n;
                        let c = flat % tile_n;
                        if r < brows && c < tile_n && n0 + c < n {
                            Some((k0 + w * brows + r).min(k - 1) * n + n0 + c)
                        } else {
                            None
                        }
                    });
                    let v = warp.ldg(site, self.b_buf, &offs, epl_a, &[]);
                    // B slab rows w*brows..(w+1)*brows of the staged slice.
                    let slab = brows * tile_n;
                    let smem = lanes(|l| {
                        Some(tile_m * KSTEP + w * slab + ((i * 32 + l) * epl_a) % slab.max(1))
                    });
                    warp.sts(s.sts[2 + i % 2], &smem, &v, &[]);
                }
                warp.bar_sync(s.bar);
            }
            // Compute phase: per warp, fragments from shared + math.
            for w in 0..CTA_WARPS {
                let mut warp = cta.warp(w);
                let mut frag_toks = [vecsparse_gpu_sim::Tok::NONE; 6];
                for (i, &site) in s.lds_a.iter().enumerate() {
                    let offs = lanes(|l| Some((w * 512 + i * 32 + l) * 8 % (tile_m * KSTEP)));
                    let v = warp.lds(site, &offs, 8, &[]);
                    frag_toks[i] = v.tok();
                }
                for (i, &site) in s.lds_b.iter().enumerate() {
                    let offs =
                        lanes(|l| Some(tile_m * KSTEP + (i * 32 + l) * 8 % (KSTEP * tile_n)));
                    let v = warp.lds(site, &offs, 8, &[]);
                    frag_toks[4 + i] = v.tok();
                }
                if tensor {
                    // Two 16-k fragment groups per KSTEP.
                    for _g in 0..(ks.div_ceil(16)) {
                        let mut a = WVec::ghost(4, frag_toks[0]);
                        let b = WVec::ghost(4, frag_toks[4]);
                        for &site in &s.mma {
                            let mut acc = WVec::ghost(8, acc_toks[w]);
                            acc_toks[w] = warp.mma_m8n8k4(
                                site,
                                &a,
                                &b,
                                &mut acc,
                                vecsparse_gpu_sim::MmaFlavor::Standard,
                            );
                            a = WVec::ghost(4, frag_toks[0]);
                        }
                    }
                } else {
                    // FFMA: 64 outputs per thread per k.
                    for _kk in 0..ks {
                        acc_toks[w] = warp.math(
                            s.fma[0],
                            InstrKind::Ffma,
                            s.fma.len() as u32,
                            &[frag_toks[0], frag_toks[4]],
                        );
                    }
                }
                warp.int_ops(s.addr, 4, &[]);
                warp.misc(s.loopb, 1);
                warp.bar_sync(s.bar);
            }
        }
        // Epilogue: store the tile.
        for w in 0..CTA_WARPS {
            let mut warp = cta.warp(w);
            let epl = (128 / T::BITS as usize).min(4);
            for r in 0..rows_per_warp {
                if m0 + w * rows_per_warp + r >= self.a.rows() {
                    break;
                }
                let offs = lanes(|l| {
                    let c = l * epl;
                    if c < tile_n && n0 + c < n {
                        Some((m0 + w * rows_per_warp + r) * n + n0 + c)
                    } else {
                        None
                    }
                });
                let v = WVec::ghost(epl, acc_toks[w]);
                warp.stg(s.stg, self.out_buf, &offs, &v, &[]);
            }
        }
    }
}

/// Convenience: functional dense GEMM through the kernel.
pub fn dense_gemm<T: Scalar>(
    gpu: &GpuConfig,
    a: &DenseMatrix<T>,
    b: &DenseMatrix<T>,
) -> DenseMatrix<T> {
    let mut mem = MemPool::new();
    let kernel = DenseGemm::new(&mut mem, a, b, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Convenience: profile the dense GEMM kernel.
pub fn profile_dense_gemm<T: Scalar>(
    gpu: &GpuConfig,
    a: &DenseMatrix<T>,
    b: &DenseMatrix<T>,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = DenseGemm::new(&mut mem, a, b, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("performance launch returns a profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};
    use vecsparse_fp16::f16;

    #[test]
    fn functional_matches_reference_f32() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f32>(96, 48, Layout::RowMajor, 1);
        let b = gen::random_dense::<f32>(48, 80, Layout::RowMajor, 2);
        let got = dense_gemm(&gpu, &a, &b);
        let want = reference::gemm(&a, &b);
        assert!(
            got.max_abs_diff(&want) < 1e-4,
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn functional_matches_reference_f16() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 3);
        let b = gen::random_dense::<f16>(64, 64, Layout::RowMajor, 4);
        let got = dense_gemm(&gpu, &a, &b);
        let want = reference::gemm(&a, &b);
        assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn profile_has_tcu_traffic_for_half() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 5);
        let b = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 6);
        let p = profile_dense_gemm(&gpu, &a, &b);
        assert!(p.instrs.hmma > 0);
        assert_eq!(p.instrs.ffma, 0);
        assert!(p.cycles > 0.0);
    }

    #[test]
    fn profile_uses_fpu_for_single() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f32>(256, 256, Layout::RowMajor, 5);
        let b = gen::random_dense::<f32>(256, 256, Layout::RowMajor, 6);
        let p = profile_dense_gemm(&gpu, &a, &b);
        assert_eq!(p.instrs.hmma, 0);
        assert!(p.instrs.ffma > 0);
    }

    #[test]
    fn half_is_faster_than_single() {
        // The heart of §3: HGEMM beats SGEMM via the TCU.
        let gpu = GpuConfig::small();
        let ah = gen::random_dense::<f16>(512, 512, Layout::RowMajor, 7);
        let bh = gen::random_dense::<f16>(512, 512, Layout::RowMajor, 8);
        let ph = profile_dense_gemm(&gpu, &ah, &bh);
        let as_ = gen::random_dense::<f32>(512, 512, Layout::RowMajor, 7);
        let bs = gen::random_dense::<f32>(512, 512, Layout::RowMajor, 8);
        let ps = profile_dense_gemm(&gpu, &as_, &bs);
        assert!(
            ph.cycles * 2.0 < ps.cycles,
            "hgemm {} vs sgemm {}",
            ph.cycles,
            ps.cycles
        );
    }
}
