//! FPU-based 1-D Subwarp Tiling SpMM — the Sputnik-derived baseline of
//! §5.1, extended to the column-vector sparse encoding.
//!
//! Each CTA holds one subwarp of 8 threads handling a `(V×TileK)·(TileK×64)`
//! 1-D tile (`#Subwarp = 1` is the tuning the paper found best: it
//! maximises grid size at the cost of shorter vector loads). The subwarp
//! stages the LHS vectors through shared memory, then per nonzero vector
//! loads a 64-wide row fragment of `B` (8 consecutive halves per thread —
//! a 128-byte transaction across the 8 active lanes) and accumulates
//! `V × 8` products per thread with HMUL/FADD sequences (half) or FFMA
//! (single).
//!
//! Its pathologies are the paper's §5.1 analysis: the fully-unrolled
//! V × TileK × TileN loop nest produces a several-thousand-line program
//! that thrashes the L0 instruction cache ("No Instruction"), the
//! per-vector integer address arithmetic stalls on fixed-latency
//! dependencies ("Wait"), and the FPU math pipe bounds throughput.

use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use crate::util::{download_dense, lanes, upload_dense, upload_vs, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, Scalar, VectorSparse};
use vecsparse_fp16::{f16, hmul_fadd};
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig,
    MemPool, Mode, NativeCtx, Program, Site, Tok,
};

/// The kernel's named default point in the tiling space.
const SCHEME: TilingScheme = scheme_for(KernelId::SpmmFpuSubwarp);
/// Active threads per subwarp.
const SUBWARP: usize = SCHEME.sub_warp;
/// Output tile width.
const TILE_N: usize = SCHEME.tile_n;
/// Nonzero vectors per shared-memory stride.
const TILE_K: usize = SCHEME.tile_k;
/// Output columns per thread.
const COLS_PER_THREAD: usize = TILE_N / SUBWARP;

/// The FPU subwarp-tiling SpMM kernel, generic over precision.
pub struct FpuSubwarpSpmm<'m, T: Scalar> {
    a: &'m VectorSparse<T>,
    b: &'m DenseMatrix<T>,
    bufs: VsBuffers,
    b_buf: BufferId,
    out_buf: BufferId,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_rowptr: Site,
    ld_colidx: Site,
    ld_avals: Site,
    sts_avals: Site,
    /// Per unrolled vector: shared LHS load, B row load, math, addressing.
    lds_a: Vec<Site>,
    ldg_b: Vec<Site>,
    math: Vec<Site>,
    addr: Vec<Site>,
    stg: Site,
}

impl<'m, T: Scalar> FpuSubwarpSpmm<'m, T> {
    /// Stage inputs and build the static program.
    ///
    /// # Panics
    /// Panics on shape mismatch or unsupported V.
    pub fn new(
        mem: &mut MemPool,
        a: &'m VectorSparse<T>,
        b: &'m DenseMatrix<T>,
        mode: Mode,
    ) -> Self {
        let bufs = upload_vs(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<T>(), a.rows() * b.cols()),
            Mode::Performance => mem.alloc_ghost(width_of::<T>(), a.rows() * b.cols()),
        };
        Self::from_staged(a, b, bufs, b_buf, out_buf)
    }

    /// Build the kernel over operands already staged in a pool (the
    /// engine's plan path).
    ///
    /// # Panics
    /// Panics on shape mismatch or unsupported V.
    pub fn from_staged(
        a: &'m VectorSparse<T>,
        b: &'m DenseMatrix<T>,
        bufs: VsBuffers,
        b_buf: BufferId,
        out_buf: BufferId,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
        assert_eq!(b.layout(), Layout::RowMajor);
        assert!(matches!(a.v(), 1 | 2 | 4 | 8));

        let v = a.v();
        let mut p = Program::new();
        let ld_rowptr = p.site("ld_rowptr", 0);
        let ld_colidx = p.site("ld_colidx", 0);
        let ld_avals = p.site("ld_avals", 0);
        let sts_avals = p.site("sts_avals", 0);
        let mut lds_a = Vec::new();
        let mut ldg_b = Vec::new();
        let mut math = Vec::new();
        let mut addr = Vec::new();
        // The inner loops over V, TileK and the per-thread columns are
        // fully unrolled (the compiler must know register indices at
        // compile time, §5.1), so every vector iteration owns static
        // instruction slots.
        let math_per_vec = v * COLS_PER_THREAD / 2; // paired half2/FFMA
        let addr_per_vec = v * 2;
        for j in 0..TILE_K as u32 {
            lds_a.push(p.site("lds_a", j));
            ldg_b.push(p.site("ldg_b", j));
            for m in 0..math_per_vec as u32 {
                math.push(p.site("math", j * 64 + m));
            }
            for i in 0..addr_per_vec as u32 {
                addr.push(p.site("addr", j * 64 + i));
            }
        }
        let stg = p.site("stg", 0);
        // The residue loop is a second unrolled copy of the body.
        let static_len = p.static_len() * 2 + 40;

        FpuSubwarpSpmm {
            a,
            b,
            bufs,
            b_buf,
            out_buf,
            sites: Sites {
                ld_rowptr,
                ld_colidx,
                ld_avals,
                sts_avals,
                lds_a,
                ldg_b,
                math,
                addr,
                stg,
            },
            prog: p,
            static_len,
        }
    }

    /// Output buffer id.
    pub fn output(&self) -> BufferId {
        self.out_buf
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> DenseMatrix<T> {
        download_dense(mem, self.out_buf, self.a.rows(), self.b.cols())
    }

    fn n_chunks(&self) -> usize {
        self.b.cols().div_ceil(TILE_N)
    }
}

impl<T: Scalar> KernelSpec for FpuSubwarpSpmm<'_, T> {
    fn name(&self) -> String {
        format!("spmm-fpu-subwarp(V={},{})", self.a.v(), T::NAME)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.a.pattern().block_rows() * self.n_chunks(),
            warps_per_cta: 1,
            // V × 8 f32 accumulators per thread plus operands.
            regs_per_thread: (self.a.v() as u32 * COLS_PER_THREAD as u32) + 32,
            smem_elems: TILE_K * self.a.v(),
            smem_elem_bytes: T::bytes() as u64,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::block_row_shard_layout(
            self.out_buf,
            self.a.pattern().block_rows(),
            self.a.v(),
            self.a.rows(),
            self.b.cols(),
            self.n_chunks(),
        )
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let v = self.a.v();
        let p = self.a.pattern();
        let n = self.b.cols();
        let k = self.b.rows();
        let chunks = self.n_chunks();
        let br = cta.cta_id / chunks;
        let n0 = (cta.cta_id % chunks) * TILE_N;
        let range = p.block_row_range(br);
        let functional = cta.mode == Mode::Functional;
        let shadow = functional && cta.shadow_exec;
        let s = &self.sites;
        let half = T::BITS == 16;
        // Vector width of a B-row fragment load per thread: 8 halves is
        // one LDG.128; 8 floats needs two LDG.128.
        let b_loads = if half { 1 } else { 2 };
        let epl_b = if half { 8 } else { 4 };

        // Functional accumulator for the V×64 tile (f32, rounded at store)
        // plus its fp64 shadow twin (empty when shadow execution is off).
        let mut acc = vec![0.0f32; v * TILE_N];
        let mut acc64 = vec![0.0f64; if shadow { v * TILE_N } else { 0 }];

        let mut w = cta.warp(0);
        let rp = lanes(|l| if l < 2 { Some(br + l) } else { None });
        let rp_tok = w.ldg(s.ld_rowptr, self.bufs.row_ptr, &rp, 1, &[]).tok();
        let mut addr_tok = w.int_ops(s.addr[0], 2, &[rp_tok]);
        // Last accumulator token; the epilogue store depends on it.
        let mut math_tok = Tok::NONE;

        let mut i = range.start;
        while i < range.end {
            let stride = (range.end - i).min(TILE_K);
            // Stage indices and LHS vectors (8 active lanes share the
            // work: shorter vector loads than the octet kernel's).
            let ci = lanes(|l| {
                if l < SUBWARP {
                    let idx = i + l * stride.div_ceil(SUBWARP);
                    if idx < range.end {
                        Some(idx)
                    } else {
                        None
                    }
                } else {
                    None
                }
            });
            let ci_tok = w
                .ldg(
                    s.ld_colidx,
                    self.bufs.col_idx,
                    &ci,
                    stride.div_ceil(SUBWARP).min(4),
                    &[],
                )
                .tok();
            let per_lane_vals = (stride * v).div_ceil(SUBWARP);
            let epl_a = per_lane_vals
                .min(128 / T::BITS as usize)
                .min(stride * v)
                .max(1);
            let av = lanes(|l| {
                if l < SUBWARP && l * per_lane_vals < stride * v {
                    // Clamp the tail lane so the vector load stays inside
                    // this stride's values.
                    Some(i * v + (l * per_lane_vals).min(stride * v - epl_a))
                } else {
                    None
                }
            });
            let avals = w.ldg(s.ld_avals, self.bufs.values, &av, epl_a, &[ci_tok]);
            let sts_off = lanes(|l| if l < SUBWARP { Some(l * epl_a) } else { None });
            w.sts(s.sts_avals, &sts_off, &avals, &[]);

            for j in 0..stride {
                let vec_idx = i + j;
                let col = p.col_idx()[vec_idx] as usize;
                debug_assert!(col < k);
                // Broadcast the vector's V values from shared memory.
                let lds_off = lanes(|l| if l < SUBWARP { Some(j * v) } else { None });
                let a_frag = w.lds(s.lds_a[j % TILE_K], &lds_off, v, &[]);
                let _ = &a_frag;
                // Address arithmetic for this vector's B row (unrolled:
                // distinct static instructions per vector iteration).
                addr_tok = w.int_ops_unrolled(
                    s.addr[(j % TILE_K) * (v * 2).max(1) % s.addr.len()],
                    (v * 2) as u32,
                    &[ci_tok, addr_tok],
                );
                // B row fragment: 8 lanes × 8 elements.
                let mut b_tok = Tok::NONE;
                for bl in 0..b_loads {
                    let offs = lanes(|l| {
                        if l < SUBWARP {
                            let c = n0 + l * COLS_PER_THREAD + bl * epl_b;
                            if c < n {
                                Some(col * n + c)
                            } else {
                                None
                            }
                        } else {
                            None
                        }
                    });
                    b_tok = w
                        .ldg(s.ldg_b[j % TILE_K], self.b_buf, &offs, epl_b, &[addr_tok])
                        .tok();
                }
                // Math: V × 8 MACs per thread, issued as paired
                // HMUL2/FADD (half) or FFMA (single); the accumulator
                // chains across vectors.
                let math_per_vec = (v * COLS_PER_THREAD / 2).max(1) as u32;
                let kind = if half {
                    InstrKind::Hfma2
                } else {
                    InstrKind::Ffma
                };
                let base_site =
                    s.math[(j % TILE_K) * (v * COLS_PER_THREAD / 2).max(1) % s.math.len()];
                // Two unrolled halves filling exactly the math_per_vec
                // slots this vector group reserved.
                let n1 = math_per_vec.div_ceil(2);
                let t1 = w.math_unrolled(base_site, kind, n1, &[b_tok, math_tok]);
                let t2 = w.math_unrolled(
                    Site(base_site.0 + n1),
                    InstrKind::Ffma,
                    math_per_vec / 2,
                    &[t1, math_tok],
                );
                math_tok = if t2 == Tok::NONE { t1 } else { t2 };

                if functional {
                    for e in 0..v {
                        let a_val = T::from_f32(w.mem().read(self.bufs.values, vec_idx * v + e));
                        for c in 0..TILE_N.min(n - n0) {
                            let b_val = T::from_f32(w.mem().read(self.b_buf, col * n + n0 + c));
                            acc[e * TILE_N + c] = if half {
                                hmul_fadd(
                                    f16::from_f32(a_val.to_f32()),
                                    f16::from_f32(b_val.to_f32()),
                                    acc[e * TILE_N + c],
                                )
                            } else {
                                acc[e * TILE_N + c] + a_val.to_f32() * b_val.to_f32()
                            };
                            if shadow {
                                acc64[e * TILE_N + c] +=
                                    f64::from(a_val.to_f32()) * f64::from(b_val.to_f32());
                            }
                        }
                    }
                }
            }
            i += stride;
        }

        // Store the V×64 tile row-safely (residue chunks never cross the
        // row end).
        let row_base = br * v;
        let tn = TILE_N.min(n - n0);
        for r in 0..v {
            if row_base + r >= self.a.rows() {
                break;
            }
            if functional {
                let vals: Vec<f32> = (0..tn)
                    .map(|c| T::from_f32(acc[r * TILE_N + c]).to_f32())
                    .collect();
                let shadows: Vec<f64> = if shadow {
                    (0..tn).map(|c| acc64[r * TILE_N + c]).collect()
                } else {
                    Vec::new()
                };
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &vals,
                    &shadows,
                    epl_b,
                    Tok::NONE,
                );
            } else {
                crate::util::store_row_segment(
                    &mut w,
                    s.stg,
                    self.out_buf,
                    row_base + r,
                    n,
                    n0,
                    tn,
                    &[],
                    &[],
                    epl_b,
                    math_tok,
                );
            }
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // The FPU chain accumulates per element in ascending-j order
        // across strides. Half precision rounds each product to binary16
        // before the f32 add (the paper's §4 HMUL/FADD pairing); single
        // precision is a plain FFMA chain.
        let v = self.a.v();
        let p = self.a.pattern();
        let n = self.b.cols();
        let rows = self.a.rows();
        let half = T::BITS == 16;
        let col_idx = p.col_idx();
        let values = ctx.contents(self.bufs.values);
        let b = ctx.contents(self.b_buf);
        let mut writes = Vec::with_capacity(rows * n);
        for br in 0..p.block_rows() {
            let range = p.block_row_range(br);
            for r in 0..v {
                let row = br * v + r;
                if row >= rows {
                    break;
                }
                for c in 0..n {
                    let mut acc = 0.0f32;
                    for j in range.clone() {
                        let a_val = T::from_f32(values[j * v + r]);
                        let b_val = T::from_f32(b[col_idx[j] as usize * n + c]);
                        acc = if half {
                            hmul_fadd(
                                f16::from_f32(a_val.to_f32()),
                                f16::from_f32(b_val.to_f32()),
                                acc,
                            )
                        } else {
                            acc + a_val.to_f32() * b_val.to_f32()
                        };
                    }
                    writes.push(((row * n + c) as u32, T::from_f32(acc).to_f32()));
                }
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional FPU subwarp SpMM.
pub fn spmm_fpu<T: Scalar>(
    gpu: &GpuConfig,
    a: &VectorSparse<T>,
    b: &DenseMatrix<T>,
) -> DenseMatrix<T> {
    let mut mem = MemPool::new();
    let kernel = FpuSubwarpSpmm::new(&mut mem, a, b, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the FPU subwarp SpMM kernel.
pub fn profile_spmm_fpu<T: Scalar>(
    gpu: &GpuConfig,
    a: &VectorSparse<T>,
    b: &DenseMatrix<T>,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = FpuSubwarpSpmm::new(&mut mem, a, b, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    fn check_f16(m: usize, k: usize, n: usize, v: usize, sparsity: f64, seed: u64) {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(m, k, v, sparsity, seed);
        let b = gen::random_dense::<f16>(k, n, Layout::RowMajor, seed + 1);
        let got = spmm_fpu(&gpu, &a, &b);
        let want = reference::spmm_vs(&a, &b);
        assert_eq!(got.max_abs_diff(&want), 0.0, "V={v}");
    }

    #[test]
    fn matches_reference_all_v_half() {
        for (i, v) in [1usize, 2, 4, 8].into_iter().enumerate() {
            check_f16(16, 64, 64, v, 0.5, 10 + i as u64);
        }
    }

    #[test]
    fn matches_reference_single() {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f32>(16, 64, 4, 0.6, 20);
        let b = gen::random_dense::<f32>(64, 128, Layout::RowMajor, 21);
        let got = spmm_fpu(&gpu, &a, &b);
        let want = reference::spmm_vs(&a, &b);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn residue_path() {
        check_f16(8, 256, 64, 4, 1.0 - 35.0 / 256.0, 30);
    }

    #[test]
    fn program_is_bloated_and_fpu_bound() {
        // The §5.1 analysis: huge static program, no TCU usage.
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(256, 256, 4, 0.9, 40);
        let b = gen::random_dense::<f16>(256, 64, Layout::RowMajor, 41);
        let p = profile_spmm_fpu(&gpu, &a, &b);
        assert!(p.static_instrs > 768, "static {}", p.static_instrs);
        assert_eq!(p.instrs.hmma, 0);
        assert!(p.instrs.hfma2 > 0);
        assert!(p.stalls.pct_no_instruction() > 1.0);
    }

    #[test]
    fn grid_matches_table2() {
        let gpu = GpuConfig::small();
        let a = gen::random_vector_sparse::<f16>(2048, 256, 4, 0.9, 50);
        let b = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 51);
        let p = profile_spmm_fpu(&gpu, &a, &b);
        assert_eq!(p.grid, 2048); // 512 block rows × 4 column chunks.
    }
}
