//! SpMM kernels: `C = A_sparse · B` with `B`, `C` row-major.

mod blocked_ell;
mod csr_scalar;
mod dense;
mod fpu_subwarp;
mod octet;
mod wmma;

pub use blocked_ell::{profile_spmm_blocked_ell, spmm_blocked_ell, BlockedEllSpmm};
pub use csr_scalar::{profile_spmm_csr, spmm_csr, CsrScalarSpmm};
pub use dense::{dense_gemm, profile_dense_gemm, DenseGemm};
pub use fpu_subwarp::{profile_spmm_fpu, spmm_fpu, FpuSubwarpSpmm};
pub use octet::{profile_spmm_octet, spmm_octet, OctetSpmm};
pub use wmma::{profile_spmm_wmma, spmm_wmma, WmmaSpmm};
