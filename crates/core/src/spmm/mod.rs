//! SpMM kernels: `C = A_sparse · B` with `B`, `C` row-major.

mod blocked_ell;
pub mod compose;
mod csr_scalar;
mod dense;
mod fpu_subwarp;
mod octet;
mod wmma;

pub use blocked_ell::{profile_spmm_blocked_ell, spmm_blocked_ell, BlockedEllSpmm};
pub use csr_scalar::{profile_spmm_csr, spmm_csr, CsrScalarSpmm};
pub use dense::{dense_gemm, profile_dense_gemm, DenseGemm};
pub use fpu_subwarp::{profile_spmm_fpu, spmm_fpu, FpuSubwarpSpmm};
pub use octet::{profile_spmm_octet, profile_spmm_octet_scheme, spmm_octet, OctetSpmm};
pub use wmma::{profile_spmm_wmma, spmm_wmma, WmmaSpmm};

/// Native lowering shared by the block-row f16 SpMM family (octet and
/// wmma): per output element, a flat ascending-`j` f32 reduction over the
/// block row's nonzero vectors, rounded to binary16 once at store.
///
/// This is bit-identical to both simulated kernels' functional paths: the
/// mma pipelines accumulate the strides' products in ascending step order
/// (4 ascending k-values per HMMA) into one persistent f32 accumulator,
/// and padding / zero-skip differences only move exact `±0.0` terms,
/// which never change an accumulator that starts at `+0.0`.
pub(crate) fn native_block_row_spmm(
    ctx: &mut vecsparse_gpu_sim::NativeCtx<'_>,
    pattern: &vecsparse_formats::SparsityPattern,
    rows: usize,
    n: usize,
    values: vecsparse_gpu_sim::BufferId,
    b_buf: vecsparse_gpu_sim::BufferId,
    out: vecsparse_gpu_sim::BufferId,
) {
    let v_len = pattern.v();
    let col_idx = pattern.col_idx();
    let vals = ctx.contents(values);
    let b = ctx.contents(b_buf);
    let mut writes = Vec::with_capacity(rows * n);
    for br in 0..pattern.block_rows() {
        let range = pattern.block_row_range(br);
        for r in 0..v_len {
            let row = br * v_len + r;
            if row >= rows {
                break;
            }
            for c in 0..n {
                let mut acc = 0.0f32;
                for j in range.clone() {
                    acc += vals[j * v_len + r] * b[col_idx[j] as usize * n + c];
                }
                writes.push((
                    (row * n + c) as u32,
                    vecsparse_fp16::f16::from_f32(acc).to_f32(),
                ));
            }
        }
    }
    ctx.apply(out, &writes);
}

/// Shard layout for the block-row SpMM family: `block_rows` row blocks
/// of `rows_per_block` scalar rows each (the last possibly ragged at
/// `m`), a dense row-major `m × n` output, and `chunks` CTAs per block
/// row (CTA `c` covers block row `c / chunks`).
pub(crate) fn block_row_shard_layout(
    out: vecsparse_gpu_sim::BufferId,
    block_rows: usize,
    rows_per_block: usize,
    m: usize,
    n: usize,
    chunks: usize,
) -> Option<vecsparse_gpu_sim::ShardLayout> {
    if block_rows == 0 || chunks == 0 {
        return None;
    }
    Some(vecsparse_gpu_sim::ShardLayout {
        out,
        rows: block_rows,
        row_starts: (0..=block_rows)
            .map(|r| ((r * rows_per_block).min(m) * n) as u32)
            .collect(),
        cta_rows: (0..block_rows * chunks)
            .map(|c| ((c / chunks) as u32, (c / chunks) as u32 + 1))
            .collect(),
    })
}
