//! SpMM kernels: `C = A_sparse · B` with `B`, `C` row-major.

mod blocked_ell;
mod csr_scalar;
mod dense;
mod fpu_subwarp;
mod octet;
mod wmma;

pub use blocked_ell::{profile_spmm_blocked_ell, spmm_blocked_ell, BlockedEllSpmm};
pub use csr_scalar::{profile_spmm_csr, spmm_csr, CsrScalarSpmm};
pub use dense::{dense_gemm, profile_dense_gemm, DenseGemm};
pub use fpu_subwarp::{profile_spmm_fpu, spmm_fpu, FpuSubwarpSpmm};
pub use octet::{profile_spmm_octet, spmm_octet, OctetSpmm};
pub use wmma::{profile_spmm_wmma, spmm_wmma, WmmaSpmm};

/// Shard layout for the block-row SpMM family: `block_rows` row blocks
/// of `rows_per_block` scalar rows each (the last possibly ragged at
/// `m`), a dense row-major `m × n` output, and `chunks` CTAs per block
/// row (CTA `c` covers block row `c / chunks`).
pub(crate) fn block_row_shard_layout(
    out: vecsparse_gpu_sim::BufferId,
    block_rows: usize,
    rows_per_block: usize,
    m: usize,
    n: usize,
    chunks: usize,
) -> Option<vecsparse_gpu_sim::ShardLayout> {
    if block_rows == 0 || chunks == 0 {
        return None;
    }
    Some(vecsparse_gpu_sim::ShardLayout {
        out,
        rows: block_rows,
        row_starts: (0..=block_rows)
            .map(|r| ((r * rows_per_block).min(m) * n) as u32)
            .collect(),
        cta_rows: (0..block_rows * chunks)
            .map(|c| ((c / chunks) as u32, (c / chunks) as u32 + 1))
            .collect(),
    })
}
