//! TCU-based 1-D Warp Tiling SDDMM — the classic-mapping baseline of §6.2.
//!
//! Same warp tile as the octet kernel (`(V×64)·(64×TILE_N)`), but mapped
//! to the TCU through `wmma.m8n32k16` with the stock fragment layout.
//! Consequences the paper measures: fragments must be coalesced through
//! **shared memory** (direct loads would be 16-byte coalesced), the LHS
//! fragment is replicated four times across thread groups (extra
//! registers), `TILE_N` is quantised to 32 (residue tiles compute
//! padding), and a `(V×16)·(16×32)` product is executed even when V < 8
//! (wasted HMMA work). Its stall signature is shared-memory pressure
//! ("Short Scoreboard", Table 3).

use super::vector_tiles;
use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use crate::util::{lanes, upload_dense, upload_pattern, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, KernelProfile, KernelSpec, Launch, LaunchConfig, MemPool,
    MmaFlavor, Mode, NativeCtx, Program, Site, Tok, WVec,
};

/// The kernel's named default point in the tiling space.
const SCHEME: TilingScheme = scheme_for(KernelId::SddmmWmma);
/// Output vectors per tile (quantised: partial tiles pay for all 32).
const TILE_N: usize = SCHEME.tile_n;
/// K-stride per step.
const TILE_K: usize = SCHEME.tile_k;

/// The wmma (classic TCU mapping) SDDMM baseline.
pub struct WmmaSddmm<'m> {
    a: &'m DenseMatrix<f16>,
    b: &'m DenseMatrix<f16>,
    mask: &'m SparsityPattern,
    a_buf: BufferId,
    b_buf: BufferId,
    idx: VsBuffers,
    out_buf: BufferId,
    tiles: Vec<(usize, usize, usize)>,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_idx: Site,
    ldg_a: Site,
    sts_a: Site,
    lds_a: [Site; 4],
    ldg_b: [Site; 4],
    sts_b: [Site; 4],
    lds_b: [Site; 4],
    wmma: [Site; 4],
    addr: Site,
    stg: Site,
}

impl<'m> WmmaSddmm<'m> {
    /// Stage inputs.
    ///
    /// # Panics
    /// Panics on shape/layout mismatch.
    pub fn new(
        mem: &mut MemPool,
        a: &'m DenseMatrix<f16>,
        b: &'m DenseMatrix<f16>,
        mask: &'m SparsityPattern,
        mode: Mode,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SDDMM inner dimension mismatch");
        assert_eq!(a.rows(), mask.rows());
        assert_eq!(b.cols(), mask.cols());
        assert_eq!(a.layout(), Layout::RowMajor);
        assert_eq!(b.layout(), Layout::ColMajor);
        let a_buf = upload_dense(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let idx = upload_pattern(mem, mask, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f16>(), mask.nnz()),
            Mode::Performance => mem.alloc_ghost(width_of::<f16>(), mask.nnz()),
        };
        let tiles = vector_tiles(mask, TILE_N);

        let mut p = Program::new();
        let sites = Sites {
            ld_idx: p.site("ld_idx", 0),
            ldg_a: p.site("ldg_a", 0),
            sts_a: p.site("sts_a", 0),
            lds_a: [
                p.site("lds_a", 0),
                p.site("lds_a", 1),
                p.site("lds_a", 2),
                p.site("lds_a", 3),
            ],
            ldg_b: [
                p.site("ldg_b", 0),
                p.site("ldg_b", 1),
                p.site("ldg_b", 2),
                p.site("ldg_b", 3),
            ],
            sts_b: [
                p.site("sts_b", 0),
                p.site("sts_b", 1),
                p.site("sts_b", 2),
                p.site("sts_b", 3),
            ],
            lds_b: [
                p.site("lds_b", 0),
                p.site("lds_b", 1),
                p.site("lds_b", 2),
                p.site("lds_b", 3),
            ],
            wmma: [
                p.site_span("wmma", 0, 16),
                p.site_span("wmma", 16, 16),
                p.site_span("wmma", 32, 16),
                p.site_span("wmma", 48, 16),
            ],
            addr: p.site("addr", 0),
            stg: p.site("stg", 0),
        };
        // The wmma spans reserve their 16 HMMA slots each; the tail pad
        // models the predication/residue copies.
        let static_len = p.static_len() + 60;

        WmmaSddmm {
            a,
            b,
            mask,
            a_buf,
            b_buf,
            idx,
            out_buf,
            tiles,
            sites,
            prog: p,
            static_len,
        }
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> VectorSparse<f16> {
        crate::util::download_vs(mem, self.out_buf, self.mask)
    }
}

impl KernelSpec for WmmaSddmm<'_> {
    fn name(&self) -> String {
        format!("sddmm-wmma(V={})", self.mask.v())
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.tiles.len().max(1),
            warps_per_cta: 1,
            // The LHS fragment is replicated 4×: extra registers.
            regs_per_thread: 88,
            // Staged A (V×64) and B (64×32) slabs.
            smem_elems: self.mask.v() * TILE_K + TILE_K * TILE_N,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::tile_shard_layout(self.out_buf, self.mask, &self.tiles)
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let (br, start, len) = self.tiles[cta.cta_id];
        let v_len = self.mask.v();
        let k_total = self.a.cols();
        debug_assert_eq!(k_total, self.b.rows());
        let functional = cta.mode == Mode::Functional;
        let s = &self.sites;
        let row_base = br * v_len;

        let mut w = cta.warp(0);
        if len == 0 {
            return;
        }
        let ci = lanes(|l| if l < len { Some(start + l) } else { None });
        let ci_tok = w.ldg(s.ld_idx, self.idx.col_idx, &ci, 1, &[]).tok();
        w.int_ops(s.addr, 4, &[ci_tok]);

        let cols: Vec<usize> = (0..len)
            .map(|j| self.mask.col_idx()[start + j] as usize)
            .collect();
        let mut acc = vec![0.0f32; TILE_N * v_len];
        let mut acc_tok = Tok::NONE;

        for k0 in (0..k_total).step_by(TILE_K) {
            let ks = TILE_K.min(k_total - k0);
            // A slab through shared memory (coalescing the 16B-coalesced
            // direct pattern).
            let a_offs = lanes(|l| {
                let flat = l * 8;
                let r = flat / TILE_K;
                let k = flat % TILE_K;
                if r < v_len && k < ks {
                    Some((row_base + r) * k_total + k0 + k)
                } else {
                    None
                }
            });
            let av = w.ldg(s.ldg_a, self.a_buf, &a_offs, 8, &[]);
            let a_smem = lanes(|l| Some((l * 8) % (v_len * TILE_K)));
            w.sts(s.sts_a, &a_smem, &av, &[]);
            // The fragment is read back once per wmma (4 copies).
            let mut a_frag_tok = Tok::NONE;
            for &site in &s.lds_a {
                a_frag_tok = w
                    .lds(
                        site,
                        &lanes(|l| Some(l * 4 % (v_len * TILE_K).max(1))),
                        4,
                        &[],
                    )
                    .tok();
            }
            // B slab: 32 gathered columns × 64 k through shared memory.
            let mut b_frag_tok = Tok::NONE;
            for part in 0..4usize {
                let offs = lanes(|l| {
                    let flat = part * 256 + l * 8;
                    let c = flat / TILE_K;
                    let k = flat % TILE_K;
                    if c < len && k < ks {
                        Some(cols[c] * k_total + k0 + k)
                    } else if c < TILE_N && k < ks && !cols.is_empty() {
                        // Residue quantisation: padding columns still
                        // load (the kernel computes a full 32-wide tile).
                        Some(cols[c % cols.len()] * k_total + k0 + k)
                    } else {
                        None
                    }
                });
                let v = w.ldg(s.ldg_b[part], self.b_buf, &offs, 8, &[ci_tok]);
                let b_smem = lanes(|l| {
                    Some((v_len * TILE_K + part * 256 + l * 8) % (v_len * TILE_K + TILE_K * TILE_N))
                });
                w.sts(s.sts_b[part], &b_smem, &v, &[]);
                b_frag_tok = w
                    .lds(
                        s.lds_b[part],
                        &lanes(|l| Some(l * 8 % (TILE_K * TILE_N))),
                        8,
                        &[],
                    )
                    .tok();
            }

            // Four wmma.m8n32k16 = 64 HMMA per K-stride, always full-width.
            for &site in &s.wmma {
                let a_frag = WVec::ghost(4, a_frag_tok);
                let b_frag = WVec::ghost(4, b_frag_tok);
                for _ in 0..4 {
                    let mut frag = WVec::ghost(8, acc_tok);
                    acc_tok = w.mma_m8n8k4(site, &a_frag, &b_frag, &mut frag, MmaFlavor::Standard);
                }
            }

            if functional {
                for (c, &col) in cols.iter().enumerate() {
                    for r in 0..v_len {
                        let mut sum = 0.0f32;
                        for k in 0..ks {
                            sum += w.mem().read(self.a_buf, (row_base + r) * k_total + k0 + k)
                                * w.mem().read(self.b_buf, col * k_total + k0 + k);
                        }
                        acc[c * v_len + r] += sum;
                    }
                }
            }
        }

        // Store len × V values.
        let total = len * v_len;
        let epl = v_len.min(8);
        let per_store = 32 * epl;
        for st in 0..total.div_ceil(per_store) {
            let offs = lanes(|l| {
                let flat = st * per_store + l * epl;
                if flat < total {
                    Some(start * v_len + flat)
                } else {
                    None
                }
            });
            let mut vals = WVec::zeros(epl);
            if functional {
                for l in 0..32 {
                    for e in 0..epl {
                        let flat = st * per_store + l * epl + e;
                        if flat < total {
                            vals.set(l, e, f16::from_f32(acc[flat]).to_f32());
                        }
                    }
                }
            } else {
                vals = WVec::ghost(epl, acc_tok);
            }
            w.stg(s.stg, self.out_buf, &offs, &vals, &[acc_tok]);
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // The wmma pipeline reduces each K-stride into a fresh fragment
        // (flat ascending k within the chunk) and adds the chunk sums to
        // the persistent accumulator in ascending-`k0` order; one f16
        // round at store.
        let v_len = self.mask.v();
        let k_total = self.a.cols();
        let a = ctx.contents(self.a_buf);
        let b = ctx.contents(self.b_buf);
        let col_idx = self.mask.col_idx();
        let mut writes = Vec::with_capacity(self.mask.nnz());
        for br in 0..self.mask.block_rows() {
            let row_base = br * v_len;
            for j in self.mask.block_row_range(br) {
                let col = col_idx[j] as usize;
                for r in 0..v_len {
                    let mut acc = 0.0f32;
                    for k0 in (0..k_total).step_by(TILE_K) {
                        let ks = TILE_K.min(k_total - k0);
                        let mut sum = 0.0f32;
                        for k in 0..ks {
                            sum += a[(row_base + r) * k_total + k0 + k] * b[col * k_total + k0 + k];
                        }
                        acc += sum;
                    }
                    writes.push(((j * v_len + r) as u32, f16::from_f32(acc).to_f32()));
                }
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional wmma SDDMM.
pub fn sddmm_wmma(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
) -> VectorSparse<f16> {
    let mut mem = MemPool::new();
    let kernel = WmmaSddmm::new(&mut mem, a, b, mask, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the wmma SDDMM kernel.
pub fn profile_sddmm_wmma(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = WmmaSddmm::new(&mut mem, a, b, mask, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    #[test]
    fn matches_reference() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(32, 64, Layout::RowMajor, 1);
        let b = gen::random_dense::<f16>(64, 96, Layout::ColMajor, 2);
        let mask = gen::random_pattern(32, 96, 4, 0.75, 3);
        let got = sddmm_wmma(&gpu, &a, &b, &mask);
        let want = reference::sddmm(&a, &b, &mask);
        for (g, wv) in got.values().iter().zip(want.values()) {
            assert_eq!(g, wv);
        }
    }

    #[test]
    fn shared_memory_pipe_is_busy() {
        // §6.2's pathology: heavy shared traffic ⇒ short-scoreboard stalls.
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 4);
        let b = gen::random_dense::<f16>(256, 512, Layout::ColMajor, 5);
        let mask = gen::random_pattern(256, 512, 8, 0.9, 6);
        let p = profile_sddmm_wmma(&gpu, &a, &b, &mask);
        assert!(p.instrs.lds > 0 && p.instrs.sts > 0);
        assert!(
            p.stalls.pct_short_scoreboard() > 1.0,
            "short scoreboard {}",
            p.stalls.pct_short_scoreboard()
        );
    }
}
