//! TCU-based 1-D Octet Tiling SDDMM — the paper's §6.3 contribution.
//!
//! Each CTA (one warp) computes up to `TILE_N = 32` nonzero output vectors
//! of one block row, walking K in strides of 64. The LHS/RHS roles are
//! switched (as in the SpMM kernel) so each sub-step computes an
//! `(8×64)·(64×V)` tile: eight gathered `B` columns against the block
//! row's `V` `A`-rows. Both fragments load straight to registers with
//! LDG.128 — each 64-element row/column splits into eight 8-half
//! sub-vectors across lanes, 128-byte coalesced (guidelines IV & V).
//!
//! The k dimension is spread across the four octets (16 each), so every
//! output has four octet-partial sums that are combined with warp
//! shuffles and FADDs when K is exhausted — the reduction the paper
//! measures at 29.5% of instructions for V = 8, K = 64.
//!
//! The "inverted pattern" of source operands between thread groups is
//! resolved three ways, matching the paper's variants:
//!
//! * [`OctetVariant::Reg`] — accumulate steps 2&3 into a second register
//!   set (more registers, lower occupancy);
//! * [`OctetVariant::Shfl`] — shuffle source operands before each mma
//!   (extra SHFL instructions);
//! * [`OctetVariant::Arch`] — the proposed `HMMA...SWITCH` instruction
//!   (Fig. 15): the TCU's operand multiplexers switch the thread-group
//!   sources, no extra registers or shuffles.

use super::vector_tiles;
use crate::util::{lanes, upload_dense, upload_pattern, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig,
    MemPool, MmaFlavor, Mode, Program, Site, Tok, WVec,
};

/// Nonzero output vectors per CTA tile.
const TILE_N: usize = 32;
/// K-stride per step.
const TILE_K: usize = 64;
/// Output vectors per sub-step.
const SUB_N: usize = 8;

/// How the inverted source-operand pattern is handled (§6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OctetVariant {
    /// Extra accumulator registers ("mma (reg)").
    Reg,
    /// Warp shuffles before each mma ("mma (shfl)").
    Shfl,
    /// The proposed SWITCH HMMA extension ("mma (arch)").
    Arch,
}

impl OctetVariant {
    fn label(self) -> &'static str {
        match self {
            OctetVariant::Reg => "reg",
            OctetVariant::Shfl => "shfl",
            OctetVariant::Arch => "arch",
        }
    }
}

/// Lane of thread `t` in group `g` of octet `o`.
#[inline]
fn octet_lane(o: usize, g: usize, t: usize) -> usize {
    g * 16 + 4 * o + t
}

/// The octet-tiling SDDMM kernel.
pub struct OctetSddmm<'m> {
    a: &'m DenseMatrix<f16>,
    b: &'m DenseMatrix<f16>,
    mask: &'m SparsityPattern,
    variant: OctetVariant,
    a_buf: BufferId,
    b_buf: BufferId,
    idx: VsBuffers,
    out_buf: BufferId,
    tiles: Vec<(usize, usize, usize)>,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_rowptr: Site,
    ld_colidx: Site,
    ldg_a: [Site; 2],
    ldg_b: [Site; 2],
    mma: [[Site; 4]; 4],
    shfl_sw: Site,
    red_shfl: Site,
    red_fadd: Site,
    addr: Site,
    stg: Site,
}

impl<'m> OctetSddmm<'m> {
    /// Stage inputs.
    ///
    /// # Panics
    /// Panics on shape/layout mismatch or unsupported V.
    pub fn new(
        mem: &mut MemPool,
        a: &'m DenseMatrix<f16>,
        b: &'m DenseMatrix<f16>,
        mask: &'m SparsityPattern,
        variant: OctetVariant,
        mode: Mode,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SDDMM inner dimension mismatch");
        assert_eq!(a.rows(), mask.rows(), "mask rows");
        assert_eq!(b.cols(), mask.cols(), "mask cols");
        assert_eq!(a.layout(), Layout::RowMajor, "A must be row-major");
        assert_eq!(b.layout(), Layout::ColMajor, "B must be column-major");
        assert!(matches!(mask.v(), 1 | 2 | 4 | 8));
        let a_buf = upload_dense(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let idx = upload_pattern(mem, mask, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f16>(), mask.nnz()),
            Mode::Performance => mem.alloc_ghost(width_of::<f16>(), mask.nnz()),
        };
        let tiles = vector_tiles(mask, TILE_N);

        let mut p = Program::new();
        let ld_rowptr = p.site("ld_rowptr", 0);
        let ld_colidx = p.site("ld_colidx", 0);
        let ldg_a = [p.site("ldg_a", 0), p.site("ldg_a", 1)];
        let ldg_b = [p.site("ldg_b", 0), p.site("ldg_b", 1)];
        let mut mma = [[Site(0); 4]; 4];
        for (sub, row) in mma.iter_mut().enumerate() {
            for (m, site) in row.iter_mut().enumerate() {
                // Each mma spans its 4 static HMMA slots.
                *site = p.site_span("mma", (sub * 16 + m * 4) as u32, 4);
            }
        }
        let shfl_sw = p.site("shfl_sw", 0);
        let red_shfl = p.site("red_shfl", 0);
        let red_fadd = p.site("red_fadd", 0);
        let addr = p.site("addr", 0);
        let stg = p.site("stg", 0);
        // Modest scalar prologue on top of the registered sites.
        let static_len = p.static_len() + 48;

        OctetSddmm {
            a,
            b,
            mask,
            variant,
            a_buf,
            b_buf,
            idx,
            out_buf,
            tiles,
            sites: Sites {
                ld_rowptr,
                ld_colidx,
                ldg_a,
                ldg_b,
                mma,
                shfl_sw,
                red_shfl,
                red_fadd,
                addr,
                stg,
            },
            prog: p,
            static_len,
        }
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> VectorSparse<f16> {
        crate::util::download_vs(mem, self.out_buf, self.mask)
    }

    fn flavor(&self) -> MmaFlavor {
        match self.variant {
            OctetVariant::Arch => MmaFlavor::Switch,
            _ => MmaFlavor::Standard,
        }
    }

    /// Build the mma Mat_a fragment (gathered B columns) for octet k-slice
    /// `m` of sub-step vectors `cols`: lane `(o, g, t)` holds output
    /// column `4g + t`'s four k-values of octet `o`'s slice.
    fn marshal_b_cols(
        &self,
        loaded: &[WVec; 2],
        cols: &[usize],
        k0: usize,
        m: usize,
        switch: bool,
        tok: Tok,
    ) -> WVec {
        if loaded[0].is_ghost() {
            return WVec::ghost(4, tok);
        }
        let mut a = WVec::zeros(4);
        for o in 0..4 {
            for g in 0..2 {
                for t in 0..4 {
                    let c = 4 * g + t;
                    if c >= cols.len() {
                        continue;
                    }
                    for kk in 0..4 {
                        let k = 16 * o + 4 * m + kk;
                        if k0 + k >= self.b.rows() {
                            continue;
                        }
                        // Flat position within the loaded (8 col × 64 k)
                        // fragment: col-major columns of 64.
                        let flat = c * TILE_K + k;
                        let (li, rest) = (flat / 256, flat % 256);
                        let v = loaded[li].get(rest / 8, rest % 8);
                        // For the SWITCH variant the groups' register
                        // contents are pre-swapped so the in-TCU mux
                        // restores them.
                        let lane = if switch {
                            octet_lane(o, 1 - g, t)
                        } else {
                            octet_lane(o, g, t)
                        };
                        a.set(lane, kk, v);
                    }
                }
            }
        }
        a.set_tok(tok);
        a
    }

    /// Build the mma Mat_b fragment (A rows): lane `(o, g, c)` holds
    /// output row `4g + c`'s four k-values of octet `o`'s slice `m`.
    #[allow(clippy::too_many_arguments)] // Fragment geometry is clearer flat.
    fn marshal_a_rows(
        &self,
        loaded: &[WVec; 2],
        row_base: usize,
        v_len: usize,
        k0: usize,
        m: usize,
        switch: bool,
        tok: Tok,
    ) -> WVec {
        if loaded[0].is_ghost() {
            return WVec::ghost(4, tok);
        }
        let _ = row_base;
        let mut b = WVec::zeros(4);
        for o in 0..4 {
            for g in 0..2 {
                for c in 0..4 {
                    let r = 4 * g + c;
                    if r >= v_len {
                        continue;
                    }
                    for kk in 0..4 {
                        let k = 16 * o + 4 * m + kk;
                        if k0 + k >= self.a.cols() {
                            continue;
                        }
                        let flat = r * TILE_K + k;
                        let (li, rest) = (flat / 256, flat % 256);
                        let v = loaded[li].get(rest / 8, rest % 8);
                        let lane = if switch {
                            octet_lane(o, 1 - g, c)
                        } else {
                            octet_lane(o, g, c)
                        };
                        b.set(lane, kk, v);
                    }
                }
            }
        }
        b.set_tok(tok);
        b
    }
}

impl KernelSpec for OctetSddmm<'_> {
    fn name(&self) -> String {
        format!("sddmm-octet-{}(V={})", self.variant.label(), self.mask.v())
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.tiles.len().max(1),
            warps_per_cta: 1,
            regs_per_thread: match self.variant {
                OctetVariant::Reg => 96,
                OctetVariant::Shfl => 72,
                OctetVariant::Arch => 64,
            },
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::tile_shard_layout(self.out_buf, self.mask, &self.tiles)
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let (br, start, len) = self.tiles[cta.cta_id];
        let v_len = self.mask.v();
        let k_total = self.a.cols();
        debug_assert_eq!(k_total, self.b.rows());
        let n = self.b.cols();
        let functional = cta.mode == Mode::Functional;
        let shadow = functional && cta.shadow_exec;
        let switch = self.variant == OctetVariant::Arch;
        let flavor = self.flavor();
        let s = &self.sites;
        let row_base = br * v_len;

        let mut w = cta.warp(0);
        let rp = lanes(|l| if l < 2 { Some(br + l) } else { None });
        let rp_tok = w.ldg(s.ld_rowptr, self.idx.row_ptr, &rp, 1, &[]).tok();
        if len == 0 {
            return;
        }
        let ci = lanes(|l| if l < len { Some(start + l) } else { None });
        let ci_tok = w
            .ldg(s.ld_colidx, self.idx.col_idx, &ci, 1, &[rp_tok])
            .tok();
        w.int_ops(s.addr, 4, &[ci_tok]);

        // Per sub-step octet-partial accumulators (functional): indexed
        // [sub][octet][col 0..8][row 0..v].
        let subs = len.div_ceil(SUB_N);
        let mut partials = vec![0.0f32; subs * 4 * SUB_N * v_len];
        // fp64 twins of the partials, fed by the mma shadow pass.
        let mut partials64 = vec![0.0f64; if shadow { subs * 4 * SUB_N * v_len } else { 0 }];
        // Trace accumulators per sub-step.
        let mut acc_frags: Vec<WVec> = (0..subs)
            .map(|_| {
                if functional {
                    WVec::zeros(8)
                } else {
                    WVec::ghost(8, Tok::NONE)
                }
            })
            .collect();

        for k0 in (0..k_total).step_by(TILE_K) {
            let ks = TILE_K.min(k_total - k0);
            // ① A rows: V × 64 halves straight to registers.
            let mut a_loaded = [WVec::zeros(8), WVec::zeros(8)];
            let a_parts = (v_len * TILE_K).div_ceil(256);
            let mut a_tok = Tok::NONE;
            for (part, slot) in (0..a_parts).zip(0..2usize) {
                let offs = lanes(|l| {
                    let flat = part * 256 + l * 8;
                    let r = flat / TILE_K;
                    let k = flat % TILE_K;
                    if r < v_len && k < ks {
                        Some((row_base + r) * k_total + k0 + k)
                    } else {
                        None
                    }
                });
                a_loaded[slot] = w.ldg(s.ldg_a[slot], self.a_buf, &offs, 8, &[rp_tok]);
                a_tok = a_loaded[slot].tok();
            }

            for sub in 0..subs {
                let cols: Vec<usize> = (0..SUB_N.min(len - sub * SUB_N))
                    .map(|j| self.mask.col_idx()[start + sub * SUB_N + j] as usize)
                    .collect();
                // ③ gathered B columns: 8 × 64 halves to registers.
                let mut b_loaded = [WVec::zeros(8), WVec::zeros(8)];
                let mut b_tok = Tok::NONE;
                for slot in 0..2usize {
                    let offs = lanes(|l| {
                        let flat = slot * 256 + l * 8;
                        let c = flat / TILE_K;
                        let k = flat % TILE_K;
                        if c < cols.len() && k < ks && cols[c] < n {
                            Some(cols[c] * k_total + k0 + k)
                        } else {
                            None
                        }
                    });
                    b_loaded[slot] = w.ldg(s.ldg_b[slot], self.b_buf, &offs, 8, &[ci_tok]);
                    b_tok = b_loaded[slot].tok();
                }
                if self.variant == OctetVariant::Shfl {
                    // High-group switch done in software: shuffle the
                    // operand registers between groups before the mmas.
                    let g = WVec::ghost(1, b_tok);
                    b_tok = w.shfl(s.shfl_sw, &g, |l| l ^ 16, &[a_tok, b_tok]).tok();
                    let g2 = WVec::ghost(1, b_tok);
                    b_tok = w.shfl(s.shfl_sw, &g2, |l| l ^ 16, &[b_tok]).tok();
                }

                for m in 0..4 {
                    let a_frag = self.marshal_b_cols(&b_loaded, &cols, k0, m, switch, b_tok);
                    let b_frag =
                        self.marshal_a_rows(&a_loaded, row_base, v_len, k0, m, switch, a_tok);
                    if functional {
                        // Compute octet partials directly with the TCU
                        // model, then fold into the host-side partial
                        // array (each octet owns a k-slice).
                        let mut acc = WVec::zeros(8);
                        w.mma_m8n8k4(s.mma[sub % 4][m], &a_frag, &b_frag, &mut acc, flavor);
                        for o in 0..4 {
                            for g in 0..2 {
                                for t in 0..4 {
                                    let c = 4 * g + t;
                                    if c >= cols.len() {
                                        continue;
                                    }
                                    for r in 0..v_len {
                                        let base = ((sub * 4 + o) * SUB_N + c) * v_len + r;
                                        // With SWITCH, writeback targets
                                        // the same acc positions.
                                        let lane = octet_lane(o, g, t);
                                        partials[base] += acc.get(lane, r);
                                        if shadow {
                                            partials64[base] += acc.get_shadow(lane, r);
                                        }
                                    }
                                }
                            }
                        }
                    } else {
                        w.mma_m8n8k4(
                            s.mma[sub % 4][m],
                            &a_frag,
                            &b_frag,
                            &mut acc_frags[sub],
                            flavor,
                        );
                    }
                }
                if self.variant == OctetVariant::Reg && !functional {
                    // The second accumulator set is merged with FADDs.
                    w.math(
                        s.red_fadd,
                        InstrKind::Ffma,
                        v_len as u32,
                        &[acc_frags[sub].tok()],
                    );
                }
            }
        }

        // Cross-octet reduction: two shuffle+add rounds per sub-step.
        let mut red_tok = Tok::NONE;
        for sub in 0..subs {
            let g = WVec::ghost(1, acc_frags[sub].tok());
            let t1 = w.shfl(s.red_shfl, &g, |l| (l + 8) % 32, &[acc_frags[sub].tok()]);
            let f1 = w.math(s.red_fadd, InstrKind::Ffma, v_len as u32, &[t1.tok()]);
            let g2 = WVec::ghost(1, f1);
            let t2 = w.shfl(s.red_shfl, &g2, |l| (l + 4) % 32, &[f1]);
            red_tok = w.math(s.red_fadd, InstrKind::Ffma, v_len as u32, &[t2.tok()]);
        }

        // Store: len vectors × V halves, contiguous in the CVSE layout.
        let total = len * v_len;
        let epl = v_len.min(8);
        let per_store = 32 * epl;
        for st in 0..total.div_ceil(per_store) {
            let offs = lanes(|l| {
                let flat = st * per_store + l * epl;
                if flat < total {
                    Some(start * v_len + flat)
                } else {
                    None
                }
            });
            let mut vals = WVec::zeros(epl);
            if functional {
                for l in 0..32 {
                    for e in 0..epl {
                        let flat = st * per_store + l * epl + e;
                        if flat >= total {
                            continue;
                        }
                        let vec_j = flat / v_len;
                        let r = flat % v_len;
                        let sub = vec_j / SUB_N;
                        let c = vec_j % SUB_N;
                        let sum: f32 = (0..4)
                            .map(|o| partials[((sub * 4 + o) * SUB_N + c) * v_len + r])
                            .sum();
                        vals.set(l, e, f16::from_f32(sum).to_f32());
                        if shadow {
                            let sum64: f64 = (0..4)
                                .map(|o| partials64[((sub * 4 + o) * SUB_N + c) * v_len + r])
                                .sum();
                            vals.set_shadow(l, e, sum64);
                        }
                    }
                }
            } else {
                vals = WVec::ghost(epl, red_tok);
            }
            w.stg(s.stg, self.out_buf, &offs, &vals, &[red_tok]);
        }
    }
}

/// Functional octet SDDMM.
pub fn sddmm_octet(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    variant: OctetVariant,
) -> VectorSparse<f16> {
    let mut mem = MemPool::new();
    let kernel = OctetSddmm::new(&mut mem, a, b, mask, variant, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the octet SDDMM kernel.
pub fn profile_sddmm_octet(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    variant: OctetVariant,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = OctetSddmm::new(&mut mem, a, b, mask, variant, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    fn check(variant: OctetVariant, m: usize, k: usize, n: usize, v: usize, s: f64, seed: u64) {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(m, k, Layout::RowMajor, seed);
        let b = gen::random_dense::<f16>(k, n, Layout::ColMajor, seed + 1);
        let mask = gen::random_pattern(m, n, v, s, seed + 2);
        let got = sddmm_octet(&gpu, &a, &b, &mask, variant);
        let want = reference::sddmm(&a, &b, &mask);
        for (g, wv) in got.values().iter().zip(want.values()) {
            assert_eq!(g, wv, "variant {variant:?} V={v}");
        }
    }

    #[test]
    fn reg_variant_matches_reference() {
        check(OctetVariant::Reg, 32, 64, 64, 4, 0.7, 1);
    }

    #[test]
    fn shfl_variant_matches_reference() {
        check(OctetVariant::Shfl, 32, 128, 64, 8, 0.8, 2);
    }

    #[test]
    fn arch_variant_matches_reference() {
        check(OctetVariant::Arch, 32, 64, 64, 4, 0.7, 3);
        check(OctetVariant::Arch, 16, 128, 96, 8, 0.75, 4);
    }

    #[test]
    fn small_v_matches_reference() {
        check(OctetVariant::Reg, 16, 64, 64, 1, 0.5, 5);
        check(OctetVariant::Arch, 16, 64, 64, 2, 0.6, 6);
    }

    #[test]
    fn k_residue_matches_reference() {
        // K = 96 exercises a partial final 64-stride.
        check(OctetVariant::Reg, 16, 96, 64, 4, 0.7, 7);
    }

    #[test]
    fn arch_uses_fewer_registers_than_reg() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 8);
        let b = gen::random_dense::<f16>(256, 512, Layout::ColMajor, 9);
        let mask = gen::random_pattern(256, 512, 8, 0.9, 10);
        let pr = profile_sddmm_octet(&gpu, &a, &b, &mask, OctetVariant::Reg);
        let pa = profile_sddmm_octet(&gpu, &a, &b, &mask, OctetVariant::Arch);
        let ps = profile_sddmm_octet(&gpu, &a, &b, &mask, OctetVariant::Shfl);
        // 33% fewer registers (§7.3.2) and fewer instructions than shfl.
        assert!(f64::from(pa.regs_per_thread) <= 0.67 * f64::from(pr.regs_per_thread));
        assert!(pa.instrs.shfl < ps.instrs.shfl);
        // arch is the fastest of the three.
        assert!(pa.cycles <= pr.cycles * 1.01);
        assert!(pa.cycles <= ps.cycles * 1.01);
    }
}
