//! TCU-based 1-D Octet Tiling SDDMM — the paper's §6.3 contribution.
//!
//! Each CTA (one warp) computes up to `tile_n = 32` nonzero output
//! vectors of one block row, walking K in strides of 64. The LHS/RHS
//! roles are switched (as in the SpMM kernel) so each sub-step computes
//! an `(8×64)·(64×V)` tile: eight gathered `B` columns against the
//! block row's `V` `A`-rows. Both fragments load straight to registers
//! with LDG.128 — each 64-element row/column splits into eight 8-half
//! sub-vectors across lanes, 128-byte coalesced (guidelines IV & V).
//!
//! The k dimension is spread across the four octets (16 each), so every
//! output has four octet-partial sums that are combined with warp
//! shuffles and FADDs when K is exhausted — the reduction the paper
//! measures at 29.5% of instructions for V = 8, K = 64.
//!
//! The tiling above is the kernel's default
//! [`crate::compose::TilingScheme`]; [`super::compose::compile_octet`]
//! compiles the scheme into the program listing, and the
//! [`crate::tile`] marshal maps both operands' loaded lane layouts onto
//! the mma fragment convention.
//!
//! The "inverted pattern" of source operands between thread groups is
//! resolved three ways, matching the paper's variants:
//!
//! * [`OctetVariant::Reg`] — accumulate steps 2&3 into a second register
//!   set (more registers, lower occupancy);
//! * [`OctetVariant::Shfl`] — shuffle source operands before each mma
//!   (extra SHFL instructions);
//! * [`OctetVariant::Arch`] — the proposed `HMMA...SWITCH` instruction
//!   (Fig. 15): the TCU's operand multiplexers switch the thread-group
//!   sources, no extra registers or shuffles.

use super::compose::{compile_octet, SddmmOctetSites, DEFAULT_SCHEME};
use super::vector_tiles;
use crate::compose::TilingScheme;
use crate::tile::{marshal_sddmm_frag, octet_lane};
use crate::util::{lanes, upload_dense, upload_pattern, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, SparsityPattern, VectorSparse};
use vecsparse_fp16::f16;
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig,
    MemPool, MmaFlavor, Mode, NativeCtx, Program, Tok, WVec,
};

/// How the inverted source-operand pattern is handled (§6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OctetVariant {
    /// Extra accumulator registers ("mma (reg)").
    Reg,
    /// Warp shuffles before each mma ("mma (shfl)").
    Shfl,
    /// The proposed SWITCH HMMA extension ("mma (arch)").
    Arch,
}

impl OctetVariant {
    fn label(self) -> &'static str {
        match self {
            OctetVariant::Reg => "reg",
            OctetVariant::Shfl => "shfl",
            OctetVariant::Arch => "arch",
        }
    }
}

/// The octet-tiling SDDMM kernel.
pub struct OctetSddmm<'m> {
    a: &'m DenseMatrix<f16>,
    b: &'m DenseMatrix<f16>,
    mask: &'m SparsityPattern,
    variant: OctetVariant,
    scheme: TilingScheme,
    a_buf: BufferId,
    b_buf: BufferId,
    idx: VsBuffers,
    out_buf: BufferId,
    tiles: Vec<(usize, usize, usize)>,
    sites: SddmmOctetSites,
    prog: Program,
    static_len: u32,
}

impl<'m> OctetSddmm<'m> {
    /// Stage inputs.
    ///
    /// # Panics
    /// Panics on shape/layout mismatch or unsupported V.
    pub fn new(
        mem: &mut MemPool,
        a: &'m DenseMatrix<f16>,
        b: &'m DenseMatrix<f16>,
        mask: &'m SparsityPattern,
        variant: OctetVariant,
        mode: Mode,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SDDMM inner dimension mismatch");
        assert_eq!(a.rows(), mask.rows(), "mask rows");
        assert_eq!(b.cols(), mask.cols(), "mask cols");
        assert_eq!(a.layout(), Layout::RowMajor, "A must be row-major");
        assert_eq!(b.layout(), Layout::ColMajor, "B must be column-major");
        assert!(matches!(mask.v(), 1 | 2 | 4 | 8));
        let scheme = DEFAULT_SCHEME;
        let a_buf = upload_dense(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let idx = upload_pattern(mem, mask, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f16>(), mask.nnz()),
            Mode::Performance => mem.alloc_ghost(width_of::<f16>(), mask.nnz()),
        };
        let tiles = vector_tiles(mask, scheme.tile_n);
        let (prog, sites, static_len) = compile_octet(&scheme);

        OctetSddmm {
            a,
            b,
            mask,
            variant,
            scheme,
            a_buf,
            b_buf,
            idx,
            out_buf,
            tiles,
            sites,
            prog,
            static_len,
        }
    }

    /// The tiling-configuration point this instance runs at.
    pub fn scheme(&self) -> &TilingScheme {
        &self.scheme
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> VectorSparse<f16> {
        crate::util::download_vs(mem, self.out_buf, self.mask)
    }

    fn flavor(&self) -> MmaFlavor {
        match self.variant {
            OctetVariant::Arch => MmaFlavor::Switch,
            _ => MmaFlavor::Standard,
        }
    }
}

impl KernelSpec for OctetSddmm<'_> {
    fn name(&self) -> String {
        format!("sddmm-octet-{}(V={})", self.variant.label(), self.mask.v())
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.tiles.len().max(1),
            warps_per_cta: 1,
            regs_per_thread: match self.variant {
                OctetVariant::Reg => 96,
                OctetVariant::Shfl => 72,
                OctetVariant::Arch => 64,
            },
            smem_elems: 0,
            smem_elem_bytes: 2,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::tile_shard_layout(self.out_buf, self.mask, &self.tiles)
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let (br, start, len) = self.tiles[cta.cta_id];
        let v_len = self.mask.v();
        let k_total = self.a.cols();
        debug_assert_eq!(k_total, self.b.rows());
        let n = self.b.cols();
        let tile_k = self.scheme.tile_k;
        let sub_n = self.scheme.sub_warp;
        let m_slices = tile_k / 16;
        let functional = cta.mode == Mode::Functional;
        let shadow = functional && cta.shadow_exec;
        let switch = self.variant == OctetVariant::Arch;
        let flavor = self.flavor();
        let s = &self.sites;
        let row_base = br * v_len;

        let mut w = cta.warp(0);
        let rp = lanes(|l| if l < 2 { Some(br + l) } else { None });
        let rp_tok = w.ldg(s.ld_rowptr, self.idx.row_ptr, &rp, 1, &[]).tok();
        if len == 0 {
            return;
        }
        let ci = lanes(|l| if l < len { Some(start + l) } else { None });
        let ci_tok = w
            .ldg(s.ld_colidx, self.idx.col_idx, &ci, 1, &[rp_tok])
            .tok();
        w.int_ops(s.addr, 4, &[ci_tok]);

        // Per sub-step octet-partial accumulators (functional): indexed
        // [sub][octet][col 0..8][row 0..v].
        let subs = len.div_ceil(sub_n);
        let mut partials = vec![0.0f32; subs * 4 * sub_n * v_len];
        // fp64 twins of the partials, fed by the mma shadow pass.
        let mut partials64 = vec![0.0f64; if shadow { subs * 4 * sub_n * v_len } else { 0 }];
        // Trace accumulators per sub-step.
        let mut acc_frags: Vec<WVec> = (0..subs)
            .map(|_| {
                if functional {
                    WVec::zeros(8)
                } else {
                    WVec::ghost(8, Tok::NONE)
                }
            })
            .collect();

        for k0 in (0..k_total).step_by(tile_k) {
            let ks = tile_k.min(k_total - k0);
            // ① A rows: V × 64 halves straight to registers.
            let mut a_loaded = [WVec::zeros(8), WVec::zeros(8)];
            let a_parts = (v_len * tile_k).div_ceil(256);
            let mut a_tok = Tok::NONE;
            for (part, slot) in (0..a_parts).zip(0..2usize) {
                let offs = lanes(|l| {
                    let flat = part * 256 + l * 8;
                    let r = flat / tile_k;
                    let k = flat % tile_k;
                    if r < v_len && k < ks {
                        Some((row_base + r) * k_total + k0 + k)
                    } else {
                        None
                    }
                });
                a_loaded[slot] = w.ldg(s.ldg_a[slot], self.a_buf, &offs, 8, &[rp_tok]);
                a_tok = a_loaded[slot].tok();
            }

            for sub in 0..subs {
                let cols: Vec<usize> = (0..sub_n.min(len - sub * sub_n))
                    .map(|j| self.mask.col_idx()[start + sub * sub_n + j] as usize)
                    .collect();
                // ③ gathered B columns: 8 × 64 halves to registers.
                let mut b_loaded = [WVec::zeros(8), WVec::zeros(8)];
                let mut b_tok = Tok::NONE;
                for slot in 0..2usize {
                    let offs = lanes(|l| {
                        let flat = slot * 256 + l * 8;
                        let c = flat / tile_k;
                        let k = flat % tile_k;
                        if c < cols.len() && k < ks && cols[c] < n {
                            Some(cols[c] * k_total + k0 + k)
                        } else {
                            None
                        }
                    });
                    b_loaded[slot] = w.ldg(s.ldg_b[slot], self.b_buf, &offs, 8, &[ci_tok]);
                    b_tok = b_loaded[slot].tok();
                }
                if self.variant == OctetVariant::Shfl {
                    // High-group switch done in software: shuffle the
                    // operand registers between groups before the mmas.
                    let g = WVec::ghost(1, b_tok);
                    b_tok = w.shfl(s.shfl_sw, &g, |l| l ^ 16, &[a_tok, b_tok]).tok();
                    let g2 = WVec::ghost(1, b_tok);
                    b_tok = w.shfl(s.shfl_sw, &g2, |l| l ^ 16, &[b_tok]).tok();
                }

                for m in 0..m_slices {
                    let a_frag = marshal_sddmm_frag(
                        &b_loaded,
                        cols.len(),
                        tile_k,
                        k0,
                        m,
                        self.b.rows(),
                        switch,
                        b_tok,
                    );
                    let b_frag = marshal_sddmm_frag(
                        &a_loaded,
                        v_len,
                        tile_k,
                        k0,
                        m,
                        self.a.cols(),
                        switch,
                        a_tok,
                    );
                    let site = s.mma[sub % s.subs()][m];
                    if functional {
                        // Compute octet partials directly with the TCU
                        // model, then fold into the host-side partial
                        // array (each octet owns a k-slice).
                        let mut acc = WVec::zeros(8);
                        w.mma_m8n8k4(site, &a_frag, &b_frag, &mut acc, flavor);
                        for o in 0..4 {
                            for g in 0..2 {
                                for t in 0..4 {
                                    let c = 4 * g + t;
                                    if c >= cols.len() {
                                        continue;
                                    }
                                    for r in 0..v_len {
                                        let base = ((sub * 4 + o) * sub_n + c) * v_len + r;
                                        // With SWITCH, writeback targets
                                        // the same acc positions.
                                        let lane = octet_lane(o, g, t);
                                        partials[base] += acc.get(lane, r);
                                        if shadow {
                                            partials64[base] += acc.get_shadow(lane, r);
                                        }
                                    }
                                }
                            }
                        }
                    } else {
                        w.mma_m8n8k4(site, &a_frag, &b_frag, &mut acc_frags[sub], flavor);
                    }
                }
                if self.variant == OctetVariant::Reg && !functional {
                    // The second accumulator set is merged with FADDs.
                    w.math(
                        s.red_fadd,
                        InstrKind::Ffma,
                        v_len as u32,
                        &[acc_frags[sub].tok()],
                    );
                }
            }
        }

        // Cross-octet reduction: two shuffle+add rounds per sub-step.
        let mut red_tok = Tok::NONE;
        for sub in 0..subs {
            let g = WVec::ghost(1, acc_frags[sub].tok());
            let t1 = w.shfl(s.red_shfl, &g, |l| (l + 8) % 32, &[acc_frags[sub].tok()]);
            let f1 = w.math(s.red_fadd, InstrKind::Ffma, v_len as u32, &[t1.tok()]);
            let g2 = WVec::ghost(1, f1);
            let t2 = w.shfl(s.red_shfl, &g2, |l| (l + 4) % 32, &[f1]);
            red_tok = w.math(s.red_fadd, InstrKind::Ffma, v_len as u32, &[t2.tok()]);
        }

        // Store: len vectors × V halves, contiguous in the CVSE layout.
        let total = len * v_len;
        let epl = v_len.min(8);
        let per_store = 32 * epl;
        for st in 0..total.div_ceil(per_store) {
            let offs = lanes(|l| {
                let flat = st * per_store + l * epl;
                if flat < total {
                    Some(start * v_len + flat)
                } else {
                    None
                }
            });
            let mut vals = WVec::zeros(epl);
            if functional {
                for l in 0..32 {
                    for e in 0..epl {
                        let flat = st * per_store + l * epl + e;
                        if flat >= total {
                            continue;
                        }
                        let vec_j = flat / v_len;
                        let r = flat % v_len;
                        let sub = vec_j / sub_n;
                        let c = vec_j % sub_n;
                        let sum: f32 = (0..4)
                            .map(|o| partials[((sub * 4 + o) * sub_n + c) * v_len + r])
                            .sum();
                        vals.set(l, e, f16::from_f32(sum).to_f32());
                        if shadow {
                            let sum64: f64 = (0..4)
                                .map(|o| partials64[((sub * 4 + o) * sub_n + c) * v_len + r])
                                .sum();
                            vals.set_shadow(l, e, sum64);
                        }
                    }
                }
            } else {
                vals = WVec::ghost(epl, red_tok);
            }
            w.stg(s.stg, self.out_buf, &offs, &vals, &[red_tok]);
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        let v_len = self.mask.v();
        let k_total = self.a.cols();
        let tile_k = self.scheme.tile_k;
        let m_slices = tile_k / 16;
        let a = ctx.contents(self.a_buf);
        let b = ctx.contents(self.b_buf);
        let col_idx = self.mask.col_idx();
        // Mirror the mma fragment grouping exactly: each octet owns the
        // k-slices `16o + 4m + kk`, accumulating a fresh 4-term chunk per
        // (k0, m) into its partial; the store folds the four partials in
        // octet order. All three operand-routing variants compute these
        // same groupings (the routing moves registers, not arithmetic).
        let mut writes = Vec::with_capacity(self.mask.nnz() * v_len);
        for &(br, start, len) in &self.tiles {
            let row_base = br * v_len;
            for j in 0..len {
                let col = col_idx[start + j] as usize;
                for r in 0..v_len {
                    let mut partial = [0.0f32; 4];
                    for k0 in (0..k_total).step_by(tile_k) {
                        for m in 0..m_slices {
                            for (o, p) in partial.iter_mut().enumerate() {
                                let mut delta = 0.0f32;
                                for kk in 0..4 {
                                    let k = k0 + 16 * o + 4 * m + kk;
                                    if k < k_total {
                                        delta +=
                                            b[col * k_total + k] * a[(row_base + r) * k_total + k];
                                    }
                                }
                                *p += delta;
                            }
                        }
                    }
                    let sum: f32 = partial.iter().sum();
                    writes.push((
                        ((start + j) * v_len + r) as u32,
                        f16::from_f32(sum).to_f32(),
                    ));
                }
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional octet SDDMM.
pub fn sddmm_octet(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    variant: OctetVariant,
) -> VectorSparse<f16> {
    let mut mem = MemPool::new();
    let kernel = OctetSddmm::new(&mut mem, a, b, mask, variant, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the octet SDDMM kernel.
pub fn profile_sddmm_octet(
    gpu: &GpuConfig,
    a: &DenseMatrix<f16>,
    b: &DenseMatrix<f16>,
    mask: &SparsityPattern,
    variant: OctetVariant,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = OctetSddmm::new(&mut mem, a, b, mask, variant, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    fn check(variant: OctetVariant, m: usize, k: usize, n: usize, v: usize, s: f64, seed: u64) {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(m, k, Layout::RowMajor, seed);
        let b = gen::random_dense::<f16>(k, n, Layout::ColMajor, seed + 1);
        let mask = gen::random_pattern(m, n, v, s, seed + 2);
        let got = sddmm_octet(&gpu, &a, &b, &mask, variant);
        let want = reference::sddmm(&a, &b, &mask);
        for (g, wv) in got.values().iter().zip(want.values()) {
            assert_eq!(g, wv, "variant {variant:?} V={v}");
        }
    }

    #[test]
    fn reg_variant_matches_reference() {
        check(OctetVariant::Reg, 32, 64, 64, 4, 0.7, 1);
    }

    #[test]
    fn shfl_variant_matches_reference() {
        check(OctetVariant::Shfl, 32, 128, 64, 8, 0.8, 2);
    }

    #[test]
    fn arch_variant_matches_reference() {
        check(OctetVariant::Arch, 32, 64, 64, 4, 0.7, 3);
        check(OctetVariant::Arch, 16, 128, 96, 8, 0.75, 4);
    }

    #[test]
    fn small_v_matches_reference() {
        check(OctetVariant::Reg, 16, 64, 64, 1, 0.5, 5);
        check(OctetVariant::Arch, 16, 64, 64, 2, 0.6, 6);
    }

    #[test]
    fn k_residue_matches_reference() {
        // K = 96 exercises a partial final 64-stride.
        check(OctetVariant::Reg, 16, 96, 64, 4, 0.7, 7);
    }

    #[test]
    fn arch_uses_fewer_registers_than_reg() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 8);
        let b = gen::random_dense::<f16>(256, 512, Layout::ColMajor, 9);
        let mask = gen::random_pattern(256, 512, 8, 0.9, 10);
        let pr = profile_sddmm_octet(&gpu, &a, &b, &mask, OctetVariant::Reg);
        let pa = profile_sddmm_octet(&gpu, &a, &b, &mask, OctetVariant::Arch);
        let ps = profile_sddmm_octet(&gpu, &a, &b, &mask, OctetVariant::Shfl);
        // 33% fewer registers (§7.3.2) and fewer instructions than shfl.
        assert!(f64::from(pa.regs_per_thread) <= 0.67 * f64::from(pr.regs_per_thread));
        assert!(pa.instrs.shfl < ps.instrs.shfl);
        // arch is the fastest of the three.
        assert!(pa.cycles <= pr.cycles * 1.01);
        assert!(pa.cycles <= ps.cycles * 1.01);
    }
}
