//! FPU-based 1-D Subwarp Tiling SDDMM — the Sputnik-derived baseline of
//! §6.1, extended to the column-vector sparse encoding.
//!
//! Each CTA holds one 8-thread subwarp computing up to `TILE_N` nonzero
//! output vectors of a block row. Per 64-deep K stride the subwarp loads
//! the `V` A-rows and each gathered B-column with LDG.128 (8 consecutive
//! halves per thread — 128-byte coalesced, guidelines IV & V), then each
//! thread accumulates its `V × TILE_N` partial-sum slice with HMUL/FADD
//! chains; subwarp-wide shuffles reduce the per-thread partials at the
//! end. The per-thread partial-sum array is the §6.1 pathology: at
//! `V = 8, TILE_N = 32` it alone would need 256 registers (spilling), so
//! the tuned configuration uses `TILE_N = 16` and still pays in
//! occupancy.

use super::vector_tiles;
use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use crate::util::{lanes, upload_dense, upload_pattern, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, Scalar, SparsityPattern, VectorSparse};
use vecsparse_fp16::{f16, hmul_fadd};
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig,
    MemPool, Mode, NativeCtx, Program, Site, Tok, WVec,
};

/// The kernel's named default point in the tiling space.
const SCHEME: TilingScheme = scheme_for(KernelId::SddmmFpuSubwarp);
/// Active threads per subwarp.
const SUBWARP: usize = SCHEME.sub_warp;
/// Nonzero output vectors per tile (tuned down from 32 to avoid register
/// spilling, §6.1).
const TILE_N: usize = SCHEME.tile_n;
/// K-stride per step.
const TILE_K: usize = SCHEME.tile_k;

/// The FPU subwarp-tiling SDDMM kernel, generic over precision.
pub struct FpuSubwarpSddmm<'m, T: Scalar> {
    a: &'m DenseMatrix<T>,
    b: &'m DenseMatrix<T>,
    mask: &'m SparsityPattern,
    a_buf: BufferId,
    b_buf: BufferId,
    idx: VsBuffers,
    out_buf: BufferId,
    tiles: Vec<(usize, usize, usize)>,
    sites: Sites,
    prog: Program,
    static_len: u32,
}

struct Sites {
    ld_idx: Site,
    ldg_a: Site,
    ldg_b: Vec<Site>,
    math: Vec<Site>,
    addr: Vec<Site>,
    red: Site,
    stg: Site,
}

impl<'m, T: Scalar> FpuSubwarpSddmm<'m, T> {
    /// Stage inputs.
    ///
    /// # Panics
    /// Panics on shape/layout mismatch.
    pub fn new(
        mem: &mut MemPool,
        a: &'m DenseMatrix<T>,
        b: &'m DenseMatrix<T>,
        mask: &'m SparsityPattern,
        mode: Mode,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SDDMM inner dimension mismatch");
        assert_eq!(a.rows(), mask.rows());
        assert_eq!(b.cols(), mask.cols());
        assert_eq!(a.layout(), Layout::RowMajor);
        assert_eq!(b.layout(), Layout::ColMajor);
        let a_buf = upload_dense(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let idx = upload_pattern(mem, mask, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<T>(), mask.nnz()),
            Mode::Performance => mem.alloc_ghost(width_of::<T>(), mask.nnz()),
        };
        let tiles = vector_tiles(mask, TILE_N);

        let v = mask.v();
        let mut p = Program::new();
        let ld_idx = p.site("ld_idx", 0);
        let ldg_a = p.site("ldg_a", 0);
        let mut ldg_b = Vec::new();
        let mut math = Vec::new();
        let mut addr = Vec::new();
        // Fully unrolled over the TILE_N vectors and the per-thread V×8
        // products — the §6.1 program-size pathology.
        for j in 0..TILE_N as u32 {
            ldg_b.push(p.site("ldg_b", j));
            for mi in 0..(v as u32 * 4).max(1) {
                math.push(p.site("math", j * 64 + mi));
            }
            for ai in 0..(v as u32 * 2).max(2) {
                addr.push(p.site("addr", j * 32 + ai));
            }
        }
        // Shuffle + add of each butterfly round sit at adjacent pcs.
        let red = p.site_span("red", 0, 2);
        let stg = p.site("stg", 0);
        let static_len = p.static_len() * 2 + 58;

        FpuSubwarpSddmm {
            a,
            b,
            mask,
            a_buf,
            b_buf,
            idx,
            out_buf,
            tiles,
            sites: Sites {
                ld_idx,
                ldg_a,
                ldg_b,
                math,
                addr,
                red,
                stg,
            },
            prog: p,
            static_len,
        }
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> VectorSparse<T>
    where
        T: Scalar,
    {
        let data = mem.contents(self.out_buf);
        VectorSparse::new(
            self.mask.clone(),
            data.iter().map(|&x| T::from_f32(x)).collect(),
        )
    }
}

impl<T: Scalar> KernelSpec for FpuSubwarpSddmm<'_, T> {
    fn name(&self) -> String {
        format!("sddmm-fpu-subwarp(V={},{})", self.mask.v(), T::NAME)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.tiles.len().max(1),
            warps_per_cta: 1,
            // V × TILE_N partial sums per thread, plus operands — the
            // §6.1 occupancy cost.
            regs_per_thread: (self.mask.v() * TILE_N) as u32 + 40,
            smem_elems: 0,
            smem_elem_bytes: T::bytes() as u64,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::tile_shard_layout(self.out_buf, self.mask, &self.tiles)
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let (br, start, len) = self.tiles[cta.cta_id];
        let v_len = self.mask.v();
        let k_total = self.a.cols();
        debug_assert_eq!(k_total, self.b.rows());
        let functional = cta.mode == Mode::Functional;
        let half = T::BITS == 16;
        let s = &self.sites;
        let row_base = br * v_len;
        let epl = if half { 8 } else { 4 };

        let mut w = cta.warp(0);
        if len == 0 {
            return;
        }
        let ci = lanes(|l| if l < len { Some(start + l) } else { None });
        let ci_tok = w.ldg(s.ld_idx, self.idx.col_idx, &ci, 1, &[]).tok();

        let mut acc = vec![0.0f32; len * v_len];
        let mut math_tok = Tok::NONE;
        let mut addr_tok = ci_tok;

        for k0 in (0..k_total).step_by(TILE_K) {
            let ks = TILE_K.min(k_total - k0);
            // A rows: V rows × 64, each row split over the 8 lanes.
            for r in 0..v_len {
                for part in 0..(ks.div_ceil(SUBWARP * epl)) {
                    let offs = lanes(|l| {
                        if l < SUBWARP {
                            let k = (part * SUBWARP + l) * epl;
                            if k < ks {
                                Some((row_base + r) * k_total + k0 + k)
                            } else {
                                None
                            }
                        } else {
                            None
                        }
                    });
                    w.ldg(s.ldg_a, self.a_buf, &offs, epl, &[]);
                }
            }
            for (j, &col_site) in (0..len).zip(s.ldg_b.iter().cycle()) {
                let col = self.mask.col_idx()[start + j] as usize;
                addr_tok = w.int_ops(
                    s.addr[(j * v_len * 2) % s.addr.len()],
                    (v_len as u32 * 2).max(2),
                    &[addr_tok],
                );
                // Gathered B column: 64 consecutive halves over 8 lanes.
                let mut b_tok = Tok::NONE;
                for part in 0..(ks.div_ceil(SUBWARP * epl)) {
                    let offs = lanes(|l| {
                        if l < SUBWARP {
                            let k = (part * SUBWARP + l) * epl;
                            if k < ks {
                                Some(col * k_total + k0 + k)
                            } else {
                                None
                            }
                        } else {
                            None
                        }
                    });
                    b_tok = w.ldg(col_site, self.b_buf, &offs, epl, &[addr_tok]).tok();
                }
                // Per-thread math: V × 8 MACs, accumulator-chained.
                let kind = if half {
                    InstrKind::Hfma2
                } else {
                    InstrKind::Ffma
                };
                let count = ((v_len * SUBWARP) / if half { 2 } else { 1 }).max(1) as u32;
                let m1 = w.math(
                    s.math[(j * v_len * 4) % s.math.len()],
                    kind,
                    count / 2 + 1,
                    &[b_tok, math_tok],
                );
                math_tok = w.math(
                    s.math[(j * v_len * 4 + 1) % s.math.len()],
                    InstrKind::Ffma,
                    count / 2,
                    &[m1, math_tok],
                );
                if math_tok == Tok::NONE {
                    math_tok = m1;
                }

                if functional {
                    for r in 0..v_len {
                        for k in 0..ks {
                            let av = w.mem().read(self.a_buf, (row_base + r) * k_total + k0 + k);
                            let bv = w.mem().read(self.b_buf, col * k_total + k0 + k);
                            acc[j * v_len + r] = if half {
                                hmul_fadd(f16::from_f32(av), f16::from_f32(bv), acc[j * v_len + r])
                            } else {
                                acc[j * v_len + r] + av * bv
                            };
                        }
                    }
                }
            }
        }

        // Subwarp reduction: log2(8) = 3 shuffle+add rounds.
        let mut red_tok = math_tok;
        for round in 0..3 {
            let g = WVec::ghost(1, red_tok);
            let sh = w.shfl(s.red, &g, |l| l ^ (1 << round), &[red_tok]);
            red_tok = w.math(
                Site(s.red.0 + 1),
                InstrKind::Ffma,
                v_len as u32,
                &[sh.tok()],
            );
        }

        // Store the tile's values.
        let total = len * v_len;
        let per_store = 32;
        for st in 0..total.div_ceil(per_store) {
            let offs = lanes(|l| {
                let flat = st * per_store + l;
                if flat < total {
                    Some(start * v_len + flat)
                } else {
                    None
                }
            });
            let mut vals = WVec::zeros(1);
            if functional {
                for l in 0..32 {
                    let flat = st * per_store + l;
                    if flat < total {
                        vals.set(l, 0, T::from_f32(acc[flat]).to_f32());
                    }
                }
            } else {
                vals = WVec::ghost(1, red_tok);
            }
            w.stg(s.stg, self.out_buf, &offs, &vals, &[red_tok]);
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // The FPU chain walks k in ascending order across the K-strides
        // (the accumulator persists between chunks). Half precision
        // rounds each product to binary16 before the f32 add.
        let v_len = self.mask.v();
        let k_total = self.a.cols();
        let half = T::BITS == 16;
        let a = ctx.contents(self.a_buf);
        let b = ctx.contents(self.b_buf);
        let col_idx = self.mask.col_idx();
        let mut writes = Vec::with_capacity(self.mask.nnz());
        for br in 0..self.mask.block_rows() {
            let row_base = br * v_len;
            for j in self.mask.block_row_range(br) {
                let col = col_idx[j] as usize;
                for r in 0..v_len {
                    let mut acc = 0.0f32;
                    for k in 0..k_total {
                        let av = a[(row_base + r) * k_total + k];
                        let bv = b[col * k_total + k];
                        acc = if half {
                            hmul_fadd(f16::from_f32(av), f16::from_f32(bv), acc)
                        } else {
                            acc + av * bv
                        };
                    }
                    writes.push(((j * v_len + r) as u32, T::from_f32(acc).to_f32()));
                }
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional FPU subwarp SDDMM.
pub fn sddmm_fpu<T: Scalar>(
    gpu: &GpuConfig,
    a: &DenseMatrix<T>,
    b: &DenseMatrix<T>,
    mask: &SparsityPattern,
) -> VectorSparse<T> {
    let mut mem = MemPool::new();
    let kernel = FpuSubwarpSddmm::new(&mut mem, a, b, mask, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the FPU subwarp SDDMM kernel.
pub fn profile_sddmm_fpu<T: Scalar>(
    gpu: &GpuConfig,
    a: &DenseMatrix<T>,
    b: &DenseMatrix<T>,
    mask: &SparsityPattern,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = FpuSubwarpSddmm::new(&mut mem, a, b, mask, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    #[test]
    fn matches_reference_half() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f16>(16, 64, Layout::RowMajor, 1);
        let b = gen::random_dense::<f16>(64, 64, Layout::ColMajor, 2);
        let mask = gen::random_pattern(16, 64, 4, 0.6, 3);
        let got = sddmm_fpu(&gpu, &a, &b, &mask);
        let want = reference::sddmm(&a, &b, &mask);
        for (g, wv) in got.values().iter().zip(want.values()) {
            assert_eq!(g, wv);
        }
    }

    #[test]
    fn matches_reference_single() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f32>(16, 96, Layout::RowMajor, 4);
        let b = gen::random_dense::<f32>(96, 64, Layout::ColMajor, 5);
        let mask = gen::random_pattern(16, 64, 8, 0.8, 6);
        let got = sddmm_fpu(&gpu, &a, &b, &mask);
        let want = reference::sddmm(&a, &b, &mask);
        for (g, wv) in got.values().iter().zip(want.values()) {
            assert!((g.to_f32() - wv.to_f32()).abs() < 1e-4);
        }
    }

    #[test]
    fn register_pressure_lowers_occupancy() {
        let gpu = GpuConfig::default();
        let a = gen::random_dense::<f16>(256, 256, Layout::RowMajor, 7);
        let b = gen::random_dense::<f16>(256, 512, Layout::ColMajor, 8);
        let mask = gen::random_pattern(256, 512, 8, 0.9, 9);
        let p = profile_sddmm_fpu(&gpu, &a, &b, &mask);
        // V=8 × TILE_N=16 partials ⇒ 168 regs/thread: occupancy-limited.
        assert!(p.regs_per_thread >= 160);
        assert!(p.ctas_per_sm <= 16, "ctas/SM {}", p.ctas_per_sm);
    }
}
