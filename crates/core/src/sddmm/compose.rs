//! Stage/global-layer composer for the octet SDDMM: compiles a
//! [`TilingScheme`] into the kernel's `Program` and site table.
//!
//! The scheme fixes the k-stride (`tile_k`, spread 16-per-octet across
//! the four octets) and the sub-step width (`sub_warp` output vectors
//! per mma round). The compiled program is the §6.3 listing: index
//! prologue, two-register A and B fragment loads, `tile_k / 16` mma
//! slices per sub-step, the cross-octet shuffle/FADD reduction, and the
//! vector store. As with the SpMM composer, the default scheme compiles
//! to the exact program the hand-written kernel shipped with.

use crate::compose::{scheme_for, TilingScheme};
use crate::registry::KernelId;
use vecsparse_gpu_sim::{Program, Site};

/// The octet SDDMM's default scheme — the paper's evaluated kernel
/// (shared by the reg / shfl / arch variants, which differ in operand
/// routing, not tiling).
pub const DEFAULT_SCHEME: TilingScheme = scheme_for(KernelId::SddmmOctetReg);

/// Site table of a compiled octet SDDMM program: `mma[sub][m]` covers
/// sub-step `sub` (mod the unrolled rounds) and octet k-slice `m`.
pub struct SddmmOctetSites {
    pub ld_rowptr: Site,
    pub ld_colidx: Site,
    pub ldg_a: [Site; 2],
    pub ldg_b: [Site; 2],
    pub mma: Vec<Vec<Site>>,
    pub shfl_sw: Site,
    pub red_shfl: Site,
    pub red_fadd: Site,
    pub addr: Site,
    pub stg: Site,
}

impl SddmmOctetSites {
    /// Unrolled sub-step rounds (the mma table's first axis).
    pub fn subs(&self) -> usize {
        self.mma.len()
    }
}

/// Compile `scheme` into the octet SDDMM program. `tile_n / sub_warp`
/// sub-step rounds are unrolled, each with `tile_k / 16` mma slices
/// spanning 4 static HMMA slots.
///
/// # Panics
/// Panics if `tile_k` is not a positive multiple of 16 or `sub_warp`
/// does not divide `tile_n`.
pub fn compile_octet(scheme: &TilingScheme) -> (Program, SddmmOctetSites, u32) {
    assert!(
        scheme.tile_k >= 16 && scheme.tile_k % 16 == 0,
        "sddmm octet tile_k {} must be a positive multiple of 16",
        scheme.tile_k
    );
    assert!(
        scheme.sub_warp > 0 && scheme.tile_n % scheme.sub_warp == 0,
        "sub_warp {} must divide tile_n {}",
        scheme.sub_warp,
        scheme.tile_n
    );
    let subs = scheme.tile_n / scheme.sub_warp;
    let m_slices = scheme.tile_k / 16;

    let mut p = Program::new();
    let ld_rowptr = p.site("ld_rowptr", 0);
    let ld_colidx = p.site("ld_colidx", 0);
    let ldg_a = [p.site("ldg_a", 0), p.site("ldg_a", 1)];
    let ldg_b = [p.site("ldg_b", 0), p.site("ldg_b", 1)];
    let mut mma = Vec::with_capacity(subs);
    for sub in 0..subs {
        let mut row = Vec::with_capacity(m_slices);
        for m in 0..m_slices {
            // Each mma spans its 4 static HMMA slots.
            row.push(p.site_span("mma", (sub * 4 * m_slices + m * 4) as u32, 4));
        }
        mma.push(row);
    }
    let shfl_sw = p.site("shfl_sw", 0);
    let red_shfl = p.site("red_shfl", 0);
    let red_fadd = p.site("red_fadd", 0);
    let addr = p.site("addr", 0);
    let stg = p.site("stg", 0);
    // Modest scalar prologue on top of the registered sites.
    let static_len = p.static_len() + 48;

    let sites = SddmmOctetSites {
        ld_rowptr,
        ld_colidx,
        ldg_a,
        ldg_b,
        mma,
        shfl_sw,
        red_shfl,
        red_fadd,
        addr,
        stg,
    };
    (p, sites, static_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scheme_compiles_four_by_four_mma_table() {
        let (p, sites, static_len) = compile_octet(&DEFAULT_SCHEME);
        assert_eq!(sites.subs(), 4);
        assert_eq!(sites.mma[0].len(), 4);
        assert_eq!(static_len, p.static_len() + 48);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_sub_16_stride() {
        let bad = TilingScheme {
            tile_k: 8,
            ..DEFAULT_SCHEME
        };
        compile_octet(&bad);
    }
}
