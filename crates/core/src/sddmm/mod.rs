//! SDDMM kernels: `C = (A · B) ∘ D` where the binary mask `D` (and hence
//! the output) lives in the column-vector sparse encoding. `A` is
//! row-major `M × K`; `B` is column-major `K × N` (a transposed row-major
//! matrix, as in self-attention's `QKᵀ`).

pub mod compose;
mod csr;
mod fpu_subwarp;
mod octet;
mod wmma;

pub use csr::{profile_sddmm_csr, sddmm_csr, CsrSddmm};
pub use fpu_subwarp::{profile_sddmm_fpu, sddmm_fpu, FpuSubwarpSddmm};
pub use octet::{profile_sddmm_octet, sddmm_octet, OctetSddmm, OctetVariant};
pub use wmma::{profile_sddmm_wmma, sddmm_wmma, WmmaSddmm};

/// Tile lists: each CTA owns one (block row, vector range) chunk of at
/// most `tile` nonzero vectors. Returns `(block_row, start, len)` triples.
pub(crate) fn vector_tiles(
    pattern: &vecsparse_formats::SparsityPattern,
    tile: usize,
) -> Vec<(usize, usize, usize)> {
    let mut tiles = Vec::new();
    for br in 0..pattern.block_rows() {
        let range = pattern.block_row_range(br);
        let mut start = range.start;
        while start < range.end {
            let len = (range.end - start).min(tile);
            tiles.push((br, start, len));
            start += len;
        }
        if range.is_empty() {
            // Keep an empty tile so every block row has a CTA (grid shape
            // stays data-independent for the scheduler).
            tiles.push((br, range.start, 0));
        }
    }
    tiles
}

/// Shard layout for the tile-list SDDMM family: one row block per
/// pattern block row, output slice `[row_ptr[r] · v, row_ptr[r+1] · v)`
/// of the values buffer, and each tile CTA anchored to its block row.
pub(crate) fn tile_shard_layout(
    out: vecsparse_gpu_sim::BufferId,
    pattern: &vecsparse_formats::SparsityPattern,
    tiles: &[(usize, usize, usize)],
) -> Option<vecsparse_gpu_sim::ShardLayout> {
    if tiles.is_empty() {
        return None;
    }
    let v = pattern.v();
    Some(vecsparse_gpu_sim::ShardLayout {
        out,
        rows: pattern.block_rows(),
        row_starts: pattern.row_ptr().iter().map(|&p| (p * v) as u32).collect(),
        cta_rows: tiles
            .iter()
            .map(|&(br, _, _)| (br as u32, br as u32 + 1))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::gen;

    #[test]
    fn tiles_cover_all_vectors() {
        let p = gen::random_pattern(64, 256, 4, 0.8, 1);
        let tiles = vector_tiles(&p, 32);
        let total: usize = tiles.iter().map(|t| t.2).sum();
        assert_eq!(total, p.nnz_vectors());
        for &(br, start, len) in &tiles {
            let r = p.block_row_range(br);
            assert!(start >= r.start && start + len <= r.end);
            assert!(len <= 32);
        }
    }
}
