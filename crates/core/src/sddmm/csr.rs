//! Fine-grained SDDMM — a surrogate for `cusparseSDDMM` (scalar CSR mask,
//! single or higher precision only, matching the real API's restriction).
//!
//! One warp per output row; for each nonzero the lanes split the K
//! dimension, accumulate partial dot products with FFMA, and reduce with
//! five shuffle rounds. Simple and compact, but every nonzero pays a full
//! warp reduction — fine at 95%+ sparsity, hopeless below.

use super::vector_tiles;
use crate::util::{lanes, upload_dense, upload_pattern, width_of, VsBuffers};
use vecsparse_formats::{DenseMatrix, Layout, Scalar, SparsityPattern, VectorSparse};
use vecsparse_gpu_sim::{
    BufferId, CtaCtx, GpuConfig, InstrKind, KernelProfile, KernelSpec, Launch, LaunchConfig,
    MemPool, Mode, NativeCtx, Program, Site, Tok, WVec,
};

/// The fine-grained SDDMM kernel (single precision, like cuSPARSE's).
pub struct CsrSddmm<'m> {
    a: &'m DenseMatrix<f32>,
    b: &'m DenseMatrix<f32>,
    mask: &'m SparsityPattern,
    a_buf: BufferId,
    b_buf: BufferId,
    idx: VsBuffers,
    out_buf: BufferId,
    tiles: Vec<(usize, usize, usize)>,
    sites: [Site; 6],
    prog: Program,
    static_len: u32,
}

impl<'m> CsrSddmm<'m> {
    /// Stage inputs. The mask must be scalar-grained (V = 1), matching
    /// `cusparseSDDMM`.
    ///
    /// # Panics
    /// Panics on shape/layout mismatch or V ≠ 1.
    pub fn new(
        mem: &mut MemPool,
        a: &'m DenseMatrix<f32>,
        b: &'m DenseMatrix<f32>,
        mask: &'m SparsityPattern,
        mode: Mode,
    ) -> Self {
        assert_eq!(a.cols(), b.rows(), "SDDMM inner dimension mismatch");
        assert_eq!(mask.v(), 1, "cusparseSDDMM supports fine-grained masks");
        assert_eq!(a.layout(), Layout::RowMajor);
        assert_eq!(b.layout(), Layout::ColMajor);
        let a_buf = upload_dense(mem, a, mode);
        let b_buf = upload_dense(mem, b, mode);
        let idx = upload_pattern(mem, mask, mode);
        let out_buf = match mode {
            Mode::Functional => mem.alloc_zeroed(width_of::<f32>(), mask.nnz()),
            Mode::Performance => mem.alloc_ghost(width_of::<f32>(), mask.nnz()),
        };
        let tiles = vector_tiles(mask, usize::MAX);
        let mut p = Program::new();
        let sites = [
            p.site("ld_idx", 0),
            p.site("ldg_a", 0),
            p.site("ldg_b", 0),
            p.site("math", 0),
            // Shuffle + add of each butterfly round sit at adjacent pcs.
            p.site_span("red", 0, 2),
            p.site("stg", 0),
        ];
        let static_len = p.static_len() + 69;
        CsrSddmm {
            a,
            b,
            mask,
            a_buf,
            b_buf,
            idx,
            out_buf,
            tiles,
            sites,
            prog: p,
            static_len,
        }
    }

    /// Download the functional result.
    pub fn result(&self, mem: &MemPool) -> VectorSparse<f32> {
        let data = mem.contents(self.out_buf);
        VectorSparse::new(
            self.mask.clone(),
            data.iter().map(|&x| f32::from_f32(x)).collect(),
        )
    }
}

impl KernelSpec for CsrSddmm<'_> {
    fn name(&self) -> String {
        "sddmm-csr(single)".into()
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig {
            grid: self.tiles.len().max(1),
            warps_per_cta: 1,
            regs_per_thread: 40,
            smem_elems: 0,
            smem_elem_bytes: 4,
            static_instrs: self.static_len,
        }
    }

    fn program(&self) -> Option<&Program> {
        Some(&self.prog)
    }

    fn shard_layout(&self) -> Option<vecsparse_gpu_sim::ShardLayout> {
        super::tile_shard_layout(self.out_buf, self.mask, &self.tiles)
    }

    fn run_cta(&self, cta: &mut CtaCtx<'_>) {
        let (row, start, len) = self.tiles[cta.cta_id];
        let k_total = self.a.cols();
        debug_assert_eq!(k_total, self.b.rows());
        let functional = cta.mode == Mode::Functional;
        let [ld_idx, ldg_a, ldg_b, math, red, stg] = self.sites;
        let k_per_lane = k_total.div_ceil(32).max(1);
        let epl = k_per_lane.min(4);

        let mut w = cta.warp(0);
        if len == 0 {
            return;
        }
        let ci = lanes(|l| if l < len { Some(start + l) } else { None });
        let ci_tok = w.ldg(ld_idx, self.idx.col_idx, &ci, 1, &[]).tok();

        // A row is loaded once and cached across the row's nonzeros.
        let a_offs = lanes(|l| {
            let k = l * k_per_lane;
            if k < k_total {
                Some(row * k_total + k)
            } else {
                None
            }
        });
        let a_tok = w.ldg(ldg_a, self.a_buf, &a_offs, epl, &[]).tok();

        let mut out_vals = vec![0.0f32; len];
        let mut red_tok = Tok::NONE;
        for (j, out) in out_vals.iter_mut().enumerate() {
            let col = self.mask.col_idx()[start + j] as usize;
            let offs = lanes(|l| {
                let k = l * k_per_lane;
                if k < k_total {
                    Some(col * k_total + k)
                } else {
                    None
                }
            });
            let b_tok = w.ldg(ldg_b, self.b_buf, &offs, epl, &[ci_tok]).tok();
            let m = w.math(math, InstrKind::Ffma, k_per_lane as u32, &[a_tok, b_tok]);
            // Five butterfly rounds reduce the 32 partials.
            let mut t = m;
            for round in 0..5 {
                let g = WVec::ghost(1, t);
                let sh = w.shfl(red, &g, |l| l ^ (1 << round), &[t]);
                t = w.math(Site(red.0 + 1), InstrKind::Ffma, 1, &[sh.tok()]);
            }
            red_tok = t;
            if functional {
                let mut sum = 0.0f32;
                for k in 0..k_total {
                    sum += w.mem().read(self.a_buf, row * k_total + k)
                        * w.mem().read(self.b_buf, col * k_total + k);
                }
                *out = sum;
            }
        }

        for st in 0..len.div_ceil(32) {
            let offs = lanes(|l| {
                let flat = st * 32 + l;
                if flat < len {
                    Some(start + flat)
                } else {
                    None
                }
            });
            let mut vals = WVec::zeros(1);
            if functional {
                for l in 0..32 {
                    let flat = st * 32 + l;
                    if flat < len {
                        vals.set(l, 0, out_vals[flat]);
                    }
                }
            } else {
                vals = WVec::ghost(1, red_tok);
            }
            w.stg(stg, self.out_buf, &offs, &vals, &[red_tok]);
        }
    }

    fn run_native(&self, ctx: &mut NativeCtx<'_>) -> bool {
        // One flat ascending-k dot product per nonzero, stored as raw
        // f32 (the single-precision surrogate never rounds).
        let k_total = self.a.cols();
        let a = ctx.contents(self.a_buf);
        let b = ctx.contents(self.b_buf);
        let col_idx = self.mask.col_idx();
        let mut writes = Vec::with_capacity(self.mask.nnz());
        for row in 0..self.mask.block_rows() {
            for j in self.mask.block_row_range(row) {
                let col = col_idx[j] as usize;
                let mut sum = 0.0f32;
                for k in 0..k_total {
                    sum += a[row * k_total + k] * b[col * k_total + k];
                }
                writes.push((j as u32, sum));
            }
        }
        ctx.apply(self.out_buf, &writes);
        true
    }
}

/// Functional fine-grained SDDMM.
pub fn sddmm_csr(
    gpu: &GpuConfig,
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
    mask: &SparsityPattern,
) -> VectorSparse<f32> {
    let mut mem = MemPool::new();
    let kernel = CsrSddmm::new(&mut mem, a, b, mask, Mode::Functional);
    Launch::new(&mut mem, &kernel).gpu(gpu).run();
    kernel.result(&mem)
}

/// Profile the fine-grained SDDMM kernel.
pub fn profile_sddmm_csr(
    gpu: &GpuConfig,
    a: &DenseMatrix<f32>,
    b: &DenseMatrix<f32>,
    mask: &SparsityPattern,
) -> KernelProfile {
    let mut mem = MemPool::new();
    let kernel = CsrSddmm::new(&mut mem, a, b, mask, Mode::Performance);
    Launch::new(&mut mem, &kernel)
        .gpu(gpu)
        .performance()
        .run()
        .profile
        .expect("profile")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecsparse_formats::{gen, reference};

    #[test]
    fn matches_reference() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f32>(16, 64, Layout::RowMajor, 1);
        let b = gen::random_dense::<f32>(64, 48, Layout::ColMajor, 2);
        let mask = gen::random_pattern(16, 48, 1, 0.8, 3);
        let got = sddmm_csr(&gpu, &a, &b, &mask);
        let want = reference::sddmm(&a, &b, &mask);
        for (g, wv) in got.values().iter().zip(want.values()) {
            assert!((g - wv).abs() < 1e-4);
        }
    }

    #[test]
    fn shuffle_heavy_per_nonzero() {
        let gpu = GpuConfig::small();
        let a = gen::random_dense::<f32>(64, 64, Layout::RowMajor, 4);
        let b = gen::random_dense::<f32>(64, 256, Layout::ColMajor, 5);
        let mask = gen::random_pattern(64, 256, 1, 0.9, 6);
        let p = profile_sddmm_csr(&gpu, &a, &b, &mask);
        // Five shuffles per nonzero.
        assert_eq!(p.instrs.shfl, 5 * mask.nnz() as u64);
    }
}
